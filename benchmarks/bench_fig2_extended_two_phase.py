"""FIG2 bench: regenerate the extended two-phase commit protocol of Fig. 2."""

from repro.experiments import run_fig2_extended_two_phase


def test_bench_fig2_extended_two_phase(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig2_extended_two_phase)
    record_report(report)
    assert report.details["two_site"].resilient
    assert report.details["three_site"].atomicity_violations > 0
