"""LEMMA12 / LEMMA3 bench: structural lemma checks and the Lemma 3 sweep."""

from repro.experiments import run_lemma_checks, run_lemma3_sweep


def test_bench_lemma12_structural_checks(run_once_benchmark, record_report):
    report = run_once_benchmark(run_lemma_checks)
    record_report(report)
    verdicts = report.details["reports"]
    assert not verdicts["two-phase-commit"].satisfies_both
    assert verdicts["three-phase-commit"].satisfies_both


def test_bench_lemma3_insufficiency_sweep(run_once_benchmark, record_report):
    report = run_once_benchmark(run_lemma3_sweep)
    record_report(report)
    summaries = report.details["summaries"]
    assert not summaries["naive-extended-three-phase-commit"].resilient
    assert summaries["terminating-three-phase-commit"].resilient
