"""FIG5 bench: the commit-protocol timeout intervals (2T / 3T)."""

from repro.experiments import run_fig5_timeouts


def test_bench_fig5_timeout_intervals(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig5_timeouts)
    record_report(report)
    assert all(m.within_bound for m in report.details["measurements"])
