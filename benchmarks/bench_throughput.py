"""Concurrent-transaction scheduler at the 500+-transaction scale.

The acceptance bar for the txn subsystem: a single cluster sustains 500+
concurrent transactions through the scheduler (lock queues, deadlock
detection, one commit-protocol instance per in-flight transaction) at a
usable scenarios/sec, and the multiplexing actually overlaps work (peak
in-flight transactions well above 1).  Results are printed and persisted
like every other bench.
"""

import pathlib

from repro.txn import DeadlockPolicy, ThroughputSpec, run_throughput_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# 512 transactions offered at 4/T over a 16-key space: far beyond capacity,
# so the run exercises deep lock queues and sustained multiplexing.
SPEC = ThroughputSpec(
    n_sites=3,
    n_transactions=512,
    tx_rate=4.0,
    n_keys=16,
    operations_per_site=2,
    op_delay=0.1,
    deadlock=DeadlockPolicy(detect_cycles=True),
    seed=7,
)


def test_bench_throughput_500_transactions(run_once_benchmark):
    result = run_once_benchmark(
        run_throughput_scenario, "terminating-three-phase-commit", SPEC
    )
    summary = result.summary
    assert summary.offered == 512
    # Every transaction is accounted for exactly once.
    total = (
        summary.committed
        + summary.aborted
        + summary.blocked
        + summary.stalled
        + summary.violated
    )
    assert total == summary.offered
    assert summary.committed > 0
    # The scheduler genuinely overlaps commit-protocol instances.
    assert summary.peak_in_flight >= 2
    assert summary.peak_waiting >= 10
    text = (
        f"512-transaction contended workload: {summary.committed} committed, "
        f"{summary.aborted} aborted ({summary.deadlock_aborts} deadlock victims), "
        f"{summary.blocked + summary.stalled} unfinished at horizon; "
        f"peak in-flight {summary.peak_in_flight}, "
        f"peak waiting {summary.peak_waiting}, "
        f"mean lock wait {summary.mean_lock_wait:.2f} T"
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "throughput.txt").write_text(text + "\n", encoding="utf-8")


def test_bench_throughput_scenarios_per_second(run_once_benchmark):
    """Sweep-side cost: one throughput scenario per protocol, timed."""
    from repro.engine import SweepEngine
    from repro.experiments.throughput import DEFAULT_PROTOCOLS, throughput_tasks
    from repro.txn.sink import ThroughputSink

    tasks = throughput_tasks(list(DEFAULT_PROTOCOLS), n_transactions=200)
    sink = ThroughputSink()
    stats = run_once_benchmark(
        SweepEngine(workers=1).run_streaming, tasks, sinks=sink
    )
    assert stats.total == len(DEFAULT_PROTOCOLS)
    assert stats.max_buffered <= 1  # streaming guarantee holds for txn sweeps
    print(
        f"\n{stats.total} x 200-transaction scenarios in {stats.elapsed:.2f}s "
        f"({stats.throughput:.2f} scenarios/s)"
    )
