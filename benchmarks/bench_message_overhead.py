"""MSG bench: message overhead per transaction (ablation)."""

from repro.experiments import run_message_overhead


def test_bench_message_overhead(run_once_benchmark, record_report):
    report = run_once_benchmark(run_message_overhead)
    record_report(report)
    rows = {row["protocol"]: row for row in report.rows()}
    assert (
        rows["three-phase-commit"]["messages (failure-free)"]
        > rows["two-phase-commit"]["messages (failure-free)"]
    )
