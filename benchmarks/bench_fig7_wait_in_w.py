"""FIG7 bench: the 6T wait after a slave times out in w."""

from repro.experiments import run_fig7_wait_in_w


def test_bench_fig7_wait_in_w(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig7_wait_in_w)
    record_report(report)
    assert report.details["measurement"].within_bound
    assert report.details["samples"] > 0
