"""SEC6 bench: the transient-partitioning case table of Section 6."""

import math

from repro.experiments import run_sec6_cases


def test_bench_sec6_case_table(run_once_benchmark, record_report):
    report = run_once_benchmark(run_sec6_cases)
    record_report(report)
    # every construction realizes its intended case
    for row in report.rows():
        assert row["case"] == row["classified as"]
    # only case 3.2.2.2 blocks the Section 5 protocol and the Section 6 rule fixes it
    blocking = [row["case"] for row in report.rows() if row["Section 5 protocol"] == "blocks"]
    assert blocking == ["3.2.2.2"]
    assert all(row["with Section 6 rule"] == "consistent" for row in report.rows())
    assert math.isinf(report.details["3.2.2.2"]["measured"])
