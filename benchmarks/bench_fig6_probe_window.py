"""FIG6 bench: the master's 5T probe-collection window."""

from repro.experiments import run_fig6_probe_window


def test_bench_fig6_probe_window(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig6_probe_window)
    record_report(report)
    assert report.details["measurement"].within_bound
    assert report.details["windows"] > 0
