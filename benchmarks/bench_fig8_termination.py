"""FIG8 / THM9 bench: the termination protocol's resilience sweep."""

from repro.experiments import run_fig8_termination


def test_bench_fig8_termination_protocol(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig8_termination, site_counts=(3, 4, 5))
    record_report(report)
    for row in report.rows():
        assert row["atomicity violations"] == 0
        assert row["blocked runs"] == 0
