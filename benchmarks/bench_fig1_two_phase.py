"""FIG1 bench: regenerate the two-phase commit behaviour of Fig. 1."""

from repro.experiments import run_fig1_two_phase


def test_bench_fig1_two_phase(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig1_two_phase)
    record_report(report)
    assert report.details["commit_run"].all_committed
    assert report.details["abort_run"].all_aborted
    assert report.details["crash_run"].blocked
    assert report.details["partition_run"].blocked
