"""Shared fixtures for the benchmark suite.

Every bench regenerates one paper figure / table via the corresponding
experiment module, times it with pytest-benchmark, prints the resulting
table and also writes it to ``benchmarks/results/<experiment>.txt`` so the
reproduced numbers survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_report():
    """Print an experiment report and persist it under ``benchmarks/results``."""

    def _record(report):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = report.format()
        print()
        print(text)
        filename = report.experiment.lower().replace("/", "-") + ".txt"
        (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
        return report

    return _record


@pytest.fixture
def run_once_benchmark(benchmark):
    """Run a callable exactly once under pytest-benchmark.

    The experiment sweeps are deterministic and some take a second or more;
    a single measured round keeps the benchmark suite fast while still
    reporting wall-clock cost per figure.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
