"""Adaptive refinement vs the uniform grid it replaces.

The acceptance bar for the refinement driver: on the FIG8 commit-point
boundary it must (a) agree with a brute-force uniform 0.01 T grid about
where the verdict flips, and (b) evaluate fewer than 25% of the uniform
grid's scenarios.  Measured over the full classic onset window [0.25 T,
8 T], where the advantage is largest (one flip, 776 uniform points).
"""

import pytest

from repro.engine import OnsetLine, RefinementDriver, SweepEngine, verdict_class

LINE = OnsetLine(
    protocol="terminating-three-phase-commit", n_sites=3, g1=(1, 2), g2=(3,)
)
LO, HI, RESOLUTION = 0.25, 8.0, 0.01


def refine():
    driver = RefinementDriver(resolution=RESOLUTION)
    return driver.refine(LINE, lo=LO, hi=HI, coarse_step=0.25)


def uniform():
    engine = SweepEngine(workers=1)
    steps = int(round((HI - LO) / RESOLUTION))
    times = [round(LO + i * RESOLUTION, 6) for i in range(steps + 1)]
    sweep = engine.run([LINE.task_at(t) for t in times])
    classes = {t: verdict_class(s) for t, s in zip(times, sweep.summaries)}
    flips = [
        (t1, t2)
        for t1, t2 in zip(times, times[1:])
        if classes[t1] != classes[t2]
    ]
    return times, flips


def test_bench_adaptive_refinement(run_once_benchmark):
    result = run_once_benchmark(refine)
    assert len(result.boundaries) == 1
    assert result.boundaries[0].width <= RESOLUTION
    assert result.scenarios_run < 0.25 * result.uniform_equivalent()


def test_refinement_matches_uniform_grid_at_a_fraction_of_the_cost():
    result = refine()
    times, flips = uniform()
    assert len(flips) == len(result.boundaries) == 1
    uniform_lo, uniform_hi = flips[0]
    boundary = result.boundaries[0]
    # Same flip, bracketed to the same resolution.
    assert abs(boundary.midpoint - (uniform_lo + uniform_hi) / 2) <= RESOLUTION
    # <25% of the uniform cost is the acceptance bar; in practice ~5%.
    ratio = result.scenarios_run / len(times)
    print(
        f"\nrefinement: {result.scenarios_run} scenarios vs uniform {len(times)} "
        f"({ratio:.1%}), boundary at {boundary.midpoint:g} +- {boundary.width / 2:g} T"
    )
    assert ratio < 0.25


@pytest.mark.parametrize("workers", [1])
def test_warm_cache_refinement_executes_nothing(tmp_path, workers):
    engine = SweepEngine(workers=workers, cache=tmp_path)
    driver = RefinementDriver(engine, resolution=RESOLUTION)
    driver.refine(LINE, lo=LO, hi=HI)
    warm = driver.refine(LINE, lo=LO, hi=HI)
    assert warm.executed == 0
