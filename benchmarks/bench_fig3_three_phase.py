"""FIG3 bench: regenerate the three-phase commit behaviour of Fig. 3."""

from repro.experiments import run_fig3_three_phase


def test_bench_fig3_three_phase(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig3_three_phase)
    record_report(report)
    assert report.details["lemma_3pc"].satisfies_both
    assert report.details["partition_summary"].blocked_runs > 0
    assert report.details["partition_summary"].atomicity_violations == 0
