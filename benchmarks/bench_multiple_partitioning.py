"""MULTI bench: multiple (three-way) partitioning defeats every protocol."""

from repro.experiments import run_multiple_partitioning


def test_bench_multiple_partitioning(run_once_benchmark, record_report):
    report = run_once_benchmark(run_multiple_partitioning)
    record_report(report)
    for summary in report.details.values():
        assert not summary.resilient
        assert summary.atomicity_violations > 0
