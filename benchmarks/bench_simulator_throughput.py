"""Micro-benchmarks of the substrates themselves.

Not a paper figure: these time the building blocks (a failure-free commit, a
partitioned termination run, a reachability exploration) so regressions in
the simulator or the formal-model layer show up independently of the
experiment sweeps.
"""

from repro.core.catalog import three_phase_commit
from repro.core.concurrency import analyze
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.partition import PartitionSchedule


def test_bench_failure_free_commit(benchmark):
    def run():
        return run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=5)
        )

    result = benchmark(run)
    assert result.all_committed


def test_bench_partitioned_termination_run(benchmark):
    partition = PartitionSchedule.simple(2.5, [1, 2, 3], [4, 5])

    def run():
        return run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=5, partition=partition),
        )

    result = benchmark(run)
    assert result.consistent


def test_bench_reachability_analysis(benchmark):
    def run():
        return analyze(three_phase_commit(), 4)

    analysis = benchmark(run)
    assert analysis.global_state_count > 0
