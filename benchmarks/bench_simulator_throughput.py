"""Micro-benchmarks of the substrates themselves.

Not a paper figure: these time the building blocks (a failure-free commit, a
partitioned termination run, a reachability exploration, a full engine
sweep) so regressions in the simulator, the formal-model layer or the sweep
engine show up independently of the experiment sweeps.
"""

import os
import pathlib
import time

import pytest

from repro.core.catalog import three_phase_commit
from repro.core.concurrency import analyze
from repro.engine import ScenarioGrid, SweepEngine
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.partition import PartitionSchedule


def test_bench_failure_free_commit(benchmark):
    def run():
        return run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=5)
        )

    result = benchmark(run)
    assert result.all_committed


def test_bench_partitioned_termination_run(benchmark):
    partition = PartitionSchedule.simple(2.5, [1, 2, 3], [4, 5])

    def run():
        return run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=5, partition=partition),
        )

    result = benchmark(run)
    assert result.consistent


def test_bench_reachability_analysis(benchmark):
    def run():
        return analyze(three_phase_commit(), 4)

    analysis = benchmark(run)
    assert analysis.global_state_count > 0


def _sweep_tasks(n_scenarios: int = 200):
    """A deterministic grid of exactly ``n_scenarios`` partitioned runs."""
    grid = ScenarioGrid.from_partition_sweep(
        "terminating-three-phase-commit",
        4,
        times=[round(0.25 * i, 2) for i in range(1, 13)],
        no_voter_options=(frozenset(), frozenset({2}), frozenset({4})),
    )
    tasks = list(grid.tasks())
    assert len(tasks) >= n_scenarios, f"grid too small: {len(tasks)}"
    return tasks[:n_scenarios]


def test_bench_sweep_engine_serial_throughput(benchmark):
    """Baseline scenarios/second of the engine's in-process path."""
    tasks = _sweep_tasks()

    def run():
        return SweepEngine(workers=1).run(tasks)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total == len(tasks)
    assert all(s.consistent for s in result)


def test_bench_sweep_parallel_speedup():
    """A 200-scenario sweep must gain >= 2x at ``workers=4`` vs ``workers=1``.

    Timed with ``perf_counter`` rather than pytest-benchmark because one test
    compares two engine configurations.  The result is persisted under
    ``benchmarks/results/sweep-speedup.txt``.  Four workers can only double
    serial throughput with at least 4 usable cores (on 2-3 cores pool
    overhead eats the sub-2x theoretical ceiling), so the assertion is
    skipped below that; the sweep itself still runs both ways and the
    summaries must match exactly.
    """
    tasks = _sweep_tasks()

    started = time.perf_counter()
    serial = SweepEngine(workers=1).run(tasks)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel = SweepEngine(workers=4).run(tasks)
    parallel_elapsed = time.perf_counter() - started

    assert serial.summaries == parallel.summaries
    speedup = serial_elapsed / parallel_elapsed if parallel_elapsed > 0 else float("inf")
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    text = (
        f"sweep speedup: {len(tasks)} scenarios, {cpus} usable cpu(s)\n"
        f"workers=1: {serial_elapsed:.2f}s ({len(tasks) / serial_elapsed:.0f} runs/s)\n"
        f"workers=4: {parallel_elapsed:.2f}s ({len(tasks) / parallel_elapsed:.0f} runs/s)\n"
        f"speedup: {speedup:.2f}x\n"
    )
    if cpus < 4:
        text += (
            f"note: 4 workers on {cpus} usable cpu(s) measures process "
            "time-slicing, not parallel speedup; the workers=4 line is not "
            "an engine regression signal on this host\n"
        )
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "sweep-speedup.txt").write_text(text, encoding="utf-8")
    print()
    print(text, end="")

    if cpus < 4:
        pytest.skip(f"only {cpus} usable cpu(s): a 2x speedup at workers=4 needs >= 4")
    assert speedup >= 2.0, f"expected >= 2x speedup at workers=4, got {speedup:.2f}x"
