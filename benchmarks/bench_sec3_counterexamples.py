"""SEC3 bench: regenerate the Section 3 counterexamples."""

from repro.experiments import run_sec3_counterexamples


def test_bench_sec3_counterexamples(run_once_benchmark, record_report):
    report = run_once_benchmark(run_sec3_counterexamples)
    record_report(report)
    assert report.details["extended_summary"].atomicity_violations > 0
    assert report.details["naive_summary"].atomicity_violations > 0
