"""THM10 bench: the generic termination construction on the quorum skeleton."""

from repro.experiments import run_thm10_generalization


def test_bench_thm10_generalization(run_once_benchmark, record_report):
    report = run_once_benchmark(run_thm10_generalization)
    record_report(report)
    assert report.details["conditions"]["quorum-commit"].applicable
    assert report.details["quorum_sweep"].resilient
