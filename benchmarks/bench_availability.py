"""AVAIL bench: blocking / lock retention comparison across protocols."""

from repro.experiments import run_availability_comparison


def test_bench_availability_comparison(run_once_benchmark, record_report):
    report = run_once_benchmark(run_availability_comparison)
    record_report(report)
    details = report.details
    assert details["terminating-three-phase-commit"]["blocking"].blocking_rate == 0.0
    assert details["three-phase-commit"]["blocking"].blocking_rate > 0.0
    assert details["terminating-three-phase-commit"]["atomicity"].resilient
