"""Constant-memory streaming at the 10k-scenario scale.

The acceptance bar for the streaming path: a 10k+-scenario sweep completes
with every summary folded into sinks -- no summary list is materialized,
and the reorder buffer (the only place summaries wait) stays orders of
magnitude below the sweep size.
"""

from repro.engine import (
    DecisionTimeHistogramSink,
    ScenarioGrid,
    SweepEngine,
    VerdictCounterSink,
)
from repro.sim.latency import UniformLatency
from repro.sim.partition import PartitionSchedule

# 2 protocols x 5 partitions x 2 latencies x 512 seeds = 10240 scenarios.
GRID = ScenarioGrid(
    protocols=("terminating-three-phase-commit", "two-phase-commit"),
    n_sites=3,
    partitions=(
        None,
        PartitionSchedule.simple(1.5, [1, 2], [3]),
        PartitionSchedule.simple(2.5, [1], [2, 3]),
        PartitionSchedule.simple(3.5, [1, 3], [2]),
        PartitionSchedule.transient(1.5, 4.0, [1, 2], [3]),
    ),
    latencies=(UniformLatency(0.25, 1.0), UniformLatency(0.5, 1.0)),
    seeds=tuple(range(512)),
)


def test_bench_streaming_10k_scenarios(run_once_benchmark):
    counter = VerdictCounterSink()
    histogram = DecisionTimeHistogramSink()
    engine = SweepEngine(workers=1)

    stats = run_once_benchmark(
        engine.run_streaming, GRID, sinks=(counter, histogram)
    )
    assert stats.total == len(GRID) >= 10_000
    # The streaming guarantee: summaries were delivered and dropped one at a
    # time -- the serial path never holds more than a single summary.
    assert stats.max_buffered <= 1
    # Every scenario reached the sinks exactly once.
    assert sum(c["total"] for c in counter.counts.values()) == stats.total
    terminating = counter.counts["terminating-three-phase-commit"]
    assert terminating["violated"] == 0
    assert terminating["blocked"] == 0
    print(
        f"\n{stats.total} scenarios in {stats.elapsed:.2f}s "
        f"({stats.throughput:.0f}/s), reorder buffer peak {stats.max_buffered}"
    )
