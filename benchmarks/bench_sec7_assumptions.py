"""SEC7 bench: concurrent site failures / message loss defeat the protocol."""

from repro.experiments import run_sec7_assumptions


def test_bench_sec7_assumptions(run_once_benchmark, record_report):
    report = run_once_benchmark(run_sec7_assumptions)
    record_report(report)
    assert report.details["scenario1"].atomicity_violated
    assert report.details["scenario2"].atomicity_violated
