"""FIG9 bench: the 5T wait after a slave times out in p (permanent partitions)."""

from repro.experiments import run_fig9_wait_in_p


def test_bench_fig9_wait_in_p(run_once_benchmark, record_report):
    report = run_once_benchmark(run_fig9_wait_in_p)
    record_report(report)
    assert report.details["measurement"].within_bound
    assert report.details["blocked"] == 0
