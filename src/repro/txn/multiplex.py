"""Multiplexing many commit-protocol instances over one simulated cluster.

The single-transaction runner attaches exactly one protocol role per
:class:`~repro.sim.node.Node`.  The concurrent-transaction scheduler
instead attaches a :class:`SiteMultiplexer` to each node and gives every
in-flight transaction its own :class:`VirtualNode` -- a per-transaction
view of the shared node that

* routes sends through the real node (so partitions, bounces and latency
  apply unchanged),
* namespaces timer names by transaction id (two transactions' roles can
  both arm ``phase-timeout`` without clobbering each other, and a role's
  ``cancel_all_timers`` on decision cancels only its own), and
* records trace entries against the real site.

The multiplexer routes every delivery by the protocol message's
``transaction_id`` (messages are already tagged -- see
:class:`~repro.protocols.base.ProtocolMessage`), fires namespaced timers
back to the owning role, and fans crash / recovery notifications out to
every registered role.  Protocol roles run unmodified on top: they duck-type
against the node surface (:meth:`send`, :meth:`set_timer`, :meth:`note`,
``sim``) rather than the concrete :class:`Node`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.network import Undeliverable, describe_payload
from repro.sim.node import Node, Timer

#: Separator between the transaction id and the role-chosen timer name.
#: Transaction ids never contain it (workload ids are ``workload-txn-N``).
_TIMER_SEP = "::"


class VirtualNode:
    """A per-transaction view of a shared :class:`~repro.sim.node.Node`.

    Presents the node surface protocol roles use (attach / send / timers /
    trace notes) while isolating the transaction's timers and role wiring
    from every other transaction multiplexed over the same site.
    """

    def __init__(self, node: Node, multiplexer: "SiteMultiplexer", transaction_id: str) -> None:
        self._node = node
        self._multiplexer = multiplexer
        self.transaction_id = transaction_id
        self.role: Optional[Any] = None
        self._timer_names: set[str] = set()
        # Part of the node surface: roles read this to skip trace notes.
        self._tracing = node._tracing

    # ------------------------------------------------------------------
    # node surface shared with the real Node
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """The underlying site id."""
        return self._node.node_id

    @property
    def sim(self):
        """The shared simulator."""
        return self._node.sim

    @property
    def network(self):
        """The shared network."""
        return self._node.network

    @property
    def trace(self):
        """The shared trace."""
        return self._node.trace

    @property
    def crashed(self) -> bool:
        """Whether the underlying site is crashed."""
        return self._node.crashed

    def attach(self, role: Any) -> None:
        """Attach this transaction's role and register it for routing."""
        self.role = role
        self._multiplexer.register(self.transaction_id, self)

    def start(self) -> None:
        """Schedule the role's ``on_start`` at the current simulated time."""
        self._node.sim.schedule(
            0.0,
            self._start_role,
            label=f"start {self.transaction_id}@site{self.node_id}",
        )

    def _start_role(self) -> None:
        if self.crashed or self.role is None:
            return
        hook = getattr(self.role, "on_start", None)
        if hook is not None:
            hook()

    def send(self, destination: int, payload: Any):
        """Send through the shared node (partitions and latency apply)."""
        return self._node.send(destination, payload)

    def multicast(self, destinations: list[int], payload: Any):
        """Send ``payload`` to every site in ``destinations``."""
        return self._node.multicast(destinations, payload)

    # ------------------------------------------------------------------
    # namespaced timers
    # ------------------------------------------------------------------
    def _scoped(self, name: str) -> str:
        return f"{self.transaction_id}{_TIMER_SEP}{name}"

    def set_timer(self, name: str, delay: float, payload: Any = None) -> Timer:
        """(Re)arm the named timer, scoped to this transaction."""
        self._timer_names.add(name)
        return self._node.set_timer(self._scoped(name), delay, payload)

    def cancel_timer(self, name: str) -> None:
        """Cancel this transaction's timer ``name`` if armed."""
        self._timer_names.discard(name)
        self._node.cancel_timer(self._scoped(name))

    def cancel_all_timers(self) -> None:
        """Cancel every timer this transaction armed (and only those)."""
        for name in sorted(self._timer_names):
            self._node.cancel_timer(self._scoped(name))
        self._timer_names.clear()

    def timer_armed(self, name: str) -> bool:
        """True when this transaction's timer ``name`` is armed."""
        return self._node.timer_armed(self._scoped(name))

    # ------------------------------------------------------------------
    # trace helpers
    # ------------------------------------------------------------------
    def note(self, category: str, **detail: Any) -> None:
        """Record a role-level trace entry attributed to the real site."""
        self._node.note(category, **detail)

    @staticmethod
    def describe(payload: Any) -> str:
        """Human-readable payload description (re-exported for roles)."""
        return describe_payload(payload)


class SiteMultiplexer:
    """The role attached to a real node; routes traffic to per-transaction roles."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self._virtuals: dict[str, VirtualNode] = {}
        #: Called (with no arguments) after a crash is fanned out to the
        #: roles; the transaction scheduler uses this to fail lock waits
        #: that died with the site's lock table.
        self.crash_listeners: list[Any] = []
        #: Called (with no arguments) *before* a recovery is fanned out to
        #: the roles: the scheduler replays the site's WAL here, so roles
        #: (and re-admitted lock requests) always observe the recovered
        #: database state, never the pre-replay one.
        self.recover_listeners: list[Any] = []
        #: Called as ``listener(payload, envelope)`` for every delivery
        #: *before* transaction routing; a listener returning True consumes
        #: the message.  The scheduler's network lock transport routes its
        #: lock request / grant traffic here.
        self.message_listeners: list[Any] = []
        node.attach(self)

    def register(self, transaction_id: str, virtual: VirtualNode) -> None:
        """Register a transaction's virtual node for routing."""
        self._virtuals[transaction_id] = virtual

    def virtual_node(self, transaction_id: str) -> VirtualNode:
        """Create (or return) the virtual node for one transaction."""
        virtual = self._virtuals.get(transaction_id)
        if virtual is None:
            virtual = VirtualNode(self.node, self, transaction_id)
            self._virtuals[transaction_id] = virtual
        return virtual

    def roles(self) -> dict[str, Any]:
        """Transaction id -> attached role, for inspection."""
        return {
            txn: virtual.role
            for txn, virtual in self._virtuals.items()
            if virtual.role is not None
        }

    # ------------------------------------------------------------------
    # Role hooks invoked by the real node
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Transactions start when the scheduler admits them, not at t=0."""

    def on_message(self, payload: Any, envelope: Any) -> None:
        """Route a delivery (or bounce) to the owning transaction's role."""
        if self.message_listeners:
            for listener in self.message_listeners:
                if listener(payload, envelope):
                    return
        inner = payload.payload if isinstance(payload, Undeliverable) else payload
        transaction_id = getattr(inner, "transaction_id", None)
        virtual = self._virtuals.get(transaction_id) if transaction_id else None
        if virtual is None or virtual.role is None:
            self.node.note(
                "unrouted-message",
                transaction=transaction_id,
                payload=describe_payload(payload),
            )
            return
        handler = getattr(virtual.role, "on_message", None)
        if handler is not None:
            handler(payload, envelope)

    def on_timeout(self, timer: Timer) -> None:
        """Strip the transaction prefix and fire the owning role's handler."""
        transaction_id, sep, name = timer.name.partition(_TIMER_SEP)
        if not sep:
            return
        virtual = self._virtuals.get(transaction_id)
        if virtual is None or virtual.role is None:
            return
        virtual._timer_names.discard(name)
        handler = getattr(virtual.role, "on_timeout", None)
        if handler is not None:
            handler(
                Timer(
                    name=name,
                    owner=timer.owner,
                    deadline=timer.deadline,
                    event=timer.event,
                    payload=timer.payload,
                )
            )

    def on_crash(self) -> None:
        """Fan the crash notification out to every transaction's role."""
        for transaction_id in sorted(self._virtuals):
            virtual = self._virtuals[transaction_id]
            virtual._timer_names.clear()
            hook = getattr(virtual.role, "on_crash", None)
            if hook is not None:
                hook()
        for listener in list(self.crash_listeners):
            listener()

    def on_recover(self) -> None:
        """Fan the recovery notification out: listeners first, then roles.

        Listener-before-role ordering is load-bearing -- the scheduler's
        listener replays the WAL, and replay must complete before any role
        (or re-admitted lock request) touches the recovered site.
        """
        for listener in list(self.recover_listeners):
            listener()
        for transaction_id in sorted(self._virtuals):
            hook = getattr(self._virtuals[transaction_id].role, "on_recover", None)
            if hook is not None:
                hook()
