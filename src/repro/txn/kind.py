"""Registration of the concurrent-workload throughput kind.

One :class:`~repro.txn.runner.ThroughputSpec` offers a stream of
transactions to one cluster under one protocol and reduces to a
:class:`~repro.txn.summary.ThroughputSummary` (payloads tagged
``"kind": "throughput"``).  Trace measures do not apply -- a contended run
has no single-transaction trace to measure.

Imported lazily by :mod:`repro.engine.registry` (it is listed in
``BUILTIN_KIND_PROVIDERS``); nothing in :mod:`repro.engine` imports this
package directly, which is exactly the decoupling the registry exists for.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.registry import SpecKind, register_spec_kind
from repro.txn.runner import ThroughputSpec, run_throughput_scenario
from repro.txn.summary import ThroughputSummary


def _execute(
    protocol: str,
    spec: ThroughputSpec,
    *,
    spec_hash: str,
    measures: Sequence[str] = (),
) -> ThroughputSummary:
    """Run one contended workload in a worker and keep only its summary."""
    return run_throughput_scenario(protocol, spec, spec_hash=spec_hash).summary


def _make_sink():
    """The kind's default aggregate: the ``repro throughput`` table."""
    from repro.txn.sink import ThroughputSink

    return ThroughputSink()


def _sample_task():
    """One small contended workload (for the conformance suite)."""
    from repro.engine.grid import SweepTask

    return SweepTask(
        protocol="two-phase-commit",
        spec=ThroughputSpec(n_transactions=5, tx_rate=1.0, n_keys=4),
    )


THROUGHPUT_KIND = register_spec_kind(
    SpecKind(
        name="throughput",
        spec_type=ThroughputSpec,
        summary_type=ThroughputSummary,
        execute=_execute,
        decode=ThroughputSummary.from_json_dict,
        json_tag="throughput",
        make_sink=_make_sink,
        sample_task=_sample_task,
    )
)
