"""Deadlock handling for the concurrent-transaction scheduler.

Strict 2PL with incremental (operation-by-operation) lock acquisition can
deadlock: transaction A holds ``k1`` and waits for ``k2`` while B holds
``k2`` and waits for ``k1``.  The scheduler supports the two classic
remedies, individually or together, via :class:`DeadlockPolicy`:

* **waits-for cycle detection** -- after every request that queues, the
  union of the per-site :meth:`~repro.db.locks.LockManager.waits_for`
  graphs is searched for cycles; the *youngest* transaction in the cycle
  (largest admission index) is aborted as the victim.  Youngest-victim is
  deterministic and favours the transactions that have done the most work.
* **lock-wait timeouts** -- a transaction whose lock wait exceeds
  ``wait_timeout`` simulated time units is aborted, which also clears
  waiters stuck behind a *blocked* commit protocol's locks (the paper's
  availability cost, Section 1-2).

:func:`find_cycle` is deterministic: nodes and successors are visited in
sorted order, so the same graph always yields the same cycle and therefore
the same victim -- a requirement for worker-count-independent sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping, Optional


@dataclass(frozen=True)
class DeadlockPolicy:
    """How the scheduler breaks (or bounds) lock waits.

    Attributes:
        detect_cycles: run waits-for cycle detection after every queued
            request and abort the youngest transaction of any cycle found.
        wait_timeout: abort a transaction whose current lock wait exceeds
            this many simulated time units (``None`` disables timeouts).
    """

    detect_cycles: bool = True
    wait_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise ValueError(f"wait_timeout must be positive, got {self.wait_timeout}")


def merge_waits_for(
    graphs: Mapping[int, Mapping[str, AbstractSet[str]]]
) -> dict[str, set[str]]:
    """Union per-site waits-for maps into one global graph."""
    merged: dict[str, set[str]] = {}
    for site in sorted(graphs):
        for owner, waits in graphs[site].items():
            merged.setdefault(owner, set()).update(waits)
    return merged


def find_cycle(edges: Mapping[str, AbstractSet[str]]) -> Optional[list[str]]:
    """Return one waits-for cycle as a node list, or ``None``.

    Deterministic: iterates start nodes and successors in sorted order, so
    identical graphs produce identical cycles.  The returned list contains
    each cycle member once (no repeated closing node).
    """
    successors = {node: sorted(targets) for node, targets in edges.items()}
    visited: set[str] = set()
    for start in sorted(successors):
        if start in visited:
            continue
        # Iterative DFS with an explicit path to recover the cycle.
        pending: list[tuple[str, int]] = [(start, 0)]
        path: list[str] = []
        on_path: set[str] = set()
        while pending:
            node, next_index = pending.pop()
            if next_index == 0:
                path.append(node)
                on_path.add(node)
            advanced = False
            succ = successors.get(node, [])
            for index in range(next_index, len(succ)):
                target = succ[index]
                if target in on_path:
                    return path[path.index(target):]
                if target in visited:
                    continue
                pending.append((node, index + 1))
                pending.append((target, 0))
                advanced = True
                break
            if not advanced:
                visited.add(node)
                on_path.discard(node)
                path.pop()
    return None
