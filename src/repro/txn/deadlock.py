"""Deadlock handling for the concurrent-transaction scheduler.

Strict 2PL with incremental (operation-by-operation) lock acquisition can
deadlock: transaction A holds ``k1`` and waits for ``k2`` while B holds
``k2`` and waits for ``k1``.  The scheduler supports the two classic
remedies, individually or together, via :class:`DeadlockPolicy`:

* **waits-for cycle detection** -- after every request that queues, the
  union of the per-site :meth:`~repro.db.locks.LockManager.waits_for`
  graphs is searched for cycles; one cycle member is aborted as the
  victim, chosen by the configured :class:`VictimPolicy`.
* **lock-wait timeouts** -- a transaction whose lock wait exceeds
  ``wait_timeout`` simulated time units is aborted, which also clears
  waiters stuck behind a *blocked* commit protocol's locks (the paper's
  availability cost, Section 1-2).

:func:`find_cycle` and :func:`select_victim` are deterministic: nodes and
successors are visited in sorted order and every policy breaks ties by
admission index, so the same graph always yields the same cycle and the
same victim -- a requirement for worker-count-independent sweeps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Optional


class VictimPolicy(enum.Enum):
    """Which member of a waits-for cycle is aborted.

    Every policy is deterministic (ties break towards the youngest
    admission index) so sweeps stay byte-identical across worker counts:

    * ``YOUNGEST`` -- largest admission index; favours the transactions
      that have done the most work (the PR 3 default).
    * ``OLDEST`` -- smallest admission index; starves long-runners but
      bounds how long a lock chain can grow.
    * ``FEWEST_LOCKS`` -- the member holding the fewest locks across all
      sites forfeits the least acquired work.
    * ``MOST_RETRIES_WINS`` -- the member with the fewest prior attempts
      is sacrificed, so much-retried transactions eventually get through
      instead of being victimized forever (anti-starvation under retry
      storms).
    """

    YOUNGEST = "youngest"
    OLDEST = "oldest"
    FEWEST_LOCKS = "fewest-locks"
    MOST_RETRIES_WINS = "most-retries-wins"


def select_victim(
    cycle: Iterable[str],
    policy: VictimPolicy,
    *,
    index: Mapping[str, int],
    locks_held: Mapping[str, int],
    attempts: Mapping[str, int],
) -> str:
    """The cycle member :class:`VictimPolicy` sacrifices.

    Args:
        cycle: transaction ids forming the waits-for cycle.
        index: admission index per transaction (unique, so every policy's
            tiebreak is total).
        locks_held: locks currently held across all sites, per transaction.
        attempts: 1-based attempt number per transaction.
    """
    members = sorted(cycle)
    if not members:
        raise ValueError("cannot select a victim from an empty cycle")
    if policy is VictimPolicy.YOUNGEST:
        return max(members, key=lambda txn: index[txn])
    if policy is VictimPolicy.OLDEST:
        return min(members, key=lambda txn: index[txn])
    if policy is VictimPolicy.FEWEST_LOCKS:
        return min(members, key=lambda txn: (locks_held[txn], -index[txn]))
    if policy is VictimPolicy.MOST_RETRIES_WINS:
        return min(members, key=lambda txn: (attempts[txn], -index[txn]))
    raise ValueError(f"unknown victim policy {policy!r}")


@dataclass(frozen=True)
class DeadlockPolicy:
    """How the scheduler breaks (or bounds) lock waits.

    Attributes:
        detect_cycles: run waits-for cycle detection after every queued
            request and abort one transaction of any cycle found.
        wait_timeout: abort a transaction whose current lock wait exceeds
            this many simulated time units (``None`` disables timeouts).
        victim: which cycle member the detector aborts.
    """

    detect_cycles: bool = True
    wait_timeout: Optional[float] = None
    victim: VictimPolicy = VictimPolicy.YOUNGEST

    def __post_init__(self) -> None:
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise ValueError(f"wait_timeout must be positive, got {self.wait_timeout}")


def merge_waits_for(
    graphs: Mapping[int, Mapping[str, AbstractSet[str]]]
) -> dict[str, set[str]]:
    """Union per-site waits-for maps into one global graph."""
    merged: dict[str, set[str]] = {}
    for site in sorted(graphs):
        for owner, waits in graphs[site].items():
            merged.setdefault(owner, set()).update(waits)
    return merged


def find_cycle(edges: Mapping[str, AbstractSet[str]]) -> Optional[list[str]]:
    """Return one waits-for cycle as a node list, or ``None``.

    Deterministic: iterates start nodes and successors in sorted order, so
    identical graphs produce identical cycles.  The returned list contains
    each cycle member once (no repeated closing node).
    """
    successors = {node: sorted(targets) for node, targets in edges.items()}
    visited: set[str] = set()
    for start in sorted(successors):
        if start in visited:
            continue
        # Iterative DFS with an explicit path to recover the cycle.
        pending: list[tuple[str, int]] = [(start, 0)]
        path: list[str] = []
        on_path: set[str] = set()
        while pending:
            node, next_index = pending.pop()
            if next_index == 0:
                path.append(node)
                on_path.add(node)
            advanced = False
            succ = successors.get(node, [])
            for index in range(next_index, len(succ)):
                target = succ[index]
                if target in on_path:
                    return path[path.index(target):]
                if target in visited:
                    continue
                pending.append((node, index + 1))
                pending.append((target, 0))
                advanced = True
                break
            if not advanced:
                visited.add(node)
                on_path.discard(node)
                path.pop()
    return None
