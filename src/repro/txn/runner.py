"""Throughput scenarios: a contended workload through one commit protocol.

A :class:`ThroughputSpec` is the concurrent-workload analogue of
:class:`~repro.protocols.runner.ScenarioSpec`: everything needed to run a
stream of update transactions against one cluster under one protocol and
one failure schedule, reduced to plain (picklable, stably hashable) data.
:func:`run_throughput_scenario` executes it deterministically -- workload
generation, arrivals, lock scheduling and the commit protocols all derive
from ``(spec, seed)`` alone -- and reduces the run to a
:class:`~repro.txn.summary.ThroughputSummary`.

The sweep engine executes these specs exactly like scenario specs (same
task lists, worker pools, result cache and streaming sinks); see
:func:`repro.engine.engine.execute_task` for the dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.protocols.base import ProtocolDefinition
from repro.protocols.registry import create_protocol
from repro.sim.cluster import Cluster
from repro.sim.failures import CrashSchedule, FaultPlan, normalize_fault_plan
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import OPTIMISTIC
from repro.sim.partition import PartitionSchedule
from repro.obs.metrics import SIM_TIME_BUCKETS, get_active as _active_metrics
from repro.txn.deadlock import DeadlockPolicy
from repro.txn.retry import AbortCause, RetryPolicy
from repro.txn.scheduler import TransactionScheduler
from repro.txn.summary import ThroughputSummary, TransactionVerdict
from repro.workloads.transactions import (
    ARRIVAL_PROCESSES,
    TransactionMix,
    WorkloadConfig,
    generate_arrivals,
    generate_transactions,
)


@dataclass
class ThroughputSpec:
    """Everything needed to run one contended workload through one protocol.

    Attributes:
        n_sites: participating sites (site 1 masters every transaction).
        n_transactions: transactions offered over the run.
        tx_rate: offered load, in transactions per ``T`` (the mean
            inter-arrival gap is ``T / tx_rate``).
        arrival: arrival process -- ``"uniform"`` (evenly spaced, the
            closed deterministic schedule) or ``"poisson"`` (open-loop
            seeded exponential gaps); either way the spec hash pins the
            whole arrival schedule.
        read_fraction / operations_per_site / n_keys /
        participants_per_transaction: workload shape (see
            :class:`~repro.workloads.transactions.WorkloadConfig`).
        hotspot: zipf-like key-skew exponent (0 = uniform keys; larger
            values concentrate traffic on a hot front of the keyspace).
        op_delay: simulated execution time per data operation; the gap
            between a transaction's successive lock requests.
        partition: partition / heal schedule (default: none).
        crashes: site crash / recovery schedule (default: none).  At a
            crash the site's waiters are written off and its lock table is
            lost; at recovery the WAL replays before new lock requests are
            admitted.
        latency: network latency model; its upper bound is the paper's ``T``.
        model: ``"optimistic"`` or ``"pessimistic"`` partition model.
        deadlock: deadlock-handling policy (including victim selection).
        retry: re-admission policy for aborted attempts (default: none).
        horizon: simulated-time limit; defaults to the admission span plus
            ``40 T`` of drain, far beyond every decision bound in the paper.
        seed: seed for workload generation, arrivals, retry jitter and the
            simulator RNG.
        faults: unified fault plan (message loss / duplication / reordering,
            omission and Byzantine sites, retransmission).  Hash-optional:
            ``None`` keeps the spec hash byte-identical to the pre-FaultPlan
            format.
        lock_transport: ``"direct"`` (lock requests placed straight at the
            sites, the historical modelling choice) or ``"network"`` (lock
            request / grant travel as messages, so partitions and loss
            faults cut lock acquisition too).  Auto-upgraded to
            ``"network"`` when a fault plan with message faults is present.
            Hash-optional at its ``"direct"`` default.
    """

    n_sites: int = 3
    n_transactions: int = 200
    tx_rate: float = 4.0
    arrival: str = "uniform"
    read_fraction: float = 0.2
    operations_per_site: int = 1
    n_keys: int = 8
    participants_per_transaction: Optional[int] = None
    hotspot: float = 0.0
    op_delay: float = 0.05
    partition: Optional[PartitionSchedule] = None
    crashes: Optional[CrashSchedule] = None
    latency: Optional[LatencyModel] = None
    model: str = OPTIMISTIC
    deadlock: DeadlockPolicy = field(default_factory=DeadlockPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    horizon: Optional[float] = None
    seed: int = 0
    faults: Optional[FaultPlan] = field(
        default=None, metadata={"hash_optional": True}
    )
    lock_transport: str = field(
        default="direct", metadata={"hash_optional": True}
    )

    def __post_init__(self) -> None:
        self.faults = normalize_fault_plan(self.faults)
        if self.faults is not None:
            self.faults.validate(self.n_sites)
            if self.faults.has_message_faults and self.lock_transport == "direct":
                # Message faults must be able to cut lock acquisition; a
                # direct (non-network) lock path would silently bypass them.
                self.lock_transport = "network"
        if self.lock_transport not in ("direct", "network"):
            raise ValueError(
                f"lock_transport must be 'direct' or 'network', "
                f"got {self.lock_transport!r}"
            )
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {self.n_sites}")
        if self.n_transactions < 1:
            raise ValueError(f"n_transactions must be >= 1, got {self.n_transactions}")
        if self.tx_rate <= 0:
            raise ValueError(f"tx_rate must be > 0, got {self.tx_rate}")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}"
            )
        if self.n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {self.n_keys}")
        if self.op_delay < 0:
            raise ValueError(f"op_delay must be >= 0, got {self.op_delay}")
        if self.crashes is not None:
            self.crashes.validate(self.n_sites)
        # Build the workload config eagerly (mix ranges, participant counts,
        # master bounds, hotspot exponent) so bad specs fail at
        # construction, not mid-sweep in a worker process.
        self.workload_config()

    def effective_latency(self) -> LatencyModel:
        """The latency model, defaulting to a constant delay of 1 (= T)."""
        return self.latency or ConstantLatency(1.0)

    def workload_config(self) -> WorkloadConfig:
        """The equivalent workload-generator configuration."""
        return WorkloadConfig(
            n_sites=self.n_sites,
            n_transactions=self.n_transactions,
            keys=tuple(f"key-{index}" for index in range(self.n_keys)),
            participants_per_transaction=self.participants_per_transaction,
            mix=TransactionMix(
                read_fraction=self.read_fraction,
                operations_per_site=self.operations_per_site,
            ),
            master=1,
            hotspot=self.hotspot,
            seed=self.seed,
        )

    def arrival_times(self) -> list[float]:
        """Deterministic admission instants for the configured process."""
        interval = self.effective_latency().upper_bound / self.tx_rate
        return generate_arrivals(
            self.n_transactions,
            mean_gap=interval,
            process=self.arrival,
            seed=self.seed,
        )

    def effective_horizon(self) -> float:
        """The run horizon: explicit, or admission span plus ``40 T`` drain.

        With retransmission in force the drain is measured in the plan's
        *effective* delivery bound (retransmitted messages may take several
        rounds), mirroring :meth:`ScenarioSpec.effective_horizon`.
        """
        if self.horizon is not None:
            return self.horizon
        max_delay = self.effective_latency().upper_bound
        if self.faults is not None and self.faults.retransmit is not None:
            max_delay = self.faults.effective_max_delay(max_delay)
        return self.arrival_times()[-1] + 40.0 * max_delay


@dataclass
class ThroughputRunResult:
    """A throughput run with its live objects, for tests and diagnostics.

    The engine keeps only :attr:`summary`; the scheduler / cluster stay in
    the worker process, like the single-transaction runner's heavyweight
    state.
    """

    summary: ThroughputSummary
    scheduler: TransactionScheduler
    cluster: Cluster
    db_sites: dict[int, DatabaseSite]


def run_throughput_scenario(
    protocol: Union[str, ProtocolDefinition],
    spec: Optional[ThroughputSpec] = None,
    *,
    spec_hash: str = "",
    **overrides,
) -> ThroughputRunResult:
    """Run one contended workload under ``protocol`` and summarize it.

    Keyword overrides are applied on top of ``spec`` (or a default spec),
    mirroring :func:`~repro.protocols.runner.run_scenario`.
    """
    if spec is None:
        spec = ThroughputSpec()
    if overrides:
        spec = ThroughputSpec(**{**spec.__dict__, **overrides})
    if isinstance(protocol, str):
        protocol = create_protocol(protocol)

    latency = spec.effective_latency()
    max_delay = latency.upper_bound
    if spec.faults is not None and spec.faults.retransmit is not None:
        max_delay = spec.faults.effective_max_delay(max_delay)
    cluster = Cluster(spec.n_sites, latency=latency, model=spec.model, seed=spec.seed)
    db_sites = {site: DatabaseSite(site) for site in cluster.site_ids()}
    scheduler = TransactionScheduler(
        cluster,
        protocol,
        db_sites,
        policy=spec.deadlock,
        retry=spec.retry,
        op_delay=spec.op_delay,
        timers=TerminationTimers(max_delay=max_delay),
        seed=spec.seed,
        lock_transport=spec.lock_transport,
    )
    if spec.partition is not None:
        cluster.apply_partition_schedule(spec.partition)
    if spec.crashes is not None:
        cluster.apply_crash_schedule(spec.crashes)
    if spec.faults is not None:
        cluster.apply_fault_plan(spec.faults)
        if spec.faults.byzantine:
            from repro.protocols.byzantine import install_byzantine_interceptors

            install_byzantine_interceptors(cluster, spec.faults)
    scheduler.submit_all(
        generate_transactions(spec.workload_config()), arrivals=spec.arrival_times()
    )
    horizon = spec.effective_horizon()
    cluster.run(until=horizon, max_events=5_000_000)
    scheduler.finalize(horizon)

    summary = ThroughputSummary(
        protocol=getattr(protocol, "name", type(protocol).__name__),
        spec_hash=spec_hash,
        seed=spec.seed,
        n_sites=spec.n_sites,
        duration=horizon,
        max_delay=latency.upper_bound,
        peak_in_flight=scheduler.peak_in_flight,
        peak_waiting=scheduler.peak_waiting,
        deadlock_aborts=scheduler.deadlock_aborts,
        timeout_aborts=scheduler.timeout_aborts,
        retries=scheduler.retries,
        crashes=scheduler.crashes,
        recoveries=scheduler.recoveries,
        wal_redone=scheduler.wal_redone,
        lock_hold_total=scheduler.lock_hold_total(horizon),
        messages_sent=cluster.network.messages_sent,
        messages_delivered=cluster.network.messages_delivered,
        messages_bounced=cluster.network.messages_bounced,
        messages_dropped=cluster.network.messages_dropped,
    )
    cause_fields = {
        AbortCause.DEADLOCK.value: "aborted_deadlock",
        AbortCause.TIMEOUT.value: "aborted_timeout",
        AbortCause.CRASH.value: "aborted_crash",
        AbortCause.PARTITION.value: "aborted_partition",
    }
    outcomes = scheduler.outcomes()
    for outcome in outcomes:
        summary.offered += 1
        summary.lock_wait_total += outcome.lock_wait
        if outcome.verdict is TransactionVerdict.COMMITTED:
            summary.committed += 1
            summary.commit_latency_total += outcome.commit_latency or 0.0
            if outcome.attempts == 1:
                summary.committed_first_try += 1
            else:
                summary.committed_after_retry += 1
        elif outcome.verdict is TransactionVerdict.ABORTED:
            summary.aborted += 1
            field_name = cause_fields.get(outcome.abort_cause)
            if field_name is None:
                # Loud, not silently misattributed: every abort path must
                # tag its cause or the per-cause split would quietly lie.
                raise ValueError(
                    f"transaction {outcome.transaction_id} aborted with "
                    f"unknown cause {outcome.abort_cause!r}"
                )
            setattr(summary, field_name, getattr(summary, field_name) + 1)
        elif outcome.verdict is TransactionVerdict.BLOCKED:
            summary.blocked += 1
        elif outcome.verdict is TransactionVerdict.STALLED:
            summary.stalled += 1
        else:
            summary.violated += 1
    metrics = _active_metrics()
    if metrics is not None:
        # Post-run fold (one pass per scenario, zero cost while the
        # simulation runs): the contention shape of this workload.  The
        # lock-wait histogram is in *simulated* time units, hence the
        # ``_simtime`` suffix that keeps it out of wall-clock phase tables.
        lock_wait = metrics.histogram(
            "txn.lock_wait_simtime", bounds=SIM_TIME_BUCKETS
        )
        for outcome in outcomes:
            lock_wait.observe(outcome.lock_wait)
        metrics.counter("txn.offered").inc(summary.offered)
        metrics.counter("txn.committed").inc(summary.committed)
        metrics.counter("txn.aborted").inc(summary.aborted)
        metrics.counter("txn.deadlock_aborts").inc(summary.deadlock_aborts)
        metrics.counter("txn.timeout_aborts").inc(summary.timeout_aborts)
        metrics.counter("txn.retries").inc(summary.retries)
        metrics.gauge("txn.peak_waiting").set(float(scheduler.peak_waiting))
        metrics.gauge("txn.retry_backlog_peak").set(
            float(scheduler.peak_retry_backlog)
        )
    return ThroughputRunResult(
        summary=summary, scheduler=scheduler, cluster=cluster, db_sites=db_sites
    )
