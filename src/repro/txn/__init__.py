"""Concurrent-transaction subsystem: contention, deadlocks, throughput.

The single-transaction runner measures the paper's availability argument
indirectly (lock-hold times of one transaction); this package measures it
directly by scheduling *many* commit-protocol instances concurrently over
one shared cluster:

* :mod:`repro.txn.multiplex` -- per-transaction virtual nodes multiplexed
  over the shared sites (message routing by transaction id, namespaced
  timers);
* :mod:`repro.txn.scheduler` -- the lock-contention scheduler: strict-2PL
  execution phase through FIFO lock queues, deadlock handling, one
  coordinator role-set per in-flight transaction, crash write-offs and
  WAL-replaying recovery;
* :mod:`repro.txn.deadlock` -- waits-for cycle detection, pluggable
  :class:`~repro.txn.deadlock.VictimPolicy` selection and the configurable
  :class:`~repro.txn.deadlock.DeadlockPolicy`;
* :mod:`repro.txn.retry` -- :class:`~repro.txn.retry.RetryPolicy` victim
  re-admission with seeded exponential backoff, and the
  :class:`~repro.txn.retry.AbortCause` accounting split;
* :mod:`repro.txn.runner` / :mod:`repro.txn.summary` -- declarative
  :class:`~repro.txn.runner.ThroughputSpec` scenarios reduced to plain
  :class:`~repro.txn.summary.ThroughputSummary` records that flow through
  the sweep engine's workers, cache and streaming sinks;
* :mod:`repro.txn.kind` / :mod:`repro.txn.sink` -- the subsystem's
  spec-kind registration (executor, codec, and the
  :class:`~repro.txn.sink.ThroughputSink` default aggregate) with
  :mod:`repro.engine.registry`; the engine resolves everything above
  through the registry and imports nothing from this package.

The ``repro throughput`` CLI subcommand and
:mod:`repro.experiments.throughput` build the partition-onset x offered
load x read-fraction sweeps on top.
"""

from repro.txn.deadlock import (
    DeadlockPolicy,
    VictimPolicy,
    find_cycle,
    merge_waits_for,
    select_victim,
)
from repro.txn.multiplex import SiteMultiplexer, VirtualNode
from repro.txn.retry import AbortCause, RetryPolicy
from repro.txn.runner import ThroughputRunResult, ThroughputSpec, run_throughput_scenario
from repro.txn.scheduler import TransactionScheduler, TransactionState, TxnPhase
from repro.txn.sink import ThroughputSink
from repro.txn.summary import ThroughputSummary, TransactionOutcome, TransactionVerdict

__all__ = [
    "AbortCause",
    "DeadlockPolicy",
    "RetryPolicy",
    "SiteMultiplexer",
    "ThroughputRunResult",
    "ThroughputSink",
    "ThroughputSpec",
    "ThroughputSummary",
    "TransactionOutcome",
    "TransactionScheduler",
    "TransactionState",
    "TransactionVerdict",
    "TxnPhase",
    "VictimPolicy",
    "VirtualNode",
    "find_cycle",
    "merge_waits_for",
    "run_throughput_scenario",
    "select_victim",
]
