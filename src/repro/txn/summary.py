"""Per-transaction outcomes and the per-scenario ``ThroughputSummary``.

A throughput scenario runs *many* concurrent transactions through one
cluster, so its result is not a per-site decision vector but a workload
aggregate: how many transactions committed / aborted / blocked, how long
they queued for locks, and the resulting goodput.  The records here are
plain picklable data with canonical JSON (sorted keys, ``kind`` tag), so
they flow through the existing sweep-engine machinery unchanged -- worker
processes return them, the on-disk result cache stores them (dispatched on
the ``kind`` field), :class:`~repro.engine.sink.JsonlSink` spills them
byte-identically across worker counts, and the determinism tests compare
them byte-for-byte.

This module deliberately imports nothing from :mod:`repro.engine`; the
engine imports *it* (one-way layering, like
:class:`~repro.engine.summary.RunSummary`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.canonical import canonical_json_bytes


class TransactionVerdict(enum.Enum):
    """Final classification of one transaction in a contended run."""

    COMMITTED = "committed"          # every participant committed
    ABORTED = "aborted"              # terminated without committing anywhere
    BLOCKED = "blocked"              # protocol started, some site never decided
    STALLED = "stalled"              # still waiting for locks at the horizon
    VIOLATED = "violated"            # mixed commit / abort across sites


@dataclass
class TransactionOutcome:
    """Per-transaction metrics emitted by the scheduler.

    Times are simulated-time; ``None`` marks phases never reached.
    ``lock_wait`` is the execution-phase queueing delay (admission to the
    final lock grant, or to abort / horizon for transactions that never got
    their locks) -- the paper's "data inaccessible to other transactions"
    cost, measured per transaction.
    """

    transaction_id: str
    index: int
    verdict: TransactionVerdict
    admitted_at: float
    all_granted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    lock_wait: float = 0.0
    abort_reason: str = ""
    #: :class:`~repro.txn.retry.AbortCause` value of the final abort
    #: ("" while committed / unfinished).
    abort_cause: str = ""
    #: Total admissions of this logical transaction (1 = no retries).
    attempts: int = 1

    @property
    def commit_latency(self) -> Optional[float]:
        """Protocol start to last participant decision (decided runs only)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


@dataclass
class ThroughputSummary:
    """The outcome of one contended-workload scenario, as plain data.

    Carries the same engine plumbing fields as
    :class:`~repro.engine.summary.RunSummary` (``protocol``, ``spec_hash``,
    ``seed``, ``metrics``) so :class:`~repro.engine.engine.SweepEngine`
    streams, caches and spills it through the existing sinks.
    """

    protocol: str
    spec_hash: str
    seed: int
    n_sites: int
    offered: int = 0
    committed: int = 0
    aborted: int = 0
    blocked: int = 0
    stalled: int = 0
    violated: int = 0
    # Retry accounting: committed == committed_first_try +
    # committed_after_retry; retries counts re-admissions (attempts - 1
    # summed over every logical transaction that retried).
    committed_first_try: int = 0
    committed_after_retry: int = 0
    retries: int = 0
    # Final-abort split by cause: aborted == aborted_deadlock +
    # aborted_timeout + aborted_crash + aborted_partition.  (PR 3 folded
    # all four into the single `aborted` counter.)
    aborted_deadlock: int = 0
    aborted_timeout: int = 0
    aborted_crash: int = 0
    aborted_partition: int = 0
    # Victim *events* (per attempt, so retried victims count again).
    deadlock_aborts: int = 0
    timeout_aborts: int = 0
    # Crash / recovery schedule accounting.
    crashes: int = 0
    recoveries: int = 0
    wal_redone: int = 0
    duration: float = 0.0
    max_delay: float = 1.0
    lock_wait_total: float = 0.0
    lock_hold_total: float = 0.0
    commit_latency_total: float = 0.0
    peak_in_flight: int = 0
    peak_waiting: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_bounced: int = 0
    messages_dropped: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # derived rates
    # ------------------------------------------------------------------
    @property
    def finished(self) -> int:
        """Transactions that terminated everywhere (committed or aborted)."""
        return self.committed + self.aborted

    @property
    def goodput(self) -> float:
        """Committed transactions per ``T`` of simulated time."""
        if self.duration <= 0:
            return 0.0
        return self.committed / (self.duration / (self.max_delay or 1.0))

    @property
    def abort_rate(self) -> float:
        """Aborted fraction of the offered transactions."""
        return self.aborted / self.offered if self.offered else 0.0

    @property
    def blocked_rate(self) -> float:
        """Fraction of offered transactions blocked or stalled at the horizon."""
        if not self.offered:
            return 0.0
        return (self.blocked + self.stalled) / self.offered

    @property
    def mean_lock_wait(self) -> float:
        """Mean per-transaction lock-queueing delay, in units of ``T``."""
        if not self.offered:
            return 0.0
        return self.lock_wait_total / self.offered / (self.max_delay or 1.0)

    @property
    def mean_commit_latency(self) -> Optional[float]:
        """Mean protocol latency of committed transactions, in units of ``T``."""
        if not self.committed:
            return None
        return self.commit_latency_total / self.committed / (self.max_delay or 1.0)

    @property
    def exhausted(self) -> int:
        """Logical transactions that aborted with their attempt budget spent.

        Every final abort is an exhausted budget (a budget of 1 exhausts
        on the first abort), so this is an alias that names the open-loop
        reading of :attr:`aborted`.
        """
        return self.aborted

    @property
    def retried_fraction(self) -> float:
        """Fraction of committed transactions that needed a retry."""
        if not self.committed:
            return 0.0
        return self.committed_after_retry / self.committed

    @property
    def atomicity_violated(self) -> bool:
        """True when any transaction mixed commit and abort across sites."""
        return self.violated > 0

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"{self.protocol}: {self.committed}/{self.offered} committed "
            f"({self.goodput:.2f}/T, {self.committed_after_retry} after retry), "
            f"{self.aborted} aborted, "
            f"{self.blocked + self.stalled} blocked, "
            f"mean lock wait {self.mean_lock_wait:.2f} T"
        )

    # ------------------------------------------------------------------
    # canonical JSON (cache + JSONL spill format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; ``kind`` tags the record for cache dispatch."""
        return {
            "kind": "throughput",
            "protocol": self.protocol,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "n_sites": self.n_sites,
            "offered": self.offered,
            "committed": self.committed,
            "aborted": self.aborted,
            "blocked": self.blocked,
            "stalled": self.stalled,
            "violated": self.violated,
            "committed_first_try": self.committed_first_try,
            "committed_after_retry": self.committed_after_retry,
            "retries": self.retries,
            "aborted_deadlock": self.aborted_deadlock,
            "aborted_timeout": self.aborted_timeout,
            "aborted_crash": self.aborted_crash,
            "aborted_partition": self.aborted_partition,
            "deadlock_aborts": self.deadlock_aborts,
            "timeout_aborts": self.timeout_aborts,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "wal_redone": self.wal_redone,
            "duration": self.duration,
            "max_delay": self.max_delay,
            "lock_wait_total": self.lock_wait_total,
            "lock_hold_total": self.lock_hold_total,
            "commit_latency_total": self.commit_latency_total,
            "peak_in_flight": self.peak_in_flight,
            "peak_waiting": self.peak_waiting,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_bounced": self.messages_bounced,
            "messages_dropped": self.messages_dropped,
            "metrics": self.metrics,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ThroughputSummary":
        """Rebuild a summary from :meth:`to_json_dict` output."""
        data = {k: v for k, v in payload.items() if k != "kind"}
        data["metrics"] = dict(data.get("metrics", {}))
        return cls(**data)

    def to_json_bytes(self) -> bytes:
        """Canonical JSON bytes (shared contract: :mod:`repro.core.canonical`)."""
        return canonical_json_bytes(self.to_json_dict())

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "ThroughputSummary":
        """Inverse of :meth:`to_json_bytes`."""
        return cls.from_json_dict(json.loads(data.decode("utf-8")))
