"""The lock-contention transaction scheduler.

:class:`TransactionScheduler` admits a stream of update transactions
against one shared :class:`~repro.sim.cluster.Cluster` and runs one
commit-protocol instance per in-flight transaction, multiplexed over the
same sites (:mod:`repro.txn.multiplex`).  It models the paper's setting
end-to-end:

1. **Execution phase (strict 2PL growth).**  At admission a transaction
   requests its locks operation by operation -- shared for reads,
   exclusive for writes, ``op_delay`` apart -- through the sites' FIFO
   lock queues (:meth:`~repro.db.site.DatabaseSite.request_lock`).
   Conflicts *wait* rather than abort; incremental acquisition means lock
   cycles can form and are broken per the
   :class:`~repro.txn.deadlock.DeadlockPolicy` (waits-for cycle detection
   with youngest-victim abort, and/or lock-wait timeouts).
2. **Commit phase.**  Once every lock is granted, the scheduler builds the
   protocol's coordinator / participant roles on per-transaction virtual
   nodes and starts them; messages travel the real network, so partitions
   hit the commit protocols exactly as in the single-transaction runner.
3. **Termination.**  Decisions release locks
   (:meth:`~repro.db.site.DatabaseSite.commit` / ``abort``), which
   promotes queued waiters and resumes their acquisition -- the chain
   through which a *blocked* protocol's retained locks throttle every
   transaction behind it, the Section 1-2 availability argument made
   measurable.
4. **Retry.**  An aborted attempt (deadlock or timeout victim, crash
   write-off, or a commit-phase protocol abort) re-enters the scheduler
   as a fresh attempt after a seeded exponential backoff, until the
   :class:`~repro.txn.retry.RetryPolicy` budget is exhausted -- the
   open-loop behaviour real clients exhibit, and the mechanism by which
   retry storms amplify a blocking protocol's goodput collapse.

Site crashes are modelled end to end: a crash wipes the site's volatile
lock table (:meth:`~repro.db.site.DatabaseSite.crash`) and writes off
every execution-phase transaction touching the site; a recovery replays
the WAL (:meth:`~repro.db.site.DatabaseSite.recover`) *before* any role
or re-admitted lock request observes the site, then accepts new lock
traffic on the fresh table.

Everything is driven by the deterministic simulation kernel: given the
same transactions, arrival times and seed, a run is bit-for-bit
reproducible (the determinism suite compares whole
:class:`~repro.txn.summary.ThroughputSummary` records across worker
counts).

Lock *transport* is selectable.  The default (``lock_transport="direct"``)
places lock requests directly at the sites -- the historical modelling
shortcut, byte-identical to previous releases.  With
``lock_transport="network"`` every remote lock request travels the
simulated network as a message from the transaction's master site to the
participant, and the grant travels back the same way: partitions bounce
the request (the attempt aborts, cause ``partition``), message-loss faults
silently eat requests or grants (the lock-wait timeout picks up the
pieces), and the retransmission layer -- when enabled in the fault plan --
repairs lock traffic exactly as it repairs protocol traffic.  Fault plans
with message-level faults auto-select the network transport (see
:class:`~repro.txn.runner.ThroughputSpec`), because a fault model that
cannot touch lock acquisition would overstate availability.  See
``docs/concurrency.md`` for this and the other modelling choices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.termination import TerminationTimers
from repro.db.locks import LockMode, LockRequest
from repro.db.site import DatabaseSite, SiteState
from repro.db.transactions import OpKind, Transaction
from repro.protocols.base import Decision, ProtocolContext, ProtocolDefinition, RoleBase
from repro.sim.cluster import Cluster
from repro.sim.events import Event
from repro.sim.network import Undeliverable
from repro.txn.deadlock import (
    DeadlockPolicy,
    VictimPolicy,
    find_cycle,
    merge_waits_for,
    select_victim,
)
from repro.txn.multiplex import SiteMultiplexer, VirtualNode
from repro.txn.retry import AbortCause, RetryPolicy, attempt_id
from repro.txn.summary import TransactionOutcome, TransactionVerdict


class TxnPhase(enum.Enum):
    """Where a transaction is in the scheduler's pipeline."""

    WAITING = "waiting"    # execution phase: acquiring locks
    RUNNING = "running"    # commit protocol in flight
    DONE = "done"          # terminated (or written off by the scheduler)


#: Valid values for ``TransactionScheduler(lock_transport=...)``.
LOCK_TRANSPORTS = ("direct", "network")


class LockRequestMessage:
    """A remote lock request on the wire (``lock_transport="network"``).

    Sent from the transaction's master site to the participant that owns
    the key; the participant places the request in its local lock table.
    """

    __slots__ = ("transaction_id", "key", "mode")
    kind = "lock-request"

    def __init__(self, transaction_id: str, key: str, mode: LockMode) -> None:
        self.transaction_id = transaction_id
        self.key = key
        self.mode = mode


class LockGrantMessage:
    """A lock grant travelling back from the participant to the master."""

    __slots__ = ("transaction_id", "site", "key")
    kind = "lock-grant"

    def __init__(self, transaction_id: str, site: int, key: str) -> None:
        self.transaction_id = transaction_id
        self.site = site
        self.key = key


class RemoteLockWait:
    """Master-side marker for a lock request that is out on the network.

    Stands in for the :class:`~repro.db.locks.LockRequest` in
    ``TransactionState.pending_request`` while the request (or its grant)
    is in flight; ``enqueued_at`` is the send time, so the measured lock
    wait includes the network round trip.
    """

    __slots__ = ("site", "key", "mode", "enqueued_at")

    def __init__(self, site: int, key: str, mode: LockMode, enqueued_at: float) -> None:
        self.site = site
        self.key = key
        self.mode = mode
        self.enqueued_at = enqueued_at


@dataclass
class TransactionState:
    """Scheduler-side bookkeeping for one admitted transaction."""

    transaction: Transaction
    index: int
    admitted_at: float
    plan: list[tuple[int, str, LockMode]]
    next_op: int = 0
    phase: TxnPhase = TxnPhase.WAITING
    #: The queued local LockRequest, or a RemoteLockWait marker while a
    #: network-transport request / grant is in flight.
    pending_request: Optional[Any] = None
    pending_site: Optional[int] = None
    timeout_event: Optional[Event] = None
    lock_wait: float = 0.0
    all_granted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    decisions: dict[int, Decision] = field(default_factory=dict)
    roles: dict[int, RoleBase] = field(default_factory=dict)
    verdict: Optional[TransactionVerdict] = None
    abort_reason: str = ""
    #: :class:`~repro.txn.retry.AbortCause` value of this attempt's abort.
    abort_cause: str = ""
    #: Base (workload) transaction id shared by every attempt.
    logical_id: str = ""
    #: 1-based attempt number of this admission.
    attempt: int = 1
    #: True when a later attempt was scheduled to supersede this abort.
    retried: bool = False

    @property
    def transaction_id(self) -> str:
        """Shortcut for the transaction id."""
        return self.transaction.transaction_id


class TransactionScheduler:
    """Admits, locks, runs and accounts concurrent transactions on a cluster.

    Args:
        cluster: the shared simulated deployment.
        protocol: commit-protocol definition used for every transaction.
        db_sites: one :class:`~repro.db.site.DatabaseSite` per cluster site.
        policy: deadlock handling configuration.
        retry: re-admission policy for aborted attempts (default: none,
            the PR 3 write-off behaviour).
        op_delay: simulated execution time of one data operation (the gap
            between successive lock requests of a transaction; values > 0
            let acquisition interleave, which is what makes lock cycles
            possible).
        timers: protocol timeout structure (defaults to the cluster's ``T``).
        seed: seeds the retry-backoff jitter (the workload seed, so one
            spec pins the whole retry schedule).
        lock_transport: ``"direct"`` (the default: lock requests are placed
            straight into the sites' lock tables) or ``"network"`` (remote
            lock requests and grants travel the simulated network, so
            partitions and message faults cut lock acquisition; see the
            module docstring).
    """

    def __init__(
        self,
        cluster: Cluster,
        protocol: ProtocolDefinition,
        db_sites: dict[int, DatabaseSite],
        *,
        policy: Optional[DeadlockPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        op_delay: float = 0.0,
        timers: Optional[TerminationTimers] = None,
        seed: int = 0,
        lock_transport: str = "direct",
    ) -> None:
        if op_delay < 0:
            raise ValueError(f"op_delay must be >= 0, got {op_delay}")
        if lock_transport not in LOCK_TRANSPORTS:
            raise ValueError(
                f"lock_transport must be one of {LOCK_TRANSPORTS}, got {lock_transport!r}"
            )
        self.cluster = cluster
        self.protocol = protocol
        self.db_sites = db_sites
        self.policy = policy or DeadlockPolicy()
        self.retry = retry or RetryPolicy()
        self.op_delay = op_delay
        self.timers = timers or TerminationTimers(max_delay=cluster.max_delay)
        self.seed = seed
        self.lock_transport = lock_transport
        self.multiplexers: dict[int, SiteMultiplexer] = {
            site: SiteMultiplexer(cluster.node(site)) for site in cluster.site_ids()
        }
        for site, multiplexer in sorted(self.multiplexers.items()):
            multiplexer.crash_listeners.append(
                lambda _site=site: self._on_site_crashed(_site)
            )
            multiplexer.recover_listeners.append(
                lambda _site=site: self._on_site_recovered(_site)
            )
            if lock_transport == "network":
                multiplexer.message_listeners.append(
                    lambda payload, envelope, _site=site: self._on_lock_message(
                        _site, payload, envelope
                    )
                )
        for site, db in sorted(db_sites.items()):
            db.locks.on_grant = (
                lambda request, _site=site: self._on_lock_granted(_site, request)
            )
        self.states: dict[str, TransactionState] = {}
        self._order: list[str] = []
        self._logical_order: list[str] = []
        self._attempts: dict[str, list[TransactionState]] = {}
        self.waiting = 0
        self.running = 0
        self.peak_waiting = 0
        self.peak_in_flight = 0
        self.deadlock_aborts = 0
        self.timeout_aborts = 0
        self.crash_writeoffs = 0
        self.retries = 0
        self.crashes = 0
        self.recoveries = 0
        self.wal_redone = 0
        # Retry backlog: aborted attempts sitting in backoff, scheduled but
        # not yet re-admitted.  Observability-only (never summarized): the
        # peak says how deep the resubmission queue got under a retry storm.
        self.retry_backlog = 0
        self.peak_retry_backlog = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.cluster.sim.now

    def submit(self, transaction: Transaction, *, at: float) -> None:
        """Schedule ``transaction`` for admission at simulated time ``at``."""
        self.cluster.sim.schedule_at(
            at,
            lambda txn=transaction: self._admit(txn),
            label=f"admit {transaction.transaction_id}",
        )

    def submit_all(self, transactions, *, arrivals) -> None:
        """Submit a transaction stream with its per-transaction arrival times."""
        for transaction, at in zip(transactions, arrivals):
            self.submit(transaction, at=at)

    @property
    def admitted(self) -> int:
        """Logical transactions admitted so far (attempts collapse to one)."""
        return len(self._logical_order)

    def outcomes(self) -> list[TransactionOutcome]:
        """Per-*logical*-transaction outcomes in admission order.

        Retries collapse: every attempt of a transaction contributes its
        lock wait, the final attempt supplies the verdict and timestamps,
        and ``attempts`` counts the admissions.  A transaction whose next
        retry was scheduled but had not been re-admitted when the horizon
        struck is still *in flight* -- reported stalled, not aborted.
        """
        out = []
        for position, logical_id in enumerate(self._logical_order):
            attempts = self._attempts[logical_id]
            final = attempts[-1]
            verdict = final.verdict or TransactionVerdict.STALLED
            abort_reason = final.abort_reason
            abort_cause = final.abort_cause
            if final.retried:
                verdict = TransactionVerdict.STALLED
                abort_reason = f"retry {final.attempt + 1} pending at horizon"
                abort_cause = ""
            out.append(
                TransactionOutcome(
                    transaction_id=logical_id,
                    index=position,
                    verdict=verdict,
                    admitted_at=attempts[0].admitted_at,
                    all_granted_at=final.all_granted_at,
                    started_at=final.started_at,
                    finished_at=final.finished_at,
                    lock_wait=sum(state.lock_wait for state in attempts),
                    abort_reason=abort_reason,
                    abort_cause=abort_cause,
                    attempts=len(attempts),
                )
            )
        return out

    # ------------------------------------------------------------------
    # admission + lock acquisition (execution phase)
    # ------------------------------------------------------------------
    def _admit(
        self,
        transaction: Transaction,
        *,
        logical_id: Optional[str] = None,
        attempt: int = 1,
    ) -> None:
        transaction_id = transaction.transaction_id
        if transaction_id in self.states:
            raise ValueError(f"transaction {transaction_id} already admitted")
        logical = logical_id or transaction_id
        state = TransactionState(
            transaction=transaction,
            index=len(self._order),
            admitted_at=self.now,
            plan=self._lock_plan(transaction),
            logical_id=logical,
            attempt=attempt,
        )
        self.states[transaction_id] = state
        self._order.append(transaction_id)
        if attempt == 1:
            self._logical_order.append(logical)
        else:
            # Counted at admission, not when the retry is scheduled, so
            # summary.retries == sum(attempts - 1): a re-admission the
            # horizon cut off is in-flight, not a retry that happened.
            self.retries += 1
            self.retry_backlog -= 1
        self._attempts.setdefault(logical, []).append(state)
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        self.cluster.trace.record(
            self.now, "admit", site=transaction.master, transaction=transaction_id
        )
        self._advance(state)

    @staticmethod
    def _lock_plan(transaction: Transaction) -> list[tuple[int, str, LockMode]]:
        """The strict-2PL growth schedule: one request per operation, deduped.

        A read after a write on the same key is covered; a write after a
        read becomes an upgrade request (the lock manager handles it).
        """
        plan: list[tuple[int, str, LockMode]] = []
        held: dict[tuple[int, str], LockMode] = {}
        for op in transaction.operations:
            mode = LockMode.EXCLUSIVE if op.kind is OpKind.WRITE else LockMode.SHARED
            current = held.get((op.site, op.key))
            if current is not None and current.covers(mode):
                continue
            plan.append((op.site, op.key, mode))
            held[(op.site, op.key)] = mode
        return plan

    def _advance(self, state: TransactionState) -> None:
        """Request the next locks; start the commit protocol when done."""
        while state.phase is TxnPhase.WAITING and state.next_op < len(state.plan):
            site, key, mode = state.plan[state.next_op]
            if self.cluster.node(site).crashed or self.db_sites[site].state is SiteState.CRASHED:
                # The execution phase cannot proceed at a crashed site;
                # write the transaction off instead of raising mid-event.
                self._abort_waiting(
                    state, cause=AbortCause.CRASH, reason=f"site {site} crashed"
                )
                return
            if self.lock_transport == "network" and site != state.transaction.master:
                self._request_remote_lock(state, site, key, mode)
                return
            request = self.db_sites[site].request_lock(
                state.transaction_id, key, mode, now=self.now
            )
            if request.granted is None:
                state.pending_request = request
                state.pending_site = site
                self._arm_wait_timeout(state)
                if self.policy.detect_cycles:
                    self._break_deadlocks()
                return
            if not self._operation_done(state):
                return
        if state.phase is TxnPhase.WAITING:
            self._start_protocol(state)

    def _operation_done(self, state: TransactionState) -> bool:
        """Step past a granted operation; False when the next lock request
        was deferred by ``op_delay`` (the operation's execution time)."""
        state.next_op += 1
        if self.op_delay > 0 and state.next_op < len(state.plan):
            self.cluster.sim.schedule(
                self.op_delay,
                lambda s=state: self._advance(s),
                label=f"next-op {state.transaction_id}",
            )
            return False
        return True

    def _on_lock_granted(self, site: int, request: LockRequest) -> None:
        state = self.states.get(request.owner)
        if state is None or state.phase is not TxnPhase.WAITING:
            return
        pending = state.pending_request
        if (
            type(pending) is RemoteLockWait
            and pending.site == site
            and pending.key == request.key
        ):
            # Network transport: a queued remote request was promoted; the
            # grant travels back to the master as a message.
            self._send_lock_grant(site, request)
            return
        if pending is not request:
            return
        state.pending_request = None
        state.pending_site = None
        state.lock_wait += request.wait_time
        self._cancel_wait_timeout(state)
        if self._operation_done(state):
            self._advance(state)

    # ------------------------------------------------------------------
    # network lock transport
    # ------------------------------------------------------------------
    def _request_remote_lock(
        self, state: TransactionState, site: int, key: str, mode: LockMode
    ) -> None:
        """Send the next lock request over the wire (network transport).

        The master node sends a :class:`LockRequestMessage` to the
        participant; until the grant message returns, the transaction waits
        on a :class:`RemoteLockWait` marker.  A partition bounce aborts the
        attempt; a silently lost request or grant is caught by the
        lock-wait timeout (when configured) or stalls the attempt at the
        horizon -- exactly the failure surface the direct transport hides.
        """
        master = state.transaction.master
        if self.cluster.node(master).crashed:
            self._abort_waiting(
                state, cause=AbortCause.CRASH, reason=f"master site {master} crashed"
            )
            return
        state.pending_request = RemoteLockWait(site, key, mode, self.now)
        state.pending_site = site
        self._arm_wait_timeout(state)
        self.cluster.node(master).send(
            site, LockRequestMessage(state.transaction_id, key, mode)
        )

    def _on_lock_message(self, site: int, payload: Any, envelope: Any) -> bool:
        """Multiplexer message listener for lock traffic at ``site``.

        Returns True when the delivery was lock-transport traffic (consumed
        here), False to let transaction routing proceed.
        """
        bounced = isinstance(payload, Undeliverable)
        inner = payload.payload if bounced else payload
        kind = type(inner)
        if kind is LockRequestMessage:
            if bounced:
                # The request came back UD to the master: the participant is
                # unreachable, so the attempt cannot grow its lock set.
                state = self.states.get(inner.transaction_id)
                if state is not None and state.phase is TxnPhase.WAITING:
                    self._abort_waiting(
                        state,
                        cause=AbortCause.PARTITION,
                        reason=(
                            f"lock request to site {payload.intended_destination}"
                            " undeliverable"
                        ),
                    )
            else:
                self._place_remote_lock(site, inner)
            return True
        if kind is LockGrantMessage:
            if not bounced:
                self._on_remote_grant(inner)
            # A bounced grant returns to the participant; the master's
            # lock-wait timeout (or the horizon) handles the silence.
            return True
        return False

    def _place_remote_lock(self, site: int, message: LockRequestMessage) -> None:
        """A lock request arrived at the participant: place it locally."""
        state = self.states.get(message.transaction_id)
        if state is None or state.phase is not TxnPhase.WAITING:
            # The attempt was aborted (or finished) while the request was in
            # flight; placing the lock now would leak it past the abort's
            # release pass.
            return
        pending = state.pending_request
        if (
            type(pending) is not RemoteLockWait
            or pending.site != site
            or pending.key != message.key
        ):
            # Stale or duplicated copy (the transaction already moved on).
            return
        if self.db_sites[site].state is SiteState.CRASHED:
            # Crash fan-out is writing the waiters off; nothing to place.
            return
        request = self.db_sites[site].request_lock(
            message.transaction_id, message.key, message.mode, now=self.now
        )
        if request.granted is not None:
            self._send_lock_grant(site, request)
            return
        if self.policy.detect_cycles:
            self._break_deadlocks()

    def _send_lock_grant(self, site: int, request: LockRequest) -> None:
        """Send a grant back from the participant to the master."""
        state = self.states.get(request.owner)
        if state is None:
            return
        self.cluster.node(site).send(
            state.transaction.master,
            LockGrantMessage(request.owner, site, request.key),
        )

    def _on_remote_grant(self, message: LockGrantMessage) -> None:
        """A grant arrived back at the master: resume lock acquisition."""
        state = self.states.get(message.transaction_id)
        if state is None or state.phase is not TxnPhase.WAITING:
            return
        pending = state.pending_request
        if (
            type(pending) is not RemoteLockWait
            or pending.site != message.site
            or pending.key != message.key
        ):
            # Duplicate grant copy for an operation already completed.
            return
        state.pending_request = None
        state.pending_site = None
        # The measured wait includes the network round trip -- that is the
        # wait the transaction actually experienced.
        state.lock_wait += max(0.0, self.now - pending.enqueued_at)
        self._cancel_wait_timeout(state)
        if self._operation_done(state):
            self._advance(state)

    # ------------------------------------------------------------------
    # deadlock handling
    # ------------------------------------------------------------------
    def _locks_held(self, transaction_id: str) -> int:
        """Locks ``transaction_id`` currently holds across every site."""
        return sum(
            self.db_sites[site].locks.held_count(transaction_id)
            for site in sorted(self.db_sites)
        )

    def _break_deadlocks(self) -> None:
        """Abort one policy-chosen member of every waits-for cycle until none remain."""
        while True:
            graph = merge_waits_for(
                {site: db.locks.waits_for() for site, db in self.db_sites.items()}
            )
            cycle = find_cycle(graph)
            if cycle is None:
                return
            if any(
                self.states[txn].phase is not TxnPhase.WAITING for txn in cycle
            ):
                # Stale cycle: a victim mid-abort still has queued requests
                # at sites its participant loop has not reached yet.  Those
                # edges dissolve when the in-flight abort completes; the
                # caller's loop (or the next queued request) re-checks.
                return
            victim_policy = self.policy.victim
            victim = select_victim(
                cycle,
                victim_policy,
                index={txn: self.states[txn].index for txn in cycle},
                # Lock counts scan every grant list of every site; only the
                # one policy that ranks by them pays for that on the
                # detection hot path.
                locks_held=(
                    {txn: self._locks_held(txn) for txn in cycle}
                    if victim_policy is VictimPolicy.FEWEST_LOCKS
                    else {}
                ),
                attempts={txn: self.states[txn].attempt for txn in cycle},
            )
            self.cluster.trace.record(
                self.now,
                "deadlock",
                site=None,
                cycle=sorted(cycle),
                victim=victim,
            )
            self._abort_waiting(
                self.states[victim],
                cause=AbortCause.DEADLOCK,
                reason=f"deadlock victim (cycle of {len(cycle)})",
            )

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def _on_site_crashed(self, site: int) -> None:
        """Write off the execution-phase transactions that died with a site.

        Invoked through the site multiplexer's crash fan-out.  The site's
        volatile lock table is lost (:meth:`~repro.db.site.DatabaseSite
        .crash`), so every transaction still acquiring locks that touches
        the site -- whether it was queued there, already held locks there,
        or had yet to reach it -- can no longer commit under strict 2PL
        and is written off (and, under a retry policy, re-admitted later).
        Commit-phase transactions are left to their protocol roles.
        """
        self.crashes += 1
        db = self.db_sites[site]
        if db.state is not SiteState.CRASHED:
            db.crash()
        for transaction_id in list(self._order):
            state = self.states[transaction_id]
            if (
                state.phase is TxnPhase.WAITING
                and site in state.transaction.participants
            ):
                self._abort_waiting(
                    state,
                    cause=AbortCause.CRASH,
                    reason=f"site {site} crashed during lock acquisition",
                )

    def _on_site_recovered(self, site: int) -> None:
        """Replay the WAL of a recovered site before re-admitting traffic.

        Runs through the multiplexer's listener-before-roles recovery
        fan-out: by the time any protocol role or re-admitted lock request
        observes the site, replay has restored every durable decision
        (committed writes redone idempotently, aborted ones discarded) and
        the fresh lock table is accepting requests.
        """
        self.recoveries += 1
        db = self.db_sites[site]
        if db.state is not SiteState.CRASHED:
            return
        report = db.recover(now=self.now)
        self.wal_redone += len(report.redone)
        self.cluster.trace.record(
            self.now,
            "wal-replay",
            site=site,
            redone=len(report.redone),
            already_applied=len(report.already_applied),
            in_doubt=len(report.in_doubt),
        )

    def _arm_wait_timeout(self, state: TransactionState) -> None:
        if self.policy.wait_timeout is None:
            return
        self._cancel_wait_timeout(state)
        request = state.pending_request
        state.timeout_event = self.cluster.sim.schedule(
            self.policy.wait_timeout,
            lambda s=state, r=request: self._on_wait_timeout(s, r),
            label=f"lock-wait-timeout {state.transaction_id}",
        )

    def _cancel_wait_timeout(self, state: TransactionState) -> None:
        if state.timeout_event is not None:
            state.timeout_event.cancel()
            state.timeout_event = None

    def _on_wait_timeout(self, state: TransactionState, request: LockRequest) -> None:
        if state.phase is not TxnPhase.WAITING or state.pending_request is not request:
            return
        self.cluster.trace.record(
            self.now, "lock-wait-timeout", site=state.pending_site,
            transaction=state.transaction_id,
        )
        self._abort_waiting(
            state, cause=AbortCause.TIMEOUT, reason="lock-wait timeout"
        )

    def _abort_waiting(
        self, state: TransactionState, *, cause: AbortCause, reason: str
    ) -> None:
        """Abort a transaction still in its execution phase (victim path)."""
        if state.phase is not TxnPhase.WAITING:
            # Reentrant call (promotion cascades during this victim's own
            # cleanup can re-trigger detection paths): already handled.
            return
        if cause is AbortCause.DEADLOCK:
            self.deadlock_aborts += 1
        elif cause is AbortCause.TIMEOUT:
            self.timeout_aborts += 1
        elif cause is AbortCause.CRASH:
            self.crash_writeoffs += 1
        if state.pending_request is not None:
            state.lock_wait += max(0.0, self.now - state.pending_request.enqueued_at)
            state.pending_request = None
            state.pending_site = None
        self._cancel_wait_timeout(state)
        state.phase = TxnPhase.DONE
        state.verdict = TransactionVerdict.ABORTED
        state.abort_reason = reason
        state.abort_cause = cause.value
        state.finished_at = self.now
        self.waiting -= 1
        # The durable abort releases held locks and cancels queued requests
        # at every participant (WAL records stay tagged by transaction id).
        # A crashed site's volatile lock state is already gone; skip it.
        for site in state.transaction.participants:
            if self.db_sites[site].state is SiteState.CRASHED:
                continue
            self.db_sites[site].abort(state.transaction_id, now=self.now)
        self._maybe_retry(state)

    # ------------------------------------------------------------------
    # victim retries
    # ------------------------------------------------------------------
    def _maybe_retry(self, state: TransactionState) -> None:
        """Re-admit an aborted attempt after backoff, while budget remains."""
        if not self.retry.enabled or state.attempt >= self.retry.max_attempts:
            return
        delay = self.retry.delay(
            failed_attempt=state.attempt,
            transaction_id=state.logical_id,
            seed=self.seed,
        )
        state.retried = True
        next_attempt = state.attempt + 1
        clone = Transaction.create(
            state.transaction.master,
            state.transaction.operations,
            transaction_id=attempt_id(state.logical_id, next_attempt),
        )
        self.cluster.trace.record(
            self.now,
            "retry",
            site=state.transaction.master,
            transaction=state.logical_id,
            attempt=next_attempt,
            due=self.now + delay,
        )
        self.cluster.sim.schedule(
            delay,
            lambda txn=clone, lid=state.logical_id, att=next_attempt: self._admit(
                txn, logical_id=lid, attempt=att
            ),
            label=f"retry {clone.transaction_id}",
        )
        self.retry_backlog += 1
        self.peak_retry_backlog = max(self.peak_retry_backlog, self.retry_backlog)

    # ------------------------------------------------------------------
    # commit phase
    # ------------------------------------------------------------------
    def _start_protocol(self, state: TransactionState) -> None:
        state.phase = TxnPhase.RUNNING
        state.all_granted_at = self.now
        state.started_at = self.now
        self.waiting -= 1
        self.running += 1
        self.peak_in_flight = max(self.peak_in_flight, self.running)
        transaction = state.transaction
        participants = transaction.participants
        virtuals: list[VirtualNode] = []
        for site in participants:
            virtual = self.multiplexers[site].virtual_node(transaction.transaction_id)
            ctx = ProtocolContext(
                node=virtual,
                db=self.db_sites[site],
                transaction=transaction,
                participants=participants,
                master=transaction.master,
                timers=self.timers,
            )
            if site == transaction.master:
                role = self.protocol.coordinator(ctx)
            else:
                role = self.protocol.participant(ctx)
            role.decision_listeners.append(
                lambda _role, decision, s=site, st=state: self._on_site_decided(
                    st, s, decision
                )
            )
            state.roles[site] = role
            virtuals.append(virtual)
        for virtual in virtuals:
            virtual.start()

    def _on_site_decided(
        self, state: TransactionState, site: int, decision: Decision
    ) -> None:
        state.decisions[site] = decision
        if len(state.decisions) < len(state.transaction.participants):
            return
        decided = set(state.decisions.values())
        if decided == {Decision.COMMIT}:
            state.verdict = TransactionVerdict.COMMITTED
        elif decided == {Decision.ABORT}:
            state.verdict = TransactionVerdict.ABORTED
            state.abort_reason = state.abort_reason or "protocol abort"
            # Commit-phase aborts are the protocol writing the transaction
            # off.  Attribute by what is wrong at decision time: a crashed
            # participant is a crash write-off, otherwise the partition
            # (or its timeout aftermath) forced the abort.
            crashed_participant = any(
                self.cluster.node(site).crashed
                or self.db_sites[site].state is SiteState.CRASHED
                for site in state.transaction.participants
            )
            cause = AbortCause.CRASH if crashed_participant else AbortCause.PARTITION
            state.abort_cause = cause.value
        else:
            state.verdict = TransactionVerdict.VIOLATED
        state.phase = TxnPhase.DONE
        state.finished_at = self.now
        self.running -= 1
        if state.verdict is TransactionVerdict.ABORTED:
            self._maybe_retry(state)

    # ------------------------------------------------------------------
    # horizon accounting
    # ------------------------------------------------------------------
    def finalize(self, horizon: float) -> None:
        """Classify whatever is still in flight when the run horizon ends."""
        for transaction_id in self._order:
            state = self.states[transaction_id]
            if state.phase is TxnPhase.WAITING:
                state.verdict = TransactionVerdict.STALLED
                if state.pending_request is not None:
                    state.lock_wait += max(
                        0.0, horizon - state.pending_request.enqueued_at
                    )
            elif state.phase is TxnPhase.RUNNING:
                state.verdict = TransactionVerdict.BLOCKED

    def lock_hold_total(self, horizon: float) -> float:
        """Total lock-hold time across sites, charging still-held locks to
        the horizon (the unavailability a blocked protocol inflicts)."""
        total = 0.0
        for site in sorted(self.db_sites):
            stats = self.db_sites[site].locks.stats
            total += stats.total_hold_time
            for (_, _), since in stats.held_since.items():
                total += max(0.0, horizon - since)
        return total
