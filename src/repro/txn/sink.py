"""Streaming aggregation of concurrent-workload throughput sweeps.

:class:`ThroughputSink` lives with the throughput kind (not in
:mod:`repro.engine.sink`) so the engine's sink module needs no knowledge of
this package: the spec-kind registry hands the engine, the CLI and ``repro
merge`` this sink through the kind's ``make_sink`` factory.  It obeys the
same sink invariants as every :class:`~repro.engine.sink.SummarySink`
(task-order delivery, exactly-once, bounded state).
"""

from __future__ import annotations

from typing import Any

from repro.engine.sink import SummarySink
from repro.txn.summary import ThroughputSummary


class ThroughputSink(SummarySink):
    """Per-protocol aggregates of concurrent-workload throughput sweeps.

    Folds :class:`~repro.txn.summary.ThroughputSummary` records (other
    record types are ignored, so mixed streams are safe) into O(protocols)
    totals: offered / committed / aborted / blocked counts, goodput, abort
    rate and mean lock wait -- the columns of the ``repro throughput``
    table and the quantities the Section 1-2 availability argument turns
    on.
    """

    _FIELDS = (
        "scenarios",
        "offered",
        "committed",
        "committed_after_retry",
        "aborted",
        "blocked",
        "stalled",
        "violated",
        "retries",
        "deadlocks",
        "lock_timeouts",
        "crashes",
        "recoveries",
        "lock_wait",
        "goodput",
        "peak_in_flight",
    )

    def __init__(self) -> None:
        self.totals: dict[str, dict[str, float]] = {}

    def accept(self, index: int, summary) -> None:
        if not isinstance(summary, ThroughputSummary):
            return
        totals = self.totals.setdefault(
            summary.protocol, {name: 0 for name in self._FIELDS}
        )
        totals["scenarios"] += 1
        totals["offered"] += summary.offered
        totals["committed"] += summary.committed
        totals["committed_after_retry"] += summary.committed_after_retry
        totals["aborted"] += summary.aborted
        totals["blocked"] += summary.blocked
        totals["stalled"] += summary.stalled
        totals["violated"] += summary.violated
        totals["retries"] += summary.retries
        totals["deadlocks"] += summary.deadlock_aborts
        totals["lock_timeouts"] += summary.timeout_aborts
        totals["crashes"] += summary.crashes
        totals["recoveries"] += summary.recoveries
        totals["lock_wait"] += summary.lock_wait_total / (summary.max_delay or 1.0)
        totals["goodput"] += summary.goodput
        totals["peak_in_flight"] = max(
            totals["peak_in_flight"], summary.peak_in_flight
        )

    def goodput(self, protocol: str) -> float:
        """Mean goodput (committed per ``T``) across the protocol's scenarios."""
        totals = self.totals.get(protocol)
        if not totals or not totals["scenarios"]:
            return 0.0
        return totals["goodput"] / totals["scenarios"]

    def rows(self) -> list[dict[str, Any]]:
        """One table row per protocol, in first-seen (= task) order."""
        rows = []
        for protocol, totals in self.totals.items():
            offered = totals["offered"] or 1
            rows.append(
                {
                    "protocol": protocol,
                    "scenarios": int(totals["scenarios"]),
                    "offered": int(totals["offered"]),
                    "committed": int(totals["committed"]),
                    "after retry": int(totals["committed_after_retry"]),
                    "aborted": int(totals["aborted"]),
                    "blocked": int(totals["blocked"] + totals["stalled"]),
                    "violations": int(totals["violated"]),
                    "retries": int(totals["retries"]),
                    "deadlocks": int(totals["deadlocks"]),
                    "lock timeouts": int(totals["lock_timeouts"]),
                    "crashes": int(totals["crashes"]),
                    "goodput (/T)": f"{self.goodput(protocol):.3f}",
                    "abort rate": f"{totals['aborted'] / offered:.1%}",
                    "mean lock wait (xT)": f"{totals['lock_wait'] / offered:.2f}",
                    "peak in-flight": int(totals["peak_in_flight"]),
                }
            )
        return rows
