"""Victim retries: abort causes, attempt budgets and seeded backoff.

PR 3's scheduler wrote every deadlock / timeout / crash victim off
forever, which understates contention twice over: real open-loop clients
*resubmit* aborted work (retry storms amplify a blocking protocol's
goodput collapse), and a terminating protocol's partition write-offs come
back after the heal and drain the backlog (its availability advantage).
:class:`RetryPolicy` makes both measurable:

* every abort is tagged with an :class:`AbortCause` (deadlock victim,
  lock-wait timeout, crash write-off, or a commit-phase protocol abort --
  the partition write-off);
* an aborted transaction re-enters the scheduler as a fresh attempt
  (``<id>#r2``, ``#r3``, ...) after a seeded exponential backoff, until
  the bounded attempt budget (:attr:`RetryPolicy.max_attempts`) is
  exhausted;
* the per-outcome accounting (committed first try / committed after
  retry / exhausted, split by final abort cause) flows into
  :class:`~repro.txn.summary.ThroughputSummary`.

Backoff jitter is a pure function of ``(seed, transaction, attempt)`` --
string-seeded :class:`random.Random`, never ``hash()`` -- so retry
schedules are byte-identical across processes, worker counts and shards.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.obs.metrics import SIM_TIME_BUCKETS, get_active as _active_metrics


class AbortCause(enum.Enum):
    """Why a transaction attempt aborted (the retry/accounting split)."""

    DEADLOCK = "deadlock"      # waits-for cycle victim
    TIMEOUT = "timeout"        # lock-wait timeout victim
    CRASH = "crash"            # written off when a participant site crashed
    PARTITION = "partition"    # commit-phase protocol abort (partition write-off)


@dataclass(frozen=True)
class RetryPolicy:
    """How aborted transaction attempts are re-admitted.

    Attributes:
        max_attempts: total admissions per logical transaction (1 disables
            retries -- the PR 3 write-off behaviour).
        backoff: delay before the first retry, in simulated time units.
        backoff_factor: multiplier applied per further attempt
            (exponential backoff).
        jitter: fraction of the computed delay added as seeded noise in
            ``[0, jitter)``; 0 keeps backoff purely exponential.
    """

    max_attempts: int = 1
    backoff: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def enabled(self) -> bool:
        """True when aborted attempts may be re-admitted at all."""
        return self.max_attempts > 1

    def delay(self, *, failed_attempt: int, transaction_id: str, seed: int) -> float:
        """Backoff before re-admitting after ``failed_attempt`` (1-based).

        Deterministic: the jitter RNG is seeded from a string of
        ``(seed, transaction_id, failed_attempt)``, so the same spec
        always produces the same retry schedule regardless of process,
        worker count or event interleaving.
        """
        if failed_attempt < 1:
            raise ValueError(f"failed_attempt must be >= 1, got {failed_attempt}")
        base = self.backoff * self.backoff_factor ** (failed_attempt - 1)
        if self.jitter == 0.0:
            delay = base
        else:
            rng = random.Random(f"retry:{seed}:{transaction_id}:{failed_attempt}")
            delay = base * (1.0 + self.jitter * rng.random())
        metrics = _active_metrics()
        if metrics is not None:
            # The issued-backoff distribution (simulated time): with the
            # retry-backlog peak, this is how long aborted work sat out.
            metrics.histogram(
                "txn.retry_backoff_simtime", bounds=SIM_TIME_BUCKETS
            ).observe(delay)
        return delay


def attempt_id(logical_id: str, attempt: int) -> str:
    """The scheduler-side transaction id of one attempt.

    Attempt 1 keeps the logical id (workload ids stay recognizable in
    traces and WAL records); later attempts append ``#rN``, which never
    collides with workload ids (``workload-txn-N``) or the multiplexer's
    ``::`` timer separator.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return logical_id if attempt == 1 else f"{logical_id}#r{attempt}"
