"""Metrics collection and text reporting for experiment results."""

from repro.metrics.collectors import MetricSummary, ProtocolComparison, collect, compare_protocols
from repro.metrics.reporting import format_comparison_table, format_table, format_timing_table

__all__ = [
    "MetricSummary",
    "ProtocolComparison",
    "collect",
    "compare_protocols",
    "format_comparison_table",
    "format_table",
    "format_timing_table",
]
