"""Aggregation of run results into comparable per-protocol metrics.

Folds batches of runs into the side-by-side numbers the paper's
availability argument (Sections 1-2) turns on: violation and blocking
rates, commit/abort rates, message overhead and worst decision latency.
Accepts full :class:`~repro.protocols.runner.TransactionRunResult` objects
or the engine's :class:`~repro.engine.summary.RunSummary` records
interchangeably (both expose the same verdict API).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.atomicity import AtomicityReport, summarize_runs
from repro.analysis.blocking import BlockingReport, blocking_report
from repro.protocols.runner import TransactionRunResult


@dataclass
class MetricSummary:
    """All aggregate metrics for one protocol over one batch of runs."""

    protocol: str
    runs: int
    atomicity: AtomicityReport
    blocking: BlockingReport
    mean_messages: float
    mean_bounces: float
    commit_rate: float
    abort_rate: float

    @property
    def resilient(self) -> bool:
        """Atomicity preserved and nobody blocked across the batch."""
        return self.atomicity.resilient

    def row(self) -> dict[str, object]:
        """A flat dict row for table rendering."""
        worst = self.blocking.max_decision_latency
        return {
            "protocol": self.protocol,
            "runs": self.runs,
            "violations": self.atomicity.atomicity_violations,
            "blocked": self.atomicity.blocked_runs,
            "blocking rate": f"{self.blocking.blocking_rate:.1%}",
            "commit rate": f"{self.commit_rate:.1%}",
            "abort rate": f"{self.abort_rate:.1%}",
            "msgs/txn": f"{self.mean_messages:.1f}",
            "bounces/txn": f"{self.mean_bounces:.1f}",
            "worst latency": f"{worst:.1f}" if worst is not None else "-",
            "resilient": "yes" if self.resilient else "NO",
        }


def collect(
    results: Iterable[TransactionRunResult], *, protocol: Optional[str] = None
) -> MetricSummary:
    """Aggregate a batch of runs of a single protocol."""
    results = list(results)
    name = protocol or (results[0].protocol if results else "unknown")
    atomicity = summarize_runs(results, protocol=name)
    blocking = blocking_report(results, protocol=name)
    total = len(results) or 1
    return MetricSummary(
        protocol=name,
        runs=len(results),
        atomicity=atomicity,
        blocking=blocking,
        mean_messages=sum(r.messages_sent for r in results) / total,
        mean_bounces=sum(r.messages_bounced for r in results) / total,
        commit_rate=sum(1 for r in results if r.all_committed) / total,
        abort_rate=sum(1 for r in results if r.all_aborted) / total,
    )


@dataclass
class ProtocolComparison:
    """Side-by-side metric summaries for several protocols on the same scenarios."""

    summaries: list[MetricSummary] = field(default_factory=list)

    def add(self, summary: MetricSummary) -> None:
        """Append one protocol's summary."""
        self.summaries.append(summary)

    def rows(self) -> list[dict[str, object]]:
        """Table rows, one per protocol."""
        return [summary.row() for summary in self.summaries]

    def resilient_protocols(self) -> list[str]:
        """Protocols that preserved atomicity and never blocked."""
        return [s.protocol for s in self.summaries if s.resilient]


def compare_protocols(
    batches: dict[str, Iterable[TransactionRunResult]]
) -> ProtocolComparison:
    """Aggregate several protocols' batches into one comparison."""
    comparison = ProtocolComparison()
    for protocol, results in batches.items():
        comparison.add(collect(results, protocol=protocol))
    return comparison
