"""Plain-text table rendering for benches, examples and the CLI.

Every experiment report, sweep table and boundary listing goes through
:func:`format_table`; keeping the renderer free of third-party dependencies
is deliberate (the golden-table tests pin its exact output).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.analysis.timing import TimingMeasurement


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return title or "(no rows)"
    keys = list(columns) if columns is not None else list(rows[0].keys())
    widths = {key: len(str(key)) for key in keys}
    for row in rows:
        for key in keys:
            widths[key] = max(widths[key], len(str(row.get(key, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(f"{key:<{widths[key]}}" for key in keys)
    lines.append(header)
    lines.append("-+-".join("-" * widths[key] for key in keys))
    for row in rows:
        lines.append(" | ".join(f"{str(row.get(key, '')):<{widths[key]}}" for key in keys))
    return "\n".join(lines)


def format_comparison_table(comparison, *, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.metrics.collectors.ProtocolComparison`."""
    return format_table(comparison.rows(), title=title)


def format_timing_table(
    measurements: Iterable[TimingMeasurement], *, title: Optional[str] = None
) -> str:
    """Render timing measurements against their paper bounds."""
    rows = []
    for measurement in measurements:
        rows.append(
            {
                "quantity": measurement.name,
                "measured (xT)": f"{measurement.measured_in_t:.2f}",
                "paper bound (xT)": (
                    "inf" if measurement.bound_in_t == float("inf") else f"{measurement.bound_in_t:.1f}"
                ),
                "within bound": "yes" if measurement.within_bound else "NO",
            }
        )
    return format_table(rows, title=title)
