"""Command-line entry point: regenerate experiments, or run custom sweeps.

Usage::

    python -m repro list
    python -m repro run FIG8
    python -m repro run SEC6 FIG5 AVAIL
    python -m repro all
    python -m repro sweep --workers 4 --sites 4 --protocol all
    python -m repro sweep --protocol terminating-three-phase-commit \\
        --times 0.5 1.5 2.5 --heal-after 2.0 --cache .sweep-cache
    python -m repro sweep --protocol all --stream --jsonl sweep.jsonl
    python -m repro sweep --protocol terminating-three-phase-commit --refine \\
        --resolution 0.01 --cache .sweep-cache
    python -m repro boundaries --protocol terminating-three-phase-commit \\
        --sites 3 --lo 0.25 --hi 8.0 --resolution 0.01
    python -m repro throughput --protocols all --transactions 200
    python -m repro throughput --protocols two-phase-commit \\
        --tx-rate 2.0 --read-fraction 0.5 --ops-per-site 2 --deadlock both
    python -m repro throughput --arrival poisson --retries 3 --hotspot 0.2 \\
        --faults crash=3:20:28 --deadlock both --lock-timeout 4
    python -m repro throughput --faults loss=0.3,retransmit=on \\
        --lock-transport network
    python -m repro sweep --protocol all --faults byzantine=3:equivocate
    python -m repro modelcheck --protocol all --sites 3
    python -m repro modelcheck --protocol two-phase-commit \\
        --faults single-crash --no-voters 3 --jsonl modelcheck.jsonl
    python -m repro modelcheck --protocol all --faults loss=0.5 \\
        --faults loss=0.5,retransmit=on
    python -m repro shard --shard-index 0 --shard-count 3 \\
        --out shard-0.jsonl --protocol all --cache .sweep-cache
    python -m repro merge shard-0.jsonl shard-1.jsonl shard-2.jsonl \\
        --jsonl merged.jsonl --stats-json merge-stats.json
    python -m repro shard --shard-index 0 --shard-count 3 \\
        --log results/ --protocol all --segment-records 64
    python -m repro shard --shard-index 0 --shard-count 3 \\
        --log results/ --manifest grids.json
    python -m repro merge --log results/ --resume --jsonl merged.jsonl

``sweep --stream`` executes through the constant-memory streaming path
(summaries are folded into aggregation sinks in task order, never
materialized); ``sweep --refine`` and the ``boundaries`` subcommand locate
the onset times where the verdict class flips by adaptive bisection instead
of a uniform grid; ``throughput`` offers a contended multi-transaction
workload per protocol and compares goodput / abort rate / lock-wait under
a mid-run partition.  ``modelcheck`` replaces sampled schedules with
bounded-exhaustive exploration: every reachable global state of a protocol
under a fault envelope is enumerated and the paper's invariants checked,
printing minimal counterexample traces for the ones that fail.  ``shard``
runs one deterministic slice of a sweep, throughput or modelcheck
grid (or of a mixed-kind ``--manifest`` task list) to a self-describing
JSONL spill -- or, with ``--log DIR``, appends it to a durable result log
as atomically sealed segments, so an interrupted shard re-run resumes
from its last sealed segment.  ``merge`` folds any set of shard spills
(or, with ``--log DIR``, a whole result log, checkpointing its progress
so ``--resume`` continues an interrupted merge exactly-once) back into
aggregates byte-identical to a single-machine run -- the distribution
surface the matrix-sharded CI pipeline drives.  Every mode reports cache hit/miss counts and
scenarios/sec at completion; ``--stats-json PATH`` additionally writes the
statistics as canonical JSON for machine consumers (CI assertions,
benchmark trackers).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro import experiments as ex

EXPERIMENTS: dict[str, Callable[[], "ex.ExperimentReport"]] = {
    "FIG1": ex.run_fig1_two_phase,
    "FIG2": ex.run_fig2_extended_two_phase,
    "FIG3": ex.run_fig3_three_phase,
    "FIG5": ex.run_fig5_timeouts,
    "FIG6": ex.run_fig6_probe_window,
    "FIG7": ex.run_fig7_wait_in_w,
    "FIG8": ex.run_fig8_termination,
    "FIG9": ex.run_fig9_wait_in_p,
    "SEC3": ex.run_sec3_counterexamples,
    "LEMMA12": ex.run_lemma_checks,
    "LEMMA3": ex.run_lemma3_sweep,
    "SEC6": ex.run_sec6_cases,
    "SEC7": ex.run_sec7_assumptions,
    "THM10": ex.run_thm10_generalization,
    "AVAIL": ex.run_availability_comparison,
    "MSG": ex.run_message_overhead,
    "MULTI": ex.run_multiple_partitioning,
    "TPUT": ex.run_throughput_comparison,
    "RETRY": ex.run_retry_recovery_comparison,
    "MODELCHECK": ex.run_modelcheck_verification,
    "DIFF": ex.run_differential_validation,
    "FAULTS": ex.run_fault_survival,
}


def _parse_crash_schedule(values: list[str]):
    """Each occurrence is ``SITE:AT[:RECOVER_AT]``; empty list = no crashes.

    Returns a :class:`~repro.sim.failures.CrashSchedule` or ``None``;
    raises :class:`ValueError` (with the offending token) on bad input.
    """
    from repro.sim.failures import CrashEvent, CrashSchedule

    if not values:
        return None
    schedule = CrashSchedule()
    for value in values:
        parts = value.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"expected SITE:AT[:RECOVER_AT], got {value!r}")
        site, at = int(parts[0]), float(parts[1])
        recover_at = float(parts[2]) if len(parts) == 3 else None
        schedule.add(CrashEvent(time=at, site=site, recover_at=recover_at))
    return schedule


def _parse_fault_clauses(values: list[str]):
    """The unified ``--faults`` grammar: ``KIND=ARGS`` clauses, comma-joined.

    Every fault-taking subcommand (``sweep``, ``throughput``, ``modelcheck``,
    ``shard``) shares this parser, so one spelling describes the same faults
    everywhere.  Clauses (repeatable, within one occurrence or across
    several)::

        crash=SITE:AT[:RECOVER_AT]       crash SITE at AT (recover later)
        loss=P[:SRC-DST]                 drop matching messages w.p. P
        dup=P[:SRC-DST]                  deliver matching messages twice w.p. P
        reorder=P[:WINDOW]               delay w.p. P by uniform(0, WINDOW*T)
        send-omission=SITE[:P]           SITE's sends vanish w.p. P (default 1)
        recv-omission=SITE[:P]           SITE's receives vanish w.p. P
        byzantine=SITE[:MODE]            MODE: equivocate (default) | arbitrary
        retransmit=on|off|MAX[:INTERVAL] at-least-once retransmission layer
        seed=N                           fault-injection RNG seed

    ``SRC-DST`` names one directed link; ``*`` (or ``0``) wildcards a side.
    Returns a :class:`~repro.sim.failures.FaultPlan`, or ``None`` for no
    values / a plan that normalizes to the identity; raises
    :class:`ValueError` naming the offending clause.
    """
    from repro.sim.failures import (
        BYZANTINE_MODES,
        ByzantineSpec,
        CrashEvent,
        EQUIVOCATE,
        FaultPlan,
        LinkFault,
        OmissionFault,
        RECEIVE_OMISSION,
        RetransmitPolicy,
        SEND_OMISSION,
        normalize_fault_plan,
    )

    if not values:
        return None

    def _site(token: str) -> int:
        return 0 if token == "*" else int(token)

    def _link_sides(token: str) -> tuple[int, int]:
        src, sep, dst = token.partition("-")
        if not sep:
            raise ValueError(f"expected SRC-DST (use '*' to wildcard), got {token!r}")
        return _site(src), _site(dst)

    crashes: list = []
    links: list = []
    omissions: list = []
    byzantine: list = []
    retransmit = None
    seed = 0
    for value in values:
        for clause in value.split(","):
            clause = clause.strip()
            if not clause:
                continue
            kind, sep, rest = clause.partition("=")
            if not sep or not rest:
                raise ValueError(f"expected KIND=ARGS, got {clause!r}")
            parts = rest.split(":")
            try:
                if kind == "crash":
                    if len(parts) not in (2, 3):
                        raise ValueError("expected SITE:AT[:RECOVER_AT]")
                    crashes.append(
                        CrashEvent(
                            time=float(parts[1]),
                            site=int(parts[0]),
                            recover_at=float(parts[2]) if len(parts) == 3 else None,
                        )
                    )
                elif kind in ("loss", "dup"):
                    if len(parts) not in (1, 2):
                        raise ValueError("expected P[:SRC-DST]")
                    src, dst = _link_sides(parts[1]) if len(parts) == 2 else (0, 0)
                    probability = float(parts[0])
                    if kind == "loss":
                        links.append(LinkFault(src=src, dst=dst, loss=probability))
                    else:
                        links.append(LinkFault(src=src, dst=dst, duplicate=probability))
                elif kind == "reorder":
                    if len(parts) not in (1, 2):
                        raise ValueError("expected P[:WINDOW]")
                    links.append(
                        LinkFault(
                            reorder=float(parts[0]),
                            reorder_window=float(parts[1]) if len(parts) == 2 else 1.0,
                        )
                    )
                elif kind in ("send-omission", "recv-omission"):
                    if len(parts) not in (1, 2):
                        raise ValueError("expected SITE[:P]")
                    omissions.append(
                        OmissionFault(
                            site=int(parts[0]),
                            kind=SEND_OMISSION if kind == "send-omission" else RECEIVE_OMISSION,
                            probability=float(parts[1]) if len(parts) == 2 else 1.0,
                        )
                    )
                elif kind == "byzantine":
                    if len(parts) not in (1, 2):
                        raise ValueError("expected SITE[:MODE]")
                    mode = parts[1] if len(parts) == 2 else EQUIVOCATE
                    if mode not in BYZANTINE_MODES:
                        raise ValueError(
                            f"mode must be one of {'/'.join(BYZANTINE_MODES)}, got {mode!r}"
                        )
                    byzantine.append(ByzantineSpec(site=int(parts[0]), mode=mode))
                elif kind == "retransmit":
                    if parts[0] == "off":
                        retransmit = None
                    elif parts[0] == "on":
                        retransmit = RetransmitPolicy()
                    else:
                        if len(parts) not in (1, 2):
                            raise ValueError("expected on|off|MAX_ATTEMPTS[:INTERVAL]")
                        retransmit = RetransmitPolicy(
                            max_attempts=int(parts[0]),
                            interval=float(parts[1]) if len(parts) == 2 else 0.8,
                        )
                elif kind == "seed":
                    seed = int(rest)
                else:
                    raise ValueError(
                        "unknown fault kind (expected crash, loss, dup, reorder, "
                        "send-omission, recv-omission, byzantine, retransmit or seed)"
                    )
            except ValueError as exc:
                raise ValueError(f"clause {clause!r}: {exc}") from None
    return normalize_fault_plan(
        FaultPlan(
            crashes=tuple(crashes),
            links=tuple(links),
            omissions=tuple(omissions),
            byzantine=tuple(byzantine),
            retransmit=retransmit,
            seed=seed,
        )
    )


#: Sentinel distinguishing "--faults parse failed" from "no faults given"
#: (both would otherwise be None) in _resolve_fault_plan.
_FAULTS_ERROR = object()


def _resolve_fault_plan(args: argparse.Namespace):
    """The validated ``--faults`` plan (``None`` = fault-free), or the
    :data:`_FAULTS_ERROR` sentinel after printing the error."""
    try:
        plan = _parse_fault_clauses(args.faults or [])
        if plan is not None:
            plan.validate(args.sites)
    except ValueError as exc:
        print(f"--faults: {exc}", file=sys.stderr)
        return _FAULTS_ERROR
    return plan


def _parse_no_voters(values: list[str]) -> tuple[frozenset[int], ...]:
    """Each occurrence is a comma-separated site list; 'none' = all vote yes."""
    options: list[frozenset[int]] = []
    for value in values:
        if value.strip().lower() in ("", "none"):
            options.append(frozenset())
        else:
            options.append(frozenset(int(site) for site in value.split(",")))
    return tuple(options) if options else (frozenset(),)


def _add_obs_options(
    parser: argparse.ArgumentParser, *, progress: bool = False
) -> None:
    """The observability flags (run metrics, phase traces, live progress)."""
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="record run metrics (counters/gauges/histograms) to PATH as "
        "canonical JSON; render with 'repro report'",
    )
    parser.add_argument(
        "--trace-ndjson",
        default=None,
        metavar="PATH",
        help="record phase spans to PATH as NDJSON (one span per line)",
    )
    if progress:
        parser.add_argument(
            "--progress",
            action="store_true",
            help="live stderr progress line (done/total, scenarios/s, "
            "cache-hit rate, ETA)",
        )


def _add_engine_options(
    parser: argparse.ArgumentParser,
    *,
    chunk_size: bool = False,
    progress: bool = False,
) -> None:
    """The engine-facing options every grid-executing subcommand shares."""
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1, in-process)"
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory (re-runs become incremental)",
    )
    if chunk_size:
        parser.add_argument(
            "--chunk-size",
            type=int,
            default=None,
            metavar="N",
            help="scenarios per worker submission (default: auto)",
        )
    parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write run statistics to PATH as canonical JSON",
    )
    _add_obs_options(parser, progress=progress)


def _add_partition_axes(parser: argparse.ArgumentParser) -> None:
    """The partition-sweep grid axes (shared by ``sweep`` and ``shard``)."""
    parser.add_argument(
        "--protocol",
        action="append",
        default=None,
        metavar="NAME",
        help="protocol registry name (repeatable); 'all' sweeps every protocol",
    )
    parser.add_argument(
        "--times",
        type=float,
        nargs="+",
        default=None,
        metavar="T",
        help="partition onset times (default: the standard 0.25T grid)",
    )
    parser.add_argument(
        "--heal-after",
        type=float,
        default=None,
        metavar="DT",
        help="heal every partition DT after onset (transient partitioning)",
    )
    parser.add_argument(
        "--no-voters",
        action="append",
        default=None,
        metavar="SITES",
        help="comma-separated no-voting sites; repeatable, 'none' = all yes",
    )


# The throughput grid's heal default, shared by the `throughput` parser and
# `shard --kind throughput` (whose parser leaves --heal-after unset because
# the sweep axes own the flag) so both always build the same grid.
_TPUT_HEAL_DEFAULT = 8.0

# Defaults of the throughput-only axes, keyed by argparse dest.  Single
# source shared by the parser declarations and `shard --kind sweep`'s
# cross-kind flag rejection, so changing a default can never desync the
# "flag belongs to the other grid" detection.
_TPUT_ONLY_DEFAULTS: dict = {
    "protocols": None,
    "arrival": "uniform",
    "hotspot": 0.0,
    "retries": 0,
    "retry_backoff": 0.5,
    "victim": "youngest",
    "crash_schedule": None,
    "lock_transport": "direct",
}


# Defaults of the modelcheck-only axes, keyed by argparse dest.  Same
# single-source contract as _TPUT_ONLY_DEFAULTS: the parser declarations
# and the shard cross-kind flag rejection both read from here.  (--faults
# is NOT modelcheck-only any more: the unified fault grammar applies to
# every grid kind, so _add_fault_options owns it.)
_MC_ONLY_DEFAULTS: dict = {
    "max_states": 200_000,
    "max_depth": None,
}


def _add_fault_options(
    parser: argparse.ArgumentParser, *, envelopes: bool = False
) -> None:
    """The unified ``--faults`` flag (one grammar across every subcommand)."""
    help_text = (
        "fault clauses KIND=ARGS, comma-separated and repeatable: "
        "crash=SITE:AT[:RECOVER_AT], loss=P[:SRC-DST], dup=P[:SRC-DST], "
        "reorder=P[:WINDOW], send-omission=SITE[:P], recv-omission=SITE[:P], "
        "byzantine=SITE[:equivocate|arbitrary], "
        "retransmit=on|off|MAX[:INTERVAL], seed=N"
    )
    if envelopes:
        help_text += (
            "; modelcheck additionally accepts exhaustive envelope names "
            "(failure-free, single-crash, partition, lossy, "
            "lossy-retransmit, all) and maps clause plans onto them"
        )
    parser.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="KIND=ARGS[,...]",
        help=help_text,
    )


def _add_modelcheck_axes(parser: argparse.ArgumentParser) -> None:
    """The model-checking grid axes (shared by ``modelcheck`` and ``shard``)."""
    parser.add_argument(
        "--max-states",
        type=int,
        default=_MC_ONLY_DEFAULTS["max_states"],
        metavar="N",
        help="abort exploration beyond N global states (default 200000)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=_MC_ONLY_DEFAULTS["max_depth"],
        metavar="D",
        help="truncate exploration at depth D (default: unbounded)",
    )


def _add_throughput_axes(
    parser: argparse.ArgumentParser, *, include_heal: bool = True
) -> None:
    """The throughput grid axes (shared by ``throughput`` and ``shard``)."""
    parser.add_argument(
        "--protocols",
        action="append",
        default=_TPUT_ONLY_DEFAULTS["protocols"],
        metavar="NAME",
        help="protocol registry name (repeatable); 'all' runs every protocol",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=200,
        metavar="N",
        help="transactions offered per scenario (default 200)",
    )
    parser.add_argument(
        "--tx-rate",
        type=float,
        default=1.0,
        metavar="R",
        help="offered load in transactions per T (default 1.0)",
    )
    parser.add_argument(
        "--read-fraction",
        type=float,
        default=0.2,
        metavar="F",
        help="fraction of operations that are reads, in [0, 1] (default 0.2)",
    )
    parser.add_argument(
        "--ops-per-site",
        type=int,
        default=1,
        metavar="K",
        help="data operations per participating site (default 1)",
    )
    parser.add_argument(
        "--keys",
        type=int,
        default=8,
        metavar="K",
        help="keyspace size; fewer keys = more contention (default 8)",
    )
    parser.add_argument(
        "--op-delay",
        type=float,
        default=0.05,
        metavar="DT",
        help="execution time per data operation, in T (default 0.05)",
    )
    parser.add_argument(
        "--partition-at",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="partition onset as a fraction of the admission span (default 0.5)",
    )
    if include_heal:
        parser.add_argument(
            "--heal-after",
            type=float,
            default=_TPUT_HEAL_DEFAULT,
            metavar="DT",
            help=f"heal the partition DT after onset (default {_TPUT_HEAL_DEFAULT})",
        )
    parser.add_argument(
        "--permanent",
        action="store_true",
        help="never heal the partition",
    )
    parser.add_argument(
        "--no-partition",
        action="store_true",
        help="failure-free run (contention only)",
    )
    parser.add_argument(
        "--deadlock",
        choices=("cycles", "timeout", "both", "none"),
        default="cycles",
        help="deadlock handling: waits-for detection, lock-wait timeouts, both or none",
    )
    parser.add_argument(
        "--lock-timeout",
        type=float,
        default=10.0,
        metavar="DT",
        help="lock-wait timeout in T, for --deadlock timeout/both (default 10.0)",
    )
    parser.add_argument(
        "--victim",
        choices=("youngest", "oldest", "fewest-locks", "most-retries-wins"),
        default=_TPUT_ONLY_DEFAULTS["victim"],
        help="which waits-for cycle member the detector aborts (default youngest)",
    )
    parser.add_argument(
        "--arrival",
        choices=("uniform", "poisson"),
        default=_TPUT_ONLY_DEFAULTS["arrival"],
        help="arrival process: evenly spaced or open-loop seeded Poisson",
    )
    parser.add_argument(
        "--hotspot",
        type=float,
        default=_TPUT_ONLY_DEFAULTS["hotspot"],
        metavar="S",
        help="zipf-like key-skew exponent; 0 = uniform keys (default 0)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=_TPUT_ONLY_DEFAULTS["retries"],
        metavar="N",
        help="retry budget: re-admit aborted victims up to N times (default 0)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=_TPUT_ONLY_DEFAULTS["retry_backoff"],
        metavar="DT",
        help="first-retry backoff in T, doubling per attempt (default 0.5)",
    )
    parser.add_argument(
        "--crash-schedule",
        action="append",
        default=_TPUT_ONLY_DEFAULTS["crash_schedule"],
        metavar="SITE:AT[:RECOVER_AT]",
        help=(
            "deprecated alias of --faults crash=SITE:AT[:RECOVER_AT]: crash "
            "SITE at time AT, recovering at RECOVER_AT (omit for a "
            "permanent crash); repeatable"
        ),
    )
    parser.add_argument(
        "--lock-transport",
        choices=("direct", "network"),
        default=_TPUT_ONLY_DEFAULTS["lock_transport"],
        help=(
            "how execution-phase lock requests travel: placed directly at "
            "the sites (historical default) or as network messages that "
            "partitions and message faults can cut; auto-upgraded to "
            "'network' when --faults carries message faults"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0],
        metavar="S",
        help="workload / simulator seeds, one scenario per seed (default: 0)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from Huang & Li (ICDE 1987).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument("ids", nargs="+", metavar="ID", help="experiment ids (see 'list')")
    _add_obs_options(run)
    all_parser = sub.add_parser("all", help="run every experiment")
    _add_obs_options(all_parser)

    sweep = sub.add_parser(
        "sweep",
        help="run a partition sweep on the parallel engine",
        description=(
            "Sweep partition onset times x simple splits x vote patterns for "
            "one or more protocols, executing scenarios across worker "
            "processes and summarizing atomicity / blocking per protocol."
        ),
    )
    sweep.add_argument("--sites", type=int, default=3, help="number of sites (default 3)")
    _add_partition_axes(sweep)
    _add_fault_options(sweep)
    _add_engine_options(sweep, chunk_size=True, progress=True)
    sweep.add_argument(
        "--stream",
        action="store_true",
        help="constant-memory streaming execution (aggregate via sinks)",
    )
    sweep.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="with --stream: spill every summary to PATH as JSON lines",
    )
    sweep.add_argument(
        "--refine",
        action="store_true",
        help=(
            "adaptively refine verdict boundaries instead of a uniform sweep "
            "(--times then only bounds the interval: [min, max])"
        ),
    )
    sweep.add_argument(
        "--resolution",
        type=float,
        default=0.01,
        metavar="DT",
        help="with --refine: boundary bracketing floor (default 0.01 T)",
    )

    throughput = sub.add_parser(
        "throughput",
        help="run a contended multi-transaction workload per protocol",
        description=(
            "Offer a stream of update transactions to one cluster per "
            "protocol, strike a partition mid-run, and compare goodput, "
            "abort rate and lock-wait: blocking protocols keep the "
            "partition's locks and collapse, the terminating protocols "
            "release them and recover."
        ),
    )
    throughput.add_argument(
        "--sites", type=int, default=3, help="number of sites (default 3)"
    )
    _add_throughput_axes(throughput)
    _add_fault_options(throughput)
    _add_engine_options(throughput, progress=True)
    throughput.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="spill every scenario summary to PATH as JSON lines",
    )

    modelcheck = sub.add_parser(
        "modelcheck",
        help="exhaustively model-check protocols against the paper's invariants",
        description=(
            "Enumerate every reachable global state of each protocol under "
            "a fault envelope (failure-free, a single crash, or a simple "
            "partition at any point) and check the paper's invariants -- "
            "same-decision, no-commit-after-abort, commit-requires-votes "
            "and non-blocking -- over all interleavings, printing a "
            "minimal counterexample trace for every violated invariant."
        ),
    )
    modelcheck.add_argument(
        "--sites", type=int, default=3, help="number of sites (default 3)"
    )
    modelcheck.add_argument(
        "--protocol",
        action="append",
        default=None,
        metavar="NAME",
        help="protocol to check (repeatable); 'all' checks every checkable one",
    )
    modelcheck.add_argument(
        "--no-voters",
        action="append",
        default=None,
        metavar="SITES",
        help="comma-separated no-voting slave sites; repeatable, 'none' = all yes",
    )
    _add_modelcheck_axes(modelcheck)
    _add_fault_options(modelcheck, envelopes=True)
    _add_engine_options(modelcheck, chunk_size=True, progress=True)
    modelcheck.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="spill every checker summary to PATH as JSON lines",
    )
    modelcheck.add_argument(
        "--no-traces",
        action="store_true",
        help="suppress counterexample traces (table and stats only)",
    )

    shard = sub.add_parser(
        "shard",
        help="run one deterministic shard of a grid to a JSONL spill",
        description=(
            "Partition a sweep or throughput grid into --shard-count "
            "content-addressed slices (stable under task reordering, "
            "cache-compatible with single-machine runs), execute slice "
            "--shard-index on this machine, and spill its summaries to a "
            "self-describing JSONL file that 'repro merge' folds back into "
            "single-machine-identical aggregates."
        ),
    )
    shard.add_argument(
        "--shard-index",
        type=int,
        required=True,
        metavar="I",
        help="which slice to run, in [0, --shard-count)",
    )
    shard.add_argument(
        "--shard-count",
        type=int,
        required=True,
        metavar="N",
        help="total number of slices the grid is partitioned into",
    )
    shard.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="shard spill destination (self-describing JSON lines); "
        "exactly one of --out / --log",
    )
    shard.add_argument(
        "--log",
        default=None,
        metavar="DIR",
        help="append the shard to a durable result-log directory as sealed "
        "segments instead of a one-shot spill; an interrupted shard re-run "
        "against the same DIR resumes from its last sealed segment",
    )
    shard.add_argument(
        "--segment-records",
        type=int,
        default=None,
        metavar="N",
        help="records per sealed --log segment (default 64; the shard's "
        "durability granularity)",
    )
    shard.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="build a heterogeneous task list from a JSON manifest "
        "({\"grids\": [{\"kind\": ..., \"args\": [...]}, ...]}) instead of "
        "the command-line grid axes; grids concatenate in manifest order",
    )
    shard.add_argument(
        "--kind",
        choices=("sweep", "throughput", "modelcheck"),
        default="sweep",
        help="which grid to shard: partition sweep, throughput or modelcheck "
        "(ignored with --manifest, where each entry names its kind)",
    )
    shard.add_argument("--sites", type=int, default=3, help="number of sites (default 3)")
    _add_partition_axes(shard)
    _add_throughput_axes(shard, include_heal=False)
    _add_modelcheck_axes(shard)
    _add_fault_options(shard, envelopes=True)
    _add_engine_options(shard, chunk_size=True)

    merge = sub.add_parser(
        "merge",
        help="fold shard spills into single-machine-identical aggregates",
        description=(
            "Read a set of 'repro shard' spill files, restore global task "
            "order, and fold every summary through the registered spec "
            "kinds' aggregation sinks.  The resulting tables (and the "
            "optional --jsonl spill) are byte-identical to a single-machine "
            "streaming run of the whole grid."
        ),
    )
    merge.add_argument(
        "spills", nargs="*", metavar="SPILL", help="shard spill files to merge"
    )
    merge.add_argument(
        "--log",
        default=None,
        metavar="DIR",
        help="merge a 'repro shard --log' result-log directory instead of "
        "spill files (exactly one of SPILL... / --log)",
    )
    merge.add_argument(
        "--resume",
        action="store_true",
        help="with --log: resume an interrupted merge from its checkpoint "
        "(committed prefix is replayed, merged JSONL bytes are kept)",
    )
    merge.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="with --log: merge-checkpoint location "
        "(default: DIR/merge-checkpoint.json)",
    )
    merge.add_argument(
        "--batch-records",
        type=int,
        default=None,
        metavar="N",
        help="with --log: records folded between checkpoint commits "
        "(default 256)",
    )
    merge.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="write the merged summaries to PATH (byte-identical to a "
        "single-machine 'sweep --stream --jsonl' spill)",
    )
    merge.add_argument(
        "--allow-partial",
        action="store_true",
        help="merge even when some shards are missing (partial aggregates)",
    )
    merge.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write merge statistics to PATH as canonical JSON",
    )
    _add_obs_options(merge)

    report = sub.add_parser(
        "report",
        help="render a --metrics-json file as phase/worker breakdown tables",
        description=(
            "Read the canonical-JSON metrics document a run wrote with "
            "--metrics-json and render its run header, phase breakdown "
            "(every *_seconds histogram with its share of wall clock), "
            "per-worker utilization with the dispatch-overhead share, and "
            "the remaining counters and gauges."
        ),
    )
    report.add_argument(
        "metrics", metavar="METRICS_JSON", help="metrics document to render"
    )

    boundaries = sub.add_parser(
        "boundaries",
        help="locate verdict boundaries along the partition-onset axis",
        description=(
            "Run a coarse onset grid per (protocol x simple split x vote "
            "pattern), then recursively bisect only the intervals where the "
            "verdict class flips, bracketing each boundary to --resolution "
            "with a fraction of the scenarios of a uniform grid."
        ),
    )
    boundaries.add_argument(
        "--protocol",
        action="append",
        default=None,
        metavar="NAME",
        help="protocol registry name (repeatable); 'all' refines every protocol",
    )
    boundaries.add_argument("--sites", type=int, default=3, help="number of sites (default 3)")
    boundaries.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1, in-process)"
    )
    boundaries.add_argument(
        "--lo", type=float, default=0.25, metavar="T", help="interval start (default 0.25)"
    )
    boundaries.add_argument(
        "--hi", type=float, default=8.0, metavar="T", help="interval end (default 8.0)"
    )
    boundaries.add_argument(
        "--coarse-step",
        type=float,
        default=0.25,
        metavar="DT",
        help="coarse scan spacing (default 0.25, the classic grid)",
    )
    boundaries.add_argument(
        "--resolution",
        type=float,
        default=0.01,
        metavar="DT",
        help="boundary bracketing floor (default 0.01 T)",
    )
    boundaries.add_argument(
        "--heal-after",
        type=float,
        default=None,
        metavar="DT",
        help="heal every partition DT after onset (transient partitioning)",
    )
    boundaries.add_argument(
        "--no-voters",
        action="append",
        default=None,
        metavar="SITES",
        help="comma-separated no-voting sites; repeatable, 'none' = all yes",
    )
    boundaries.add_argument(
        "--decision-bounds",
        action="store_true",
        help="also split classes by the whole-T decision bound (2T/3T/5T/6T flips)",
    )
    boundaries.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory (refinement rounds become incremental)",
    )
    _add_obs_options(boundaries)
    return parser


def _resolve_protocol_names(
    names: Optional[list[str]], *, default: list[str]
) -> Optional[list[str]]:
    """Validated protocol list ('all' expands), or ``None`` after the error."""
    from repro.protocols.registry import available_protocols

    protocols = names or default
    if any(p == "all" for p in protocols):
        protocols = available_protocols()
    unknown = [p for p in protocols if p not in available_protocols()]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available_protocols())}", file=sys.stderr)
        return None
    return list(protocols)


def _resolve_protocols(args: argparse.Namespace) -> Optional[list[str]]:
    """Validated protocol list, or ``None`` after printing the error."""
    return _resolve_protocol_names(
        args.protocol, default=["terminating-three-phase-commit"]
    )


def _resolve_no_voters(args: argparse.Namespace) -> Optional[tuple[frozenset[int], ...]]:
    """Validated vote-pattern options, or ``None`` after printing the error."""
    try:
        no_voter_options = _parse_no_voters(args.no_voters or [])
    except ValueError:
        print(
            f"--no-voters expects comma-separated site numbers (or 'none'), "
            f"got {args.no_voters}",
            file=sys.stderr,
        )
        return None
    out_of_range = sorted(
        site
        for option in no_voter_options
        for site in option
        if not 1 <= site <= args.sites
    )
    if out_of_range:
        print(
            f"--no-voters names site(s) {out_of_range} outside 1..{args.sites}",
            file=sys.stderr,
        )
        return None
    return no_voter_options


def _cache_text(cache, hits: int, total: int) -> str:
    """The cache-effectiveness fragment shared by every completion line."""
    if cache is None:
        return "cache disabled"
    return f"cache: {hits} hit(s) / {total - hits} miss(es)"


def _print_stats(stats, workers: int, cache) -> None:
    """The completion line: throughput plus cache effectiveness."""
    print(
        f"{stats.total} scenarios in {stats.elapsed:.2f}s "
        f"({workers} worker(s), {stats.throughput:.0f} scenarios/s, "
        f"{stats.executed} executed, "
        f"{_cache_text(cache, stats.cache_hits, stats.total)})"
    )


def _write_stats_json(path: Optional[str], payload: dict) -> None:
    """Write a stats payload as one canonical-JSON line (machine-readable)."""
    if path is None:
        return
    import pathlib

    from repro.core.canonical import canonical_json_bytes

    target = pathlib.Path(path)
    if target.parent != pathlib.Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(canonical_json_bytes(payload) + b"\n")


#: Version tag of every machine-readable document this CLI writes
#: (``--stats-json`` and ``--metrics-json`` alike); bumped on
#: incompatible payload-layout changes so CI parsers can key on it.
STATS_SCHEMA_VERSION = 1


def _stats_payload(command: str, **fields) -> dict:
    """Base of every machine-readable payload this CLI emits.

    One construction point so sweep / throughput / shard / merge (and the
    metrics documents) all carry the same ``schema_version`` field.
    """
    return {"command": command, "schema_version": STATS_SCHEMA_VERSION, **fields}


def _run_stats_payload(command: str, stats, cache) -> dict:
    """The ``--stats-json`` payload of one grid execution.

    Works for both :class:`~repro.engine.StreamStats` and
    :class:`~repro.engine.SweepResult` (same statistics surface).  CI
    asserts on ``executed`` / ``cache_hits`` instead of grepping the human
    completion line.
    """
    return _stats_payload(
        command,
        total=stats.total,
        executed=stats.executed,
        cache_hits=stats.cache_hits,
        workers=stats.workers,
        chunk_count=stats.chunk_count,
        elapsed=round(stats.elapsed, 6),
        scenarios_per_second=round(stats.throughput, 3),
        cache_enabled=cache is not None,
    )


def _make_obs(args):
    """The ``(metrics, spans)`` pair the obs flags ask for (``None`` = off)."""
    from repro.obs import MetricsRegistry, SpanRecorder

    metrics = MetricsRegistry() if getattr(args, "metrics_json", None) else None
    spans = SpanRecorder() if getattr(args, "trace_ndjson", None) else None
    return metrics, spans


def _write_obs(args, command: str, metrics, spans, stats=None) -> None:
    """Write the ``--metrics-json`` / ``--trace-ndjson`` outputs (if on)."""
    if metrics is not None:
        fields: dict = {"metrics": metrics.snapshot()}
        if stats is not None:
            fields.update(
                total=stats.total,
                workers=stats.workers,
                elapsed=round(stats.elapsed, 6),
            )
        _write_stats_json(args.metrics_json, _stats_payload(command, **fields))
    if spans is not None:
        spans.write_ndjson(args.trace_ndjson)


def _progress_sink(total: int, stats, label: str):
    """A sink that repaints the ``--progress`` line per in-order delivery.

    Reads ``executed`` / ``cache_hits`` live off the engine-shared
    :class:`~repro.engine.StreamStats`, so the line's cache-hit rate is
    current even while chunks are still in flight.  Appended *after* the
    aggregating sinks so a repaint never precedes the delivery it reports.
    """
    from repro.engine.sink import SummarySink
    from repro.obs.progress import ProgressLine

    class _ProgressSink(SummarySink):
        def __init__(self) -> None:
            self.line = ProgressLine(total, label=label)
            self.done = 0

        def accept(self, index: int, summary) -> None:
            self.done += 1
            self.line.update(
                self.done, executed=stats.executed, cache_hits=stats.cache_hits
            )

        def close(self) -> None:
            self.line.update(
                self.done,
                executed=stats.executed,
                cache_hits=stats.cache_hits,
                force=True,
            )
            self.line.close()

    return _ProgressSink()


def _sweep_grid_tasks(args: argparse.Namespace):
    """The sweep grid's task list plus per-protocol spans, or ``None``.

    One task list (and thus one worker pool / shard partition) across all
    protocols; ``spans`` lets the materializing path slice per-protocol
    tables back out of the ordered summaries.
    """
    from repro.engine import ScenarioGrid

    no_voter_options = _resolve_no_voters(args)
    if no_voter_options is None:
        return None
    protocols = _resolve_protocols(args)
    if protocols is None:
        return None
    faults = _resolve_fault_plan(args)
    if faults is _FAULTS_ERROR:
        return None
    base_spec = None
    if faults is not None:
        from repro.protocols.runner import ScenarioSpec

        base_spec = ScenarioSpec(n_sites=args.sites, faults=faults)
    tasks = []
    spans: list[tuple[str, int, int]] = []
    for protocol in protocols:
        grid = ScenarioGrid.from_partition_sweep(
            protocol,
            args.sites,
            times=args.times,
            heal_after=args.heal_after,
            no_voter_options=no_voter_options,
            base_spec=base_spec,
        )
        protocol_tasks = list(grid.tasks())
        spans.append((protocol, len(tasks), len(tasks) + len(protocol_tasks)))
        tasks.extend(protocol_tasks)
    return tasks, spans


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.atomicity import summarize_runs
    from repro.engine import JsonlSink, StreamStats, SweepEngine, VerdictCounterSink
    from repro.metrics.reporting import format_table

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(f"--chunk-size must be >= 1, got {args.chunk_size}", file=sys.stderr)
        return 2
    if args.jsonl is not None and not args.stream:
        print("--jsonl requires --stream", file=sys.stderr)
        return 2
    if args.refine and (args.stream or args.jsonl or args.stats_json):
        print(
            "--refine cannot be combined with --stream/--jsonl/--stats-json",
            file=sys.stderr,
        )
        return 2

    obs_metrics, obs_spans = _make_obs(args)
    engine = SweepEngine(
        workers=args.workers,
        cache=args.cache,
        chunk_size=args.chunk_size,
        metrics=obs_metrics,
        spans=obs_spans,
    )

    if args.refine:
        no_voter_options = _resolve_no_voters(args)
        if no_voter_options is None:
            return 2
        protocols = _resolve_protocols(args)
        if protocols is None:
            return 2
        # With --refine, --times only delimits the interval: refinement
        # places its own (coarse + bisected) points inside [min, max].
        lo = min(args.times) if args.times else 0.25
        hi = max(args.times) if args.times else 8.0
        if hi <= lo:
            print(
                "--refine needs an onset interval: give two distinct --times "
                "(their min/max become the bounds) or use "
                "'repro boundaries --lo ... --hi ...'",
                file=sys.stderr,
            )
            return 2
        code = _refine_and_report(
            engine,
            protocols,
            n_sites=args.sites,
            no_voter_options=no_voter_options,
            heal_after=args.heal_after,
            resolution=args.resolution,
            lo=lo,
            hi=hi,
            coarse_step=0.25,
            classify_bounds=False,
        )
        _write_obs(args, "sweep", obs_metrics, obs_spans)
        return code

    built = _sweep_grid_tasks(args)
    if built is None:
        return 2
    tasks, spans = built

    if args.stream:
        # Constant-memory path: summaries flow through sinks in task order
        # and are never materialized.
        sinks = [VerdictCounterSink()]
        if args.jsonl is not None:
            sinks.append(JsonlSink(args.jsonl))
        stats = StreamStats(workers=args.workers)
        if args.progress:
            sinks.append(_progress_sink(len(tasks), stats, "sweep"))
        stats = engine.run_streaming(tasks, sinks=sinks, stats=stats)
        print(format_table(sinks[0].rows()))
        if args.jsonl is not None:
            print(f"spilled {sinks[1].count} summaries to {args.jsonl}")
        _print_stats(stats, args.workers, engine.cache)
        _write_stats_json(
            args.stats_json, _run_stats_payload("sweep", stats, engine.cache)
        )
        _write_obs(args, "sweep", obs_metrics, obs_spans, stats=stats)
        return 0

    if args.progress:
        # The materializing path pulls through the ordered generator so the
        # progress line can tick per summary; the result surface
        # (StreamStats) carries the same statistics fields.
        from repro.obs.progress import ProgressLine

        result = StreamStats(workers=args.workers)
        line = ProgressLine(len(tasks), label="sweep")
        summaries = []
        for summary in engine.stream(tasks, stats=result):
            summaries.append(summary)
            line.update(
                len(summaries),
                executed=result.executed,
                cache_hits=result.cache_hits,
            )
        line.update(
            len(summaries),
            executed=result.executed,
            cache_hits=result.cache_hits,
            force=True,
        )
        line.close()
    else:
        result = engine.run(tasks)
        summaries = result.summaries
    rows = []
    for protocol, start, end in spans:
        summary = summarize_runs(summaries[start:end], protocol=protocol)
        rows.append(
            {
                "protocol": protocol,
                "scenarios": summary.total_runs,
                "violations": summary.atomicity_violations,
                "blocked": summary.blocked_runs,
                "committed": summary.committed_runs,
                "aborted": summary.aborted_runs,
                "resilient": "yes" if summary.resilient else "NO",
            }
        )
    print(format_table(rows))
    _print_stats(result, args.workers, engine.cache)
    _write_stats_json(
        args.stats_json, _run_stats_payload("sweep", result, engine.cache)
    )
    _write_obs(args, "sweep", obs_metrics, obs_spans, stats=result)
    return 0


def _throughput_grid_tasks(args: argparse.Namespace):
    """The throughput grid's task list, or ``None`` after a printed error.

    Shared by ``repro throughput`` and ``repro shard --kind throughput`` so
    sharded runs execute exactly the grid a single-machine run would.
    """
    from repro.experiments.throughput import DEFAULT_PROTOCOLS, throughput_tasks
    from repro.txn import DeadlockPolicy, RetryPolicy, VictimPolicy

    # Every check names the offending flag so workload mistakes are
    # self-explanatory (the satellite contract of the txn subsystem).
    checks = [
        (args.sites < 1, f"--sites must be >= 1, got {args.sites}"),
        (args.transactions < 1, f"--transactions must be >= 1, got {args.transactions}"),
        (args.tx_rate <= 0, f"--tx-rate must be > 0, got {args.tx_rate}"),
        (
            not 0.0 <= args.read_fraction <= 1.0,
            f"--read-fraction must be in [0, 1], got {args.read_fraction}",
        ),
        (args.ops_per_site < 1, f"--ops-per-site must be >= 1, got {args.ops_per_site}"),
        (args.keys < 1, f"--keys must be >= 1, got {args.keys}"),
        (args.op_delay < 0, f"--op-delay must be >= 0, got {args.op_delay}"),
        (args.lock_timeout <= 0, f"--lock-timeout must be > 0, got {args.lock_timeout}"),
        (args.hotspot < 0, f"--hotspot must be >= 0, got {args.hotspot}"),
        (args.retries < 0, f"--retries must be >= 0, got {args.retries}"),
        (
            args.retry_backoff <= 0,
            f"--retry-backoff must be > 0, got {args.retry_backoff}",
        ),
        (
            not 0.0 < args.partition_at <= 1.0,
            f"--partition-at must be in (0, 1], got {args.partition_at}",
        ),
        (args.heal_after <= 0, f"--heal-after must be > 0, got {args.heal_after}"),
        (
            args.no_partition and args.permanent,
            "--no-partition cannot be combined with --permanent",
        ),
    ]
    for failed, message in checks:
        if failed:
            print(message, file=sys.stderr)
            return None
    if args.crash_schedule:
        print(
            "warning: --crash-schedule is deprecated; use "
            "--faults crash=SITE:AT[:RECOVER_AT]",
            file=sys.stderr,
        )
    try:
        crashes = _parse_crash_schedule(args.crash_schedule or [])
    except ValueError as exc:
        print(f"--crash-schedule: {exc}", file=sys.stderr)
        return None
    if crashes is not None:
        try:
            crashes.validate(args.sites)
        except ValueError as exc:
            print(f"--crash-schedule: {exc}", file=sys.stderr)
            return None
    faults = _resolve_fault_plan(args)
    if faults is _FAULTS_ERROR:
        return None
    protocols = _resolve_protocol_names(args.protocols, default=list(DEFAULT_PROTOCOLS))
    if protocols is None:
        return None
    policy = DeadlockPolicy(
        detect_cycles=args.deadlock in ("cycles", "both"),
        wait_timeout=args.lock_timeout if args.deadlock in ("timeout", "both") else None,
        victim=VictimPolicy(args.victim),
    )
    retry = RetryPolicy(
        max_attempts=args.retries + 1, backoff=args.retry_backoff
    )
    return throughput_tasks(
        protocols,
        n_sites=args.sites,
        n_transactions=args.transactions,
        tx_rates=(args.tx_rate,),
        read_fractions=(args.read_fraction,),
        onset_fractions=(None if args.no_partition else args.partition_at,),
        heal_after=None if args.permanent else args.heal_after,
        operations_per_site=args.ops_per_site,
        n_keys=args.keys,
        op_delay=args.op_delay,
        arrival=args.arrival,
        hotspot=args.hotspot,
        deadlock=policy,
        retry=retry,
        crashes=crashes,
        faults=faults,
        lock_transport=args.lock_transport,
        seeds=args.seeds,
    )


def _run_throughput(args: argparse.Namespace) -> int:
    from repro.engine import JsonlSink, StreamStats, SweepEngine
    from repro.metrics.reporting import format_table
    from repro.txn.sink import ThroughputSink

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    tasks = _throughput_grid_tasks(args)
    if tasks is None:
        return 2
    obs_metrics, obs_spans = _make_obs(args)
    engine = SweepEngine(
        workers=args.workers,
        cache=args.cache,
        metrics=obs_metrics,
        spans=obs_spans,
    )
    sinks: list = [ThroughputSink()]
    if args.jsonl is not None:
        sinks.append(JsonlSink(args.jsonl))
    stats = StreamStats(workers=args.workers)
    if args.progress:
        sinks.append(_progress_sink(len(tasks), stats, "throughput"))
    stats = engine.run_streaming(tasks, sinks=sinks, stats=stats)
    print(format_table(sinks[0].rows()))
    if args.jsonl is not None:
        print(f"spilled {sinks[1].count} summaries to {args.jsonl}")
    _print_stats(stats, args.workers, engine.cache)
    _write_stats_json(
        args.stats_json, _run_stats_payload("throughput", stats, engine.cache)
    )
    _write_obs(args, "throughput", obs_metrics, obs_spans, stats=stats)
    return 0


def _envelope_for_plan(plan) -> Optional[str]:
    """The exhaustive fault envelope covering a ``--faults`` clause plan.

    The checker abstracts probabilities away: any loss clause maps onto the
    ``lossy`` envelope (one adversarial silent loss, anywhere), loss with
    retransmission onto ``lossy-retransmit``, a crash clause onto
    ``single-crash``.  Fault classes with no exhaustive envelope (dup /
    reorder / omission / byzantine) print an error and return ``None``.
    """
    from repro.core.reachability import (
        FAILURE_FREE,
        LOSSY,
        LOSSY_RETRANSMIT,
        SINGLE_CRASH,
    )

    classes = set(plan.fault_classes()) if plan is not None else set()
    unsupported = sorted(classes - {"loss", "crash"})
    if unsupported or classes == {"loss", "crash"}:
        print(
            f"--faults: no exhaustive envelope covers "
            f"{unsupported or sorted(classes)}; the checker maps crash=..., "
            f"loss=... and loss=...,retransmit=on (use the simulator -- "
            f"repro sweep / repro throughput -- for the other fault classes)",
            file=sys.stderr,
        )
        return None
    if "loss" in classes:
        if plan.retransmit is not None:
            return LOSSY_RETRANSMIT
        return LOSSY
    if "crash" in classes:
        return SINGLE_CRASH
    # A bare retransmit=on plan: retransmission restores assumption 1, so
    # the graph is the failure-free one by construction.
    return FAILURE_FREE


def _modelcheck_envelopes(args: argparse.Namespace) -> Optional[list[str]]:
    """``--faults`` values as fault envelopes, or ``None`` after the error.

    Accepts envelope names (``failure-free`` ... ``lossy-retransmit``,
    ``all`` = the classic trio) directly and maps clause-grammar plans via
    :func:`_envelope_for_plan`, so the unified ``--faults`` spelling works
    against the exhaustive checker too.
    """
    from repro.core.reachability import ALL_FAULT_ENVELOPES
    from repro.experiments.modelcheck import DEFAULT_FAULTS

    values = args.faults or ["all"]
    envelopes: list[str] = []
    for value in values:
        if value == "all":
            envelopes.extend(DEFAULT_FAULTS)
        elif value in ALL_FAULT_ENVELOPES:
            envelopes.append(value)
        else:
            try:
                plan = _parse_fault_clauses([value])
                if plan is not None:
                    plan.validate(args.sites)
            except ValueError as exc:
                print(f"--faults: {exc}", file=sys.stderr)
                return None
            envelope = _envelope_for_plan(plan)
            if envelope is None:
                return None
            envelopes.append(envelope)
    return list(dict.fromkeys(envelopes))


def _modelcheck_grid_tasks(args: argparse.Namespace):
    """The model-checking grid's task list, or ``None`` after a printed error.

    Shared by ``repro modelcheck`` and ``repro shard --kind modelcheck`` so
    sharded runs explore exactly the grid a single-machine run would.
    """
    from repro.experiments.modelcheck import modelcheck_tasks
    from repro.modelcheck.protocols import checkable_protocols

    checks = [
        (args.sites < 2, f"--sites must be >= 2, got {args.sites}"),
        (
            args.max_states < 1,
            f"--max-states must be >= 1, got {args.max_states}",
        ),
        (
            args.max_depth is not None and args.max_depth < 1,
            f"--max-depth must be >= 1, got {args.max_depth}",
        ),
    ]
    for failed, message in checks:
        if failed:
            print(message, file=sys.stderr)
            return None
    protocols = args.protocol or ["all"]
    if any(p == "all" for p in protocols):
        protocols = checkable_protocols()
    unknown = [p for p in protocols if p not in checkable_protocols()]
    if unknown:
        print(f"uncheckable protocol(s): {', '.join(unknown)}", file=sys.stderr)
        print(
            f"checkable (FSA-modelled): {', '.join(checkable_protocols())}",
            file=sys.stderr,
        )
        return None
    faults = _modelcheck_envelopes(args)
    if faults is None:
        return None
    no_voter_options = _resolve_no_voters(args)
    if no_voter_options is None:
        return None
    if any(1 in option for option in no_voter_options):
        print(
            "--no-voters cannot include site 1: a no-voting master aborts "
            "unilaterally before any message is sent, so there is no "
            "protocol execution to check",
            file=sys.stderr,
        )
        return None
    return modelcheck_tasks(
        protocols,
        n_sites=args.sites,
        faults=faults,
        no_voter_options=no_voter_options,
        max_states=args.max_states,
        max_depth=args.max_depth,
    )


def _run_modelcheck(args: argparse.Namespace) -> int:
    from repro.core.reachability import ExplorationError
    from repro.engine import JsonlSink, StreamStats, SweepEngine
    from repro.engine.sink import SummarySink
    from repro.metrics.reporting import format_table
    from repro.modelcheck.sink import ModelCheckSink
    from repro.modelcheck.summary import ModelCheckSummary

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(f"--chunk-size must be >= 1, got {args.chunk_size}", file=sys.stderr)
        return 2
    tasks = _modelcheck_grid_tasks(args)
    if tasks is None:
        return 2
    obs_metrics, obs_spans = _make_obs(args)
    engine = SweepEngine(
        workers=args.workers,
        cache=args.cache,
        chunk_size=args.chunk_size,
        metrics=obs_metrics,
        spans=obs_spans,
    )

    refuted: list[ModelCheckSummary] = []

    class _CounterexampleCollector(SummarySink):
        """Keeps the summaries that carry counterexample traces."""

        def accept(self, index: int, summary) -> None:
            if isinstance(summary, ModelCheckSummary) and summary.counterexamples:
                refuted.append(summary)

    sinks: list = [ModelCheckSink(), _CounterexampleCollector()]
    if args.jsonl is not None:
        sinks.append(JsonlSink(args.jsonl))
    stats = StreamStats(workers=args.workers)
    if args.progress:
        sinks.append(_progress_sink(len(tasks), stats, "modelcheck"))
    try:
        stats = engine.run_streaming(tasks, sinks=sinks, stats=stats)
    except ExplorationError as exc:
        print(
            f"exploration budget exceeded: {exc} "
            "(raise --max-states, or bound the graph with --max-depth)",
            file=sys.stderr,
        )
        return 2
    print(format_table(sinks[0].rows()))
    if not args.no_traces:
        for summary in refuted:
            print()
            print(summary.summary())
            for name in sorted(summary.counterexamples):
                print(f"counterexample [{name}]:")
                print(summary.format_counterexample(name))
    if args.jsonl is not None:
        print(f"spilled {sinks[2].count} summaries to {args.jsonl}")
    _print_stats(stats, args.workers, engine.cache)
    _write_stats_json(
        args.stats_json, _run_stats_payload("modelcheck", stats, engine.cache)
    )
    _write_obs(args, "modelcheck", obs_metrics, obs_spans, stats=stats)
    return 0


def _shard_kind_tasks(args: argparse.Namespace):
    """Validate one shard namespace's grid flags and build its task list.

    Returns the task list, or ``None`` after printing the failure (exit
    code 2 territory).  Shared by the command-line grid axes and each
    ``--manifest`` entry, so both reject cross-kind flags the same way.
    """
    # Flags belonging to another grid would be silently ignored -- the
    # shard would quietly cover a different grid than the user asked for,
    # breaking the merge-vs-single-machine identity.  Name the mistake.
    def _foreign_flags(defaults: dict) -> list[str]:
        return [
            "--" + dest.replace("_", "-")
            for dest, default in defaults.items()
            if getattr(args, dest) != default
        ]

    foreign_by_owner = {
        "throughput": _foreign_flags(_TPUT_ONLY_DEFAULTS),
        "modelcheck": _foreign_flags(_MC_ONLY_DEFAULTS),
    }
    for owner, foreign in foreign_by_owner.items():
        if owner != args.kind and foreign:
            print(
                f"{', '.join(foreign)} appl"
                f"{'y' if len(foreign) > 1 else 'ies'} to "
                f"--kind {owner}, not --kind {args.kind}",
                file=sys.stderr,
            )
            return None
    if args.kind == "throughput":
        for provided, flag in (
            (args.protocol, "--protocol"),
            (args.times, "--times"),
            (args.no_voters, "--no-voters"),
        ):
            if provided is not None:
                print(
                    f"{flag} applies to --kind sweep/modelcheck; "
                    f"the throughput grid takes --protocols",
                    file=sys.stderr,
                )
                return None
    if args.kind == "modelcheck":
        for provided, flag in (
            (args.times, "--times"),
            (args.heal_after, "--heal-after"),
        ):
            if provided is not None:
                print(
                    f"{flag} applies to --kind sweep; "
                    f"the modelcheck grid has no timing axis",
                    file=sys.stderr,
                )
                return None
    if args.kind == "sweep":
        built = _sweep_grid_tasks(args)
        return None if built is None else built[0]
    if args.kind == "modelcheck":
        return _modelcheck_grid_tasks(args)
    # The shard parser leaves --heal-after unset by default (the sweep
    # axes own the flag); apply the throughput subcommand's default so
    # both build the same grid.
    if args.heal_after is None:
        args.heal_after = _TPUT_HEAL_DEFAULT
    return _throughput_grid_tasks(args)


def _manifest_tasks(args: argparse.Namespace):
    """Build the concatenated task list a ``--manifest`` file describes.

    The manifest is ``{"grids": [{"kind": ..., "args": [...]}, ...]}``;
    each entry's args are parsed through the shard grammar itself, so a
    manifest grid accepts exactly the flags the command line does and
    fails with the same messages.  Returns ``None`` after printing the
    failure.
    """
    import json
    import os
    import pathlib

    try:
        payload = json.loads(pathlib.Path(args.manifest).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {args.manifest}: {exc}", file=sys.stderr)
        return None
    entries = payload.get("grids") if isinstance(payload, dict) else None
    if not isinstance(entries, list) or not entries:
        print(
            f"{args.manifest}: manifest needs a non-empty 'grids' list",
            file=sys.stderr,
        )
        return None
    parser = _build_parser()
    tasks: list = []
    for position, entry in enumerate(entries):
        kind = entry.get("kind") if isinstance(entry, dict) else None
        if kind not in ("sweep", "throughput", "modelcheck"):
            print(
                f"{args.manifest}: grids[{position}] needs "
                f"\"kind\": sweep|throughput|modelcheck, got {kind!r}",
                file=sys.stderr,
            )
            return None
        extra = entry.get("args", [])
        if not isinstance(extra, list) or not all(
            isinstance(item, str) for item in extra
        ):
            print(
                f"{args.manifest}: grids[{position}] \"args\" must be a "
                f"list of strings",
                file=sys.stderr,
            )
            return None
        try:
            entry_args = parser.parse_args(
                [
                    "shard",
                    "--shard-index",
                    "0",
                    "--shard-count",
                    "1",
                    "--out",
                    os.devnull,
                    "--kind",
                    kind,
                    *extra,
                ]
            )
        except SystemExit:
            print(
                f"{args.manifest}: grids[{position}] ({kind}): invalid "
                f"arguments",
                file=sys.stderr,
            )
            return None
        built = _shard_kind_tasks(entry_args)
        if built is None:
            print(
                f"{args.manifest}: grids[{position}] ({kind}): invalid grid",
                file=sys.stderr,
            )
            return None
        tasks.extend(built)
    return tasks


def _run_shard(args: argparse.Namespace) -> int:
    from repro.engine import SweepEngine
    from repro.engine.resultlog import DEFAULT_SEGMENT_RECORDS, run_shard_log
    from repro.engine.shard import ShardFormatError, run_shard

    checks = [
        (args.workers < 1, f"--workers must be >= 1, got {args.workers}"),
        (
            args.chunk_size is not None and args.chunk_size < 1,
            f"--chunk-size must be >= 1, got {args.chunk_size}",
        ),
        (args.shard_count < 1, f"--shard-count must be >= 1, got {args.shard_count}"),
        (
            not 0 <= args.shard_index < max(args.shard_count, 1),
            f"--shard-index must be in [0, {args.shard_count}), got {args.shard_index}",
        ),
        (
            (args.out is None) == (args.log is None),
            "pass exactly one of --out PATH (one-shot spill) or --log DIR "
            "(durable result log)",
        ),
        (
            args.segment_records is not None and args.log is None,
            "--segment-records applies to --log shards only",
        ),
        (
            args.segment_records is not None and args.segment_records < 1,
            f"--segment-records must be >= 1, got {args.segment_records}",
        ),
    ]
    for failed, message in checks:
        if failed:
            print(message, file=sys.stderr)
            return 2
    if args.manifest is not None:
        # Command-line grid axes alongside --manifest would be silently
        # ignored; insist the manifest owns the whole grid definition.
        grid_axes = {
            **_TPUT_ONLY_DEFAULTS,
            **_MC_ONLY_DEFAULTS,
            "protocol": None,
            "times": None,
            "no_voters": None,
            "heal_after": None,
            "faults": None,
        }
        set_flags = [
            "--" + dest.replace("_", "-")
            for dest, default in grid_axes.items()
            if getattr(args, dest) != default
        ]
        if set_flags:
            print(
                f"{', '.join(set_flags)} cannot be combined with "
                f"--manifest; put grid flags in the manifest entries",
                file=sys.stderr,
            )
            return 2
        tasks = _manifest_tasks(args)
        kind_label = "manifest"
    else:
        tasks = _shard_kind_tasks(args)
        kind_label = args.kind
    if tasks is None:
        return 2
    obs_metrics, obs_spans = _make_obs(args)
    engine = SweepEngine(
        workers=args.workers,
        cache=args.cache,
        chunk_size=args.chunk_size,
        metrics=obs_metrics,
        spans=obs_spans,
    )
    extra_fields: dict = {}
    if args.log is not None:
        try:
            result = run_shard_log(
                tasks,
                args.shard_index,
                args.shard_count,
                args.log,
                engine=engine,
                segment_records=args.segment_records or DEFAULT_SEGMENT_RECORDS,
            )
        except (ShardFormatError, OSError) as exc:
            print(f"shard failed: {exc}", file=sys.stderr)
            return 2
        stats = result.stats
        print(
            f"shard {args.shard_index}/{args.shard_count} ({kind_label} "
            f"grid): {result.appended} of {result.shard_tasks} task(s) "
            f"appended to {args.log} ({result.skipped} already sealed, "
            f"{result.segments_sealed} segment(s) sealed)"
        )
        extra_fields = {
            "resumed_skips": result.skipped,
            "records_appended": result.appended,
            "segments_sealed": result.segments_sealed,
        }
    else:
        stats = run_shard(
            tasks, args.shard_index, args.shard_count, args.out, engine=engine
        )
        print(
            f"shard {args.shard_index}/{args.shard_count} ({kind_label} grid): "
            f"{stats.total} of {len(tasks)} task(s) spilled to {args.out}"
        )
    _print_stats(stats, args.workers, engine.cache)
    payload = _run_stats_payload("shard", stats, engine.cache)
    payload.update(
        {
            "kind": kind_label,
            "shard_index": args.shard_index,
            "shard_count": args.shard_count,
            "total_tasks": len(tasks),
            **extra_fields,
        }
    )
    _write_stats_json(args.stats_json, payload)
    _write_obs(args, "shard", obs_metrics, obs_spans, stats=stats)
    return 0


def _run_merge(args: argparse.Namespace) -> int:
    import os
    from contextlib import nullcontext

    from repro.engine.registry import UnknownSpecKindError
    from repro.engine.resultlog import (
        DEFAULT_BATCH_RECORDS,
        InjectedMergeCrash,
        merge_result_log,
    )
    from repro.engine.shard import ShardFormatError, merge_shards
    from repro.metrics.reporting import format_table
    from repro.obs.metrics import activate

    checks = [
        (
            bool(args.spills) == (args.log is not None),
            "pass exactly one source: SPILL files or --log DIR",
        ),
        (
            args.log is None and args.resume,
            "--resume applies to --log merges only",
        ),
        (
            args.log is None and args.checkpoint is not None,
            "--checkpoint applies to --log merges only",
        ),
        (
            args.log is None and args.batch_records is not None,
            "--batch-records applies to --log merges only",
        ),
        (
            args.batch_records is not None and args.batch_records < 1,
            f"--batch-records must be >= 1, got {args.batch_records}",
        ),
    ]
    for failed, message in checks:
        if failed:
            print(message, file=sys.stderr)
            return 2
    crash_env = os.environ.get("REPRO_MERGE_CRASH_AFTER")
    try:
        crash_after = int(crash_env) if crash_env else None
    except ValueError:
        print(
            f"REPRO_MERGE_CRASH_AFTER must be an integer, got {crash_env!r}",
            file=sys.stderr,
        )
        return 2
    obs_metrics, obs_spans = _make_obs(args)
    span_fields = (
        {"log": str(args.log)}
        if args.log is not None
        else {"spills": len(args.spills)}
    )
    try:
        with (
            activate(obs_metrics) if obs_metrics is not None else nullcontext()
        ), (
            obs_spans.span("merge", **span_fields)
            if obs_spans is not None
            else nullcontext()
        ):
            if args.log is not None:
                result = merge_result_log(
                    args.log,
                    jsonl=args.jsonl,
                    checkpoint=args.checkpoint,
                    resume=args.resume,
                    require_complete=not args.allow_partial,
                    batch_records=args.batch_records or DEFAULT_BATCH_RECORDS,
                    crash_after=crash_after,
                )
            else:
                result = merge_shards(
                    args.spills,
                    jsonl=args.jsonl,
                    require_complete=not args.allow_partial,
                )
    except InjectedMergeCrash as exc:
        print(f"merge interrupted: {exc}", file=sys.stderr)
        return 3
    except (ShardFormatError, UnknownSpecKindError, OSError) as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 2
    for sink in result.kind_sinks.values():
        rows = sink.rows() if hasattr(sink, "rows") else []
        if rows:
            print(format_table(rows))
    if args.jsonl is not None:
        print(f"spilled {result.records} merged summaries to {args.jsonl}")
    if args.log is not None:
        print(
            f"merged {result.records} record(s) from {result.segments} "
            f"sealed segment(s) across {len(result.headers)} shard(s) "
            f"(grid of {result.total_tasks} task(s), {result.deduped} "
            f"deduped, {result.replayed} replayed from checkpoint, "
            f"{result.elapsed:.2f}s)"
        )
    else:
        print(
            f"merged {result.records} record(s) from {len(result.headers)} "
            f"shard spill(s) (grid of {result.total_tasks} task(s), "
            f"{result.elapsed:.2f}s)"
        )
    # Deliberately excluded from the stats payload: the replayed count,
    # which differs between a resumed and an uninterrupted merge of the
    # same log -- everything written here is a property of the log itself,
    # so resumed stats match single-shot stats (modulo elapsed).
    log_fields = (
        {"segments": result.segments, "records_deduped": result.deduped}
        if args.log is not None
        else {}
    )
    _write_stats_json(
        args.stats_json,
        _stats_payload(
            "merge",
            shards=len(result.headers),
            shard_count=result.shard_count,
            records=result.records,
            total_tasks=result.total_tasks,
            kinds=sorted(result.kind_sinks),
            elapsed=round(result.elapsed, 6),
            **log_fields,
        ),
    )
    if obs_metrics is not None:
        _write_stats_json(
            args.metrics_json,
            _stats_payload(
                "merge",
                total=result.records,
                elapsed=round(result.elapsed, 6),
                metrics=obs_metrics.snapshot(),
            ),
        )
    if obs_spans is not None:
        obs_spans.write_ndjson(args.trace_ndjson)
    return 0


def _refine_and_report(
    engine,
    protocols: list[str],
    *,
    n_sites: int,
    no_voter_options: tuple[frozenset[int], ...],
    heal_after: Optional[float],
    resolution: float,
    lo: float,
    hi: float,
    coarse_step: float,
    classify_bounds: bool,
) -> int:
    """Shared implementation of ``sweep --refine`` and ``boundaries``."""
    from repro.engine import RefinementDriver, verdict_class, verdict_class_with_bound
    from repro.metrics.reporting import format_table

    if resolution <= 0:
        print(f"--resolution must be > 0, got {resolution}", file=sys.stderr)
        return 2
    if hi <= lo:
        print(f"need --lo < --hi, got [{lo}, {hi}]", file=sys.stderr)
        return 2
    if coarse_step <= 0:
        print(f"--coarse-step must be > 0, got {coarse_step}", file=sys.stderr)
        return 2
    driver = RefinementDriver(
        engine,
        resolution=resolution,
        classify=verdict_class_with_bound if classify_bounds else verdict_class,
    )
    rows = []
    scenarios_run = 0
    executed = 0
    cache_hits = 0
    uniform = 0
    for protocol in protocols:
        results = driver.refine_partition_boundaries(
            protocol,
            n_sites,
            no_voter_options=no_voter_options,
            heal_after=heal_after,
            lo=lo,
            hi=hi,
            coarse_step=coarse_step,
        )
        for result in results:
            rows.extend(result.rows())
            scenarios_run += result.scenarios_run
            executed += result.executed
            cache_hits += result.cache_hits
            uniform += result.uniform_equivalent()
    if uniform == 0:
        # No refinement lines at all (e.g. a single site has no simple splits).
        print(f"no partition lines to refine for {args_desc(protocols, n_sites)}")
        return 0
    if rows:
        print(
            format_table(rows, title=f"verdict boundaries bracketed to {resolution:g} T")
        )
    else:
        print(f"no verdict flips in [{lo:g}, {hi:g}] (every onset classifies alike)")
    print(
        f"{scenarios_run} scenarios evaluated ({executed} executed, "
        f"{_cache_text(engine.cache, cache_hits, scenarios_run)}) "
        f"vs {uniform} for the uniform {resolution:g} T grid "
        f"({scenarios_run / uniform:.1%} of uniform cost)"
    )
    return 0


def args_desc(protocols: list[str], n_sites: int) -> str:
    """Short description of a refinement request, for empty-result messages."""
    return f"{', '.join(protocols)} at {n_sites} site(s)"


def _run_boundaries(args: argparse.Namespace) -> int:
    from repro.engine import SweepEngine

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    no_voter_options = _resolve_no_voters(args)
    if no_voter_options is None:
        return 2
    protocols = _resolve_protocols(args)
    if protocols is None:
        return 2
    obs_metrics, obs_spans = _make_obs(args)
    engine = SweepEngine(
        workers=args.workers,
        cache=args.cache,
        metrics=obs_metrics,
        spans=obs_spans,
    )
    code = _refine_and_report(
        engine,
        protocols,
        n_sites=args.sites,
        no_voter_options=no_voter_options,
        heal_after=args.heal_after,
        resolution=args.resolution,
        lo=args.lo,
        hi=args.hi,
        coarse_step=args.coarse_step,
        classify_bounds=args.decision_bounds,
    )
    _write_obs(args, "boundaries", obs_metrics, obs_spans)
    return code


def _run_report(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.obs.report import render_metrics_document

    try:
        document = json.loads(pathlib.Path(args.metrics).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        print(f"report failed: {exc}", file=sys.stderr)
        return 2
    if not isinstance(document, dict):
        print(
            f"report failed: {args.metrics} is not a metrics document "
            f"(expected a JSON object)",
            file=sys.stderr,
        )
        return 2
    print(render_metrics_document(document))
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    """The ``run`` / ``all`` subcommands (with optional obs recording)."""
    from contextlib import nullcontext

    from repro.obs.metrics import activate

    ids = list(EXPERIMENTS) if args.command == "all" else [i.upper() for i in args.ids]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    obs_metrics, obs_spans = _make_obs(args)
    with activate(obs_metrics) if obs_metrics is not None else nullcontext():
        for experiment_id in ids:
            with (
                obs_spans.span(experiment_id)
                if obs_spans is not None
                else nullcontext()
            ):
                report = EXPERIMENTS[experiment_id]()
            print(report.format())
            print()
    _write_obs(args, args.command, obs_metrics, obs_spans)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "throughput":
        return _run_throughput(args)
    if args.command == "modelcheck":
        return _run_modelcheck(args)
    if args.command == "shard":
        return _run_shard(args)
    if args.command == "merge":
        return _run_merge(args)
    if args.command == "boundaries":
        return _run_boundaries(args)
    if args.command == "report":
        return _run_report(args)
    return _run_experiments(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
