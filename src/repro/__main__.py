"""Command-line entry point: regenerate experiments, or run custom sweeps.

Usage::

    python -m repro list
    python -m repro run FIG8
    python -m repro run SEC6 FIG5 AVAIL
    python -m repro all
    python -m repro sweep --workers 4 --sites 4 --protocol all
    python -m repro sweep --protocol terminating-three-phase-commit \\
        --times 0.5 1.5 2.5 --heal-after 2.0 --cache .sweep-cache
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import experiments as ex

EXPERIMENTS: dict[str, Callable[[], "ex.ExperimentReport"]] = {
    "FIG1": ex.run_fig1_two_phase,
    "FIG2": ex.run_fig2_extended_two_phase,
    "FIG3": ex.run_fig3_three_phase,
    "FIG5": ex.run_fig5_timeouts,
    "FIG6": ex.run_fig6_probe_window,
    "FIG7": ex.run_fig7_wait_in_w,
    "FIG8": ex.run_fig8_termination,
    "FIG9": ex.run_fig9_wait_in_p,
    "SEC3": ex.run_sec3_counterexamples,
    "LEMMA12": ex.run_lemma_checks,
    "LEMMA3": ex.run_lemma3_sweep,
    "SEC6": ex.run_sec6_cases,
    "SEC7": ex.run_sec7_assumptions,
    "THM10": ex.run_thm10_generalization,
    "AVAIL": ex.run_availability_comparison,
    "MSG": ex.run_message_overhead,
    "MULTI": ex.run_multiple_partitioning,
}


def _parse_no_voters(values: list[str]) -> tuple[frozenset[int], ...]:
    """Each occurrence is a comma-separated site list; 'none' = all vote yes."""
    options: list[frozenset[int]] = []
    for value in values:
        if value.strip().lower() in ("", "none"):
            options.append(frozenset())
        else:
            options.append(frozenset(int(site) for site in value.split(",")))
    return tuple(options) if options else (frozenset(),)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from Huang & Li (ICDE 1987).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument("ids", nargs="+", metavar="ID", help="experiment ids (see 'list')")
    sub.add_parser("all", help="run every experiment")

    sweep = sub.add_parser(
        "sweep",
        help="run a partition sweep on the parallel engine",
        description=(
            "Sweep partition onset times x simple splits x vote patterns for "
            "one or more protocols, executing scenarios across worker "
            "processes and summarizing atomicity / blocking per protocol."
        ),
    )
    sweep.add_argument(
        "--protocol",
        action="append",
        default=None,
        metavar="NAME",
        help="protocol registry name (repeatable); 'all' sweeps every protocol",
    )
    sweep.add_argument("--sites", type=int, default=3, help="number of sites (default 3)")
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1, in-process)"
    )
    sweep.add_argument(
        "--times",
        type=float,
        nargs="+",
        default=None,
        metavar="T",
        help="partition onset times (default: the standard 0.25T grid)",
    )
    sweep.add_argument(
        "--heal-after",
        type=float,
        default=None,
        metavar="DT",
        help="heal every partition DT after onset (transient partitioning)",
    )
    sweep.add_argument(
        "--no-voters",
        action="append",
        default=None,
        metavar="SITES",
        help="comma-separated no-voting sites; repeatable, 'none' = all yes",
    )
    sweep.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory (re-sweeps become incremental)",
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="scenarios per worker submission (default: auto)",
    )
    return parser


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.atomicity import summarize_runs
    from repro.engine import ScenarioGrid, SweepEngine
    from repro.metrics.reporting import format_table
    from repro.protocols.registry import available_protocols

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(f"--chunk-size must be >= 1, got {args.chunk_size}", file=sys.stderr)
        return 2
    try:
        no_voter_options = _parse_no_voters(args.no_voters or [])
    except ValueError:
        print(
            f"--no-voters expects comma-separated site numbers (or 'none'), "
            f"got {args.no_voters}",
            file=sys.stderr,
        )
        return 2
    out_of_range = sorted(
        site
        for option in no_voter_options
        for site in option
        if not 1 <= site <= args.sites
    )
    if out_of_range:
        print(
            f"--no-voters names site(s) {out_of_range} outside 1..{args.sites}",
            file=sys.stderr,
        )
        return 2

    protocols = args.protocol or ["terminating-three-phase-commit"]
    if any(p == "all" for p in protocols):
        protocols = available_protocols()
    unknown = [p for p in protocols if p not in available_protocols()]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available_protocols())}", file=sys.stderr)
        return 2

    engine = SweepEngine(
        workers=args.workers, cache=args.cache, chunk_size=args.chunk_size
    )
    # One task list (and thus one worker pool) across all protocols; the
    # per-protocol tables are sliced back out of the ordered summaries.
    tasks = []
    spans: list[tuple[str, int, int]] = []
    for protocol in protocols:
        grid = ScenarioGrid.from_partition_sweep(
            protocol,
            args.sites,
            times=args.times,
            heal_after=args.heal_after,
            no_voter_options=no_voter_options,
        )
        protocol_tasks = list(grid.tasks())
        spans.append((protocol, len(tasks), len(tasks) + len(protocol_tasks)))
        tasks.extend(protocol_tasks)

    result = engine.run(tasks)
    rows = []
    for protocol, start, end in spans:
        summary = summarize_runs(result.summaries[start:end], protocol=protocol)
        rows.append(
            {
                "protocol": protocol,
                "scenarios": summary.total_runs,
                "violations": summary.atomicity_violations,
                "blocked": summary.blocked_runs,
                "committed": summary.committed_runs,
                "aborted": summary.aborted_runs,
                "resilient": "yes" if summary.resilient else "NO",
            }
        )
    print(format_table(rows))
    print(
        f"{result.total} scenarios in {result.elapsed:.2f}s "
        f"({args.workers} worker(s), {result.throughput:.0f} runs/s, "
        f"{result.executed} executed, {result.cache_hits} from cache)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    ids = list(EXPERIMENTS) if args.command == "all" else [i.upper() for i in args.ids]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        report = EXPERIMENTS[experiment_id]()
        print(report.format())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
