"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run FIG8
    python -m repro run SEC6 FIG5 AVAIL
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import experiments as ex

EXPERIMENTS: dict[str, Callable[[], "ex.ExperimentReport"]] = {
    "FIG1": ex.run_fig1_two_phase,
    "FIG2": ex.run_fig2_extended_two_phase,
    "FIG3": ex.run_fig3_three_phase,
    "FIG5": ex.run_fig5_timeouts,
    "FIG6": ex.run_fig6_probe_window,
    "FIG7": ex.run_fig7_wait_in_w,
    "FIG8": ex.run_fig8_termination,
    "FIG9": ex.run_fig9_wait_in_p,
    "SEC3": ex.run_sec3_counterexamples,
    "LEMMA12": ex.run_lemma_checks,
    "LEMMA3": ex.run_lemma3_sweep,
    "SEC6": ex.run_sec6_cases,
    "SEC7": ex.run_sec7_assumptions,
    "THM10": ex.run_thm10_generalization,
    "AVAIL": ex.run_availability_comparison,
    "MSG": ex.run_message_overhead,
    "MULTI": ex.run_multiple_partitioning,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from Huang & Li (ICDE 1987).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument("ids", nargs="+", metavar="ID", help="experiment ids (see 'list')")
    sub.add_parser("all", help="run every experiment")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    ids = list(EXPERIMENTS) if args.command == "all" else [i.upper() for i in args.ids]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        report = EXPERIMENTS[experiment_id]()
        print(report.format())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
