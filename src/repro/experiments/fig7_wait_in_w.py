"""FIG7 -- a slave's wait after timing out in state ``w``.

Fig. 7 bounds by ``6T`` the time a slave that timed out in ``w`` may have to
wait for the commit (relayed by the slave in ``G2`` that received a prepare)
-- which is why the protocol's action for a timeout in ``w`` is "wait a
further 6T, then abort".  The experiment sweeps partition scenarios,
collects every slave that timed out in ``w`` and eventually decided, and
measures the worst wait.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.analysis.scenarios import partition_sweep
from repro.analysis.timing import TimingMeasurement
from repro.core.termination import TerminationTimers
from repro.engine import tasks_from_specs
from repro.experiments.harness import ExperimentReport, get_engine
from repro.sim.latency import PerLinkLatency


def run_fig7_wait_in_w(
    n_sites: int = 4,
    *,
    times: Optional[Iterable[float]] = None,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Measure the worst wait between a timeout in ``w`` and the decision."""
    report = ExperimentReport(
        experiment="FIG7",
        title="Slave wait after timing out in w (bound 6T)",
    )
    timers = TerminationTimers(max_delay=1.0)
    # Constant-latency sweep plus the skewed-latency scenario in which a
    # G2 slave that never saw a prepare must wait for a relayed commit.
    specs = partition_sweep(n_sites, times=times)
    skewed = partition_sweep(n_sites, times=[3.7, 3.9, 4.1])
    for spec in skewed:
        spec.latency = PerLinkLatency(1.0, {(1, n_sites): 1.5})
        specs.append(spec)
    tasks = tasks_from_specs("terminating-three-phase-commit", specs)
    # Streamed: the fold below only ever holds one summary at a time.
    sweep = get_engine(workers).stream(tasks, measures=("wait_in_w",))
    worst = 0.0
    samples = 0
    timed_out_without_decision = 0
    for summary in sweep:
        unit = summary.max_delay
        for wait in summary.metrics["wait_in_w"].values():
            if math.isinf(wait):
                timed_out_without_decision += 1
                continue
            samples += 1
            worst = max(worst, wait / unit)
    measurement = TimingMeasurement(
        name="timeout in w -> decision",
        measured=worst,
        bound=timers.wait_in_w,
        unit=1.0,
    )
    report.table.append(
        {
            "sites": n_sites,
            "slaves that timed out in w": samples,
            "never decided": timed_out_without_decision,
            "worst wait (xT)": f"{measurement.measured_in_t:.2f}",
            "paper bound (xT)": "6.0",
            "within bound": "yes" if measurement.within_bound else "NO",
        }
    )
    report.details = {"measurement": measurement, "samples": samples}
    report.headline = (
        f"No slave that timed out in w waited more than {measurement.measured_in_t:.2f}T for its "
        "decision -- within the 6T window after which the protocol aborts (Fig. 7)."
    )
    return report
