"""AVAIL -- the availability / blocking comparison that motivates the paper.

Sections 1-2 argue that blocking is unacceptable because a blocked
transaction keeps its locks, making data unavailable to every other
transaction.  This experiment quantifies that argument: it runs the same
partition sweep under each protocol and compares blocking rates, lock
retention and decision latency.  Each sweep streams into
:class:`~repro.engine.sink.AtomicitySink` / :class:`~repro.engine.sink.BlockingSink`
aggregators, so the comparison scales to arbitrarily large grids without
materializing summaries.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.engine import AtomicitySink, BlockingSink
from repro.experiments.harness import ExperimentReport, stream_protocol_sinks

DEFAULT_PROTOCOLS: tuple[str, ...] = (
    "two-phase-commit",
    "three-phase-commit",
    "extended-two-phase-commit",
    "naive-extended-three-phase-commit",
    "terminating-three-phase-commit",
)


def run_availability_comparison(
    n_sites: int = 3,
    *,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    times: Optional[Iterable[float]] = None,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Compare blocking / lock retention across protocols on the same sweep."""
    report = ExperimentReport(
        experiment="AVAIL",
        title=f"Availability under simple partitions ({n_sites} sites)",
    )
    details = {}
    times = list(times) if times is not None else None
    for protocol in protocols:
        # Each protocol's sweep streams into the two report sinks; no summary
        # list is materialized even for large site counts.
        atomicity_sink = AtomicitySink(protocol=protocol)
        blocking_sink = BlockingSink(protocol=protocol)
        stream_protocol_sinks(
            protocol,
            sinks=(atomicity_sink, blocking_sink),
            n_sites=n_sites,
            times=times,
            workers=workers,
        )
        blocking = blocking_sink.report
        atomicity = atomicity_sink.report
        details[protocol] = {"blocking": blocking, "atomicity": atomicity}
        worst_latency = blocking.max_decision_latency
        mean_locks = blocking.mean_lock_hold_time
        report.table.append(
            {
                "protocol": protocol,
                "scenarios": blocking.total_runs,
                "blocking rate": f"{blocking.blocking_rate:.1%}",
                "mean blocked sites": f"{blocking.mean_blocked_sites:.2f}",
                "atomicity violations": atomicity.atomicity_violations,
                "mean lock-hold time (xT)": f"{mean_locks:.1f}" if mean_locks is not None else "-",
                "worst decision latency (xT)": (
                    f"{worst_latency:.1f}" if worst_latency is not None else "-"
                ),
            }
        )
    report.details = details
    terminating = details.get("terminating-three-phase-commit")
    blocking_rate = terminating["blocking"].blocking_rate if terminating else 0.0
    report.headline = (
        "The blocking protocols hold locks for the whole horizon whenever a partition strikes, "
        "while the termination protocol terminates every site "
        f"(blocking rate {blocking_rate:.0%}) at the cost of a bounded extra wait."
    )
    return report
