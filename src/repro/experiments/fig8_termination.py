"""FIG8 / THM9 -- the termination protocol on the modified 3PC (Fig. 8).

Theorem 9 states that the termination protocol makes the three-phase commit
protocol resilient to optimistic multisite simple network partitioning.  The
experiment sweeps partition onset times, every simple split, and vote
patterns, for several system sizes, and checks that every run terminates
every site with a single, consistent outcome.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.atomicity import AtomicityReport
from repro.engine import AtomicitySink
from repro.experiments.harness import ExperimentReport, stream_protocol_sinks


def run_termination_sweep(
    n_sites: int = 3,
    *,
    times: Optional[Iterable[float]] = None,
    heal_after: Optional[float] = None,
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
    protocol: str = "terminating-three-phase-commit",
    workers: Optional[int] = None,
) -> AtomicityReport:
    """Sweep the terminating protocol and summarize atomicity / blocking.

    The sweep streams into an :class:`~repro.engine.sink.AtomicitySink`, so
    arbitrarily large site counts / onset grids aggregate in constant
    memory.
    """
    sink = AtomicitySink(protocol=protocol)
    stream_protocol_sinks(
        protocol,
        sinks=sink,
        n_sites=n_sites,
        times=times,
        heal_after=heal_after,
        no_voter_options=no_voter_options,
        workers=workers,
    )
    return sink.report


def run_fig8_termination(
    site_counts: Sequence[int] = (3, 4, 5), *, workers: Optional[int] = None
) -> ExperimentReport:
    """The Theorem 9 resilience table across system sizes."""
    report = ExperimentReport(
        experiment="FIG8/THM9",
        title="Termination protocol resilience (modified 3PC, Section 5)",
    )
    summaries = {}
    for n_sites in site_counts:
        times = None if n_sites <= 3 else [0.5 * i for i in range(1, 17)]
        summary = run_termination_sweep(
            n_sites,
            times=times,
            no_voter_options=(frozenset(), frozenset({2})),
            workers=workers,
        )
        summaries[n_sites] = summary
        report.table.append(
            {
                "sites": n_sites,
                "partition scenarios": summary.total_runs,
                "atomicity violations": summary.atomicity_violations,
                "blocked runs": summary.blocked_runs,
                "all-commit runs": summary.committed_runs,
                "all-abort runs": summary.aborted_runs,
                "resilient": "yes" if summary.resilient else "NO",
            }
        )
    report.details = {"summaries": summaries}
    total = sum(s.total_runs for s in summaries.values())
    report.headline = (
        f"Across {total} partition scenarios ({', '.join(str(n) for n in site_counts)} sites) the "
        "termination protocol produced zero atomicity violations and zero blocked sites -- "
        "the Theorem 9 property."
    )
    return report
