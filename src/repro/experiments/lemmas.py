"""LEMMA12 / LEMMA3 -- the structural lemmas of Sections 3-4.

* Lemma 1 / Lemma 2: structural conditions computed from concurrency sets --
  2PC violates both (at the slave wait state), 3PC / quorum / four-phase
  satisfy them.
* Lemma 3: timeout + undeliverable transitions alone cannot make a protocol
  resilient; demonstrated empirically by sweeping the Rule (a)/(b)
  augmentations of 2PC and 3PC and counting violations.
"""

from __future__ import annotations

from repro.analysis.atomicity import summarize_runs
from repro.core.catalog import (
    four_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.lemmas import check_nonblocking_conditions
from repro.experiments.harness import ExperimentReport, sweep_protocol


def run_lemma_checks(n_sites: int = 3) -> ExperimentReport:
    """Lemma 1 / Lemma 2 verdicts for the catalogued protocols."""
    report = ExperimentReport(
        experiment="LEMMA12",
        title=f"Lemma 1 / Lemma 2 structural checks ({n_sites} sites)",
    )
    reports = {}
    for spec_factory in (two_phase_commit, three_phase_commit, quorum_commit, four_phase_commit):
        spec = spec_factory()
        verdict = check_nonblocking_conditions(spec, n_sites)
        reports[spec.name] = verdict
        report.table.append(
            {
                "protocol": spec.name,
                "lemma 1 (no commit+abort concurrent)": "holds"
                if verdict.satisfies_lemma1
                else f"violated at {verdict.lemma1_violations}",
                "lemma 2 (no commit concurrent with noncommittable)": "holds"
                if verdict.satisfies_lemma2
                else f"violated at {verdict.lemma2_violations}",
                "candidate for resilience": "yes" if verdict.satisfies_both else "no",
            }
        )
    report.details = {"reports": reports}
    report.headline = (
        "2PC fails both lemmas at the slave wait state; 3PC (and the quorum and "
        "four-phase skeletons) satisfy them, so only they can possibly be made resilient."
    )
    return report


def run_lemma3_sweep(n_sites: int = 3) -> ExperimentReport:
    """Lemma 3 demonstrated empirically: Rule (a)/(b) alone is never enough."""
    report = ExperimentReport(
        experiment="LEMMA3",
        title="Lemma 3: timeout/undeliverable transitions alone are insufficient",
    )
    summaries = {}
    for protocol in ("extended-two-phase-commit", "naive-extended-three-phase-commit"):
        summary = summarize_runs(
            sweep_protocol(
                protocol,
                n_sites=n_sites,
                no_voter_options=(frozenset(), frozenset({n_sites})),
            )
        )
        summaries[protocol] = summary
        report.table.append(
            {
                "augmented protocol": protocol,
                "scenarios": summary.total_runs,
                "atomicity violations": summary.atomicity_violations,
                "resilient": "yes" if summary.resilient else "NO",
            }
        )
    terminating = summarize_runs(
        sweep_protocol(
            "terminating-three-phase-commit",
            n_sites=n_sites,
            no_voter_options=(frozenset(), frozenset({n_sites})),
        )
    )
    summaries["terminating-three-phase-commit"] = terminating
    report.table.append(
        {
            "augmented protocol": "3PC + termination protocol (Section 5)",
            "scenarios": terminating.total_runs,
            "atomicity violations": terminating.atomicity_violations,
            "resilient": "yes" if terminating.resilient else "NO",
        }
    )
    report.details = {"summaries": summaries}
    report.headline = (
        "Every timeout/undeliverable-only augmentation violates atomicity somewhere, while "
        "the termination protocol does not -- a separate termination protocol is necessary "
        "(Lemma 3) and sufficient (Theorem 9)."
    )
    return report
