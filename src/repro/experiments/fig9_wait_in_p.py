"""FIG9 -- a slave's wait after timing out in state ``p``.

Fig. 9 bounds by ``5T`` the time a slave that timed out in ``p`` (and sent
its probe) may have to wait for an UD(probe), a commit or an abort -- in
every case except (3.2.2.2), which is unbounded and is handled by the
Section 6 transient rule.  The experiment sweeps permanent-partition
scenarios (where case 3.2.2.2 cannot arise) and measures the worst wait.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.analysis.timing import TimingMeasurement
from repro.core.termination import TerminationTimers
from repro.experiments.harness import ExperimentReport, stream_protocol


def run_fig9_wait_in_p(
    n_sites: int = 4,
    *,
    times: Optional[Iterable[float]] = None,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Measure the worst wait between a timeout in ``p`` and the decision."""
    report = ExperimentReport(
        experiment="FIG9",
        title="Slave wait after timing out in p (bound 5T for permanent partitions)",
    )
    timers = TerminationTimers(max_delay=1.0)
    worst = 0.0
    samples = 0
    blocked = 0
    # The non-transient protocol isolates the Fig. 9 bound itself: the 5T
    # fallback timer of Section 6 must never be what terminates a slave under
    # a *permanent* partition.
    summaries = stream_protocol(
        "terminating-three-phase-commit-no-transient",
        n_sites=n_sites,
        times=list(times) if times is not None else None,
        workers=workers,
        measures=("wait_in_p",),
    )
    for summary in summaries:
        unit = summary.max_delay
        for wait in summary.metrics["wait_in_p"].values():
            if math.isinf(wait):
                blocked += 1
                continue
            samples += 1
            worst = max(worst, wait / unit)
    measurement = TimingMeasurement(
        name="timeout in p -> UD(probe)/commit/abort",
        measured=worst,
        bound=timers.wait_in_p,
        unit=1.0,
    )
    report.table.append(
        {
            "sites": n_sites,
            "slaves that timed out in p": samples,
            "never decided": blocked,
            "worst wait (xT)": f"{measurement.measured_in_t:.2f}",
            "paper bound (xT)": "5.0",
            "within bound": "yes" if measurement.within_bound else "NO",
        }
    )
    report.details = {"measurement": measurement, "samples": samples, "blocked": blocked}
    report.headline = (
        f"Under permanent simple partitions every slave that timed out in p heard an UD(probe), "
        f"commit or abort within {measurement.measured_in_t:.2f}T (bound 5T, Fig. 9); only the "
        "transient case 3.2.2.2 can exceed it."
    )
    return report
