"""SEC3 -- the two counterexamples of Section 3.

Observation 1: the extended two-phase commit protocol is not resilient once
more than two sites participate.  Observation 2: the three-phase commit
protocol augmented with Rule (a)/(b) timeouts is not resilient either -- one
slave times out in ``w`` and aborts while another times out in ``p`` and
commits.  Both are demonstrated by exhaustive sweeps plus a pinned witness
scenario.
"""

from __future__ import annotations

from repro.analysis.atomicity import summarize_runs
from repro.experiments.harness import ExperimentReport, run_once, sweep_protocol
from repro.protocols.runner import ScenarioSpec
from repro.sim.partition import PartitionSchedule


def run_sec3_counterexamples(n_sites: int = 3) -> ExperimentReport:
    """Sweep both broken protocols and pin one witness scenario each."""
    report = ExperimentReport(
        experiment="SEC3",
        title="Section 3 counterexamples (multisite partitions break Rule a/b)",
    )

    extended = summarize_runs(
        sweep_protocol(
            "extended-two-phase-commit",
            n_sites=n_sites,
            no_voter_options=(frozenset(), frozenset({n_sites})),
        )
    )
    naive = summarize_runs(
        sweep_protocol("naive-extended-three-phase-commit", n_sites=n_sites)
    )

    # The paper's own witness for observation 2: the partition separates the
    # slave that has not yet received its prepare message; it times out in w
    # and aborts while a prepared slave times out in p and commits.
    naive_witness = run_once(
        "naive-extended-three-phase-commit",
        ScenarioSpec(n_sites=3, partition=PartitionSchedule.simple(2.25, [1, 2], [3])),
    )
    extended_witness = run_once(
        "extended-two-phase-commit",
        ScenarioSpec(
            n_sites=3,
            partition=PartitionSchedule.simple(2.25, [1, 3], [2]),
            no_voters=frozenset({3}),
        ),
    )

    report.table = [
        {
            "protocol": "extended 2PC (Rules a/b)",
            "sites": n_sites,
            "scenarios": extended.total_runs,
            "atomicity violations": extended.atomicity_violations,
            "blocked runs": extended.blocked_runs,
            "resilient": "yes" if extended.resilient else "NO",
        },
        {
            "protocol": "3PC + Rules a/b (naive)",
            "sites": n_sites,
            "scenarios": naive.total_runs,
            "atomicity violations": naive.atomicity_violations,
            "blocked runs": naive.blocked_runs,
            "resilient": "yes" if naive.resilient else "NO",
        },
    ]
    report.details = {
        "extended_summary": extended,
        "naive_summary": naive,
        "naive_witness": naive_witness,
        "extended_witness": extended_witness,
    }
    report.headline = (
        "Both timeout/undeliverable-only extensions violate atomicity under multisite "
        f"simple partitioning (witnesses: {naive_witness.summary()} ; "
        f"{extended_witness.summary()})."
    )
    return report
