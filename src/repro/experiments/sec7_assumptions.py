"""SEC7 -- why the assumptions of Section 5.1 are necessary.

Section 7 justifies the "no concurrent site failures" assumption with two
scenarios in which a crash during a partition breaks atomicity:

1. the only slave in ``G2`` that received a prepare message fails before it
   can relay the commit, so the rest of ``G2`` aborts while ``G1`` commits;
2. none of the ``G2`` slaves received a prepare, and a ``G1`` slave fails
   after receiving its prepare but before probing, so the master's
   ``N - UD = PB`` test misfires and ``G1`` commits while ``G2`` aborts.

The experiment reproduces both and also shows that the pessimistic
(message-loss) model defeats the protocol, matching the impossibility
theorem quoted in Section 2.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentReport, run_once
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import CrashSchedule
from repro.sim.latency import PerLinkLatency
from repro.sim.partition import PartitionSchedule


def run_sec7_assumptions() -> ExperimentReport:
    """Reproduce the two Section 7 counterexamples and the loss-model failure."""
    report = ExperimentReport(
        experiment="SEC7",
        title="Section 7: concurrent site failures (or message loss) defeat the protocol",
    )

    # Scenario 1: the prepared G2 slave (site 3) crashes before relaying.
    scenario1 = run_once(
        "terminating-three-phase-commit",
        ScenarioSpec(
            n_sites=4,
            latency=PerLinkLatency(1.0, {(1, 4): 1.5}),
            partition=PartitionSchedule.simple(3.7, [1, 2], [3, 4]),
            crashes=CrashSchedule.single(3, at=4.0),
        ),
    )

    # Scenario 2: no G2 slave received a prepare; the G1 slave (site 2)
    # crashes after its prepare arrived but before it can probe, so the
    # master never hears the probe it is counting on and commits G1.
    scenario2 = run_once(
        "terminating-three-phase-commit",
        ScenarioSpec(
            n_sites=3,
            partition=PartitionSchedule.simple(2.5, [1, 2], [3]),
            crashes=CrashSchedule.single(2, at=4.0),
        ),
    )

    # The pessimistic model: messages are lost instead of returned.
    lost_messages = run_once(
        "terminating-three-phase-commit",
        ScenarioSpec(
            n_sites=3,
            partition=PartitionSchedule.simple(2.5, [1, 2], [3]),
            model="pessimistic",
        ),
    )

    def verdict(result):
        if result.atomicity_violated:
            return "atomicity violated"
        if result.blocked:
            return "blocked"
        return "consistent"

    report.table = [
        {
            "scenario": "prepared G2 slave crashes before relaying (Section 7, case 1)",
            "outcome": scenario1.summary(),
            "verdict": verdict(scenario1),
        },
        {
            "scenario": "G1 slave crashes before probing (Section 7, case 2)",
            "outcome": scenario2.summary(),
            "verdict": verdict(scenario2),
        },
        {
            "scenario": "pessimistic model (messages lost, not returned)",
            "outcome": lost_messages.summary(),
            "verdict": verdict(lost_messages),
        },
    ]
    report.details = {
        "scenario1": scenario1,
        "scenario2": scenario2,
        "lost_messages": lost_messages,
    }
    report.headline = (
        "Concurrent site failures (either quoted scenario) or lost messages break atomicity "
        "or liveness, which is exactly why assumptions 1, 3 and 4 of Section 5.1 are required."
    )
    return report
