"""Experiment harness: one module per paper figure / result.

Every experiment exposes a ``run_*`` function returning a report object with
``rows()`` (tabular data) and ``format()`` (printable text); the benchmarks
in ``benchmarks/`` time these functions and print their tables, and the
examples reuse them.  See DESIGN.md for the experiment index.
"""

from repro.experiments.harness import ExperimentReport, sweep_protocol
from repro.experiments.fig1_two_phase import run_fig1_two_phase
from repro.experiments.fig2_extended_two_phase import run_fig2_extended_two_phase
from repro.experiments.fig3_three_phase import run_fig3_three_phase
from repro.experiments.fig5_timeouts import run_fig5_timeouts
from repro.experiments.fig6_probe_window import run_fig6_probe_window
from repro.experiments.fig7_wait_in_w import run_fig7_wait_in_w
from repro.experiments.fig8_termination import run_fig8_termination, run_termination_sweep
from repro.experiments.fig9_wait_in_p import run_fig9_wait_in_p
from repro.experiments.lemmas import run_lemma_checks, run_lemma3_sweep
from repro.experiments.modelcheck import (
    run_differential_validation,
    run_modelcheck_verification,
)
from repro.experiments.sec3_counterexamples import run_sec3_counterexamples
from repro.experiments.sec6_cases import run_sec6_cases
from repro.experiments.sec7_assumptions import run_sec7_assumptions
from repro.experiments.thm10_generalization import run_thm10_generalization
from repro.experiments.availability import run_availability_comparison
from repro.experiments.faults import run_fault_survival
from repro.experiments.message_overhead import run_message_overhead
from repro.experiments.multiple_partitioning import run_multiple_partitioning
from repro.experiments.throughput import (
    run_retry_recovery_comparison,
    run_throughput_comparison,
)

__all__ = [
    "ExperimentReport",
    "run_availability_comparison",
    "run_differential_validation",
    "run_fault_survival",
    "run_fig1_two_phase",
    "run_fig2_extended_two_phase",
    "run_fig3_three_phase",
    "run_fig5_timeouts",
    "run_fig6_probe_window",
    "run_fig7_wait_in_w",
    "run_fig8_termination",
    "run_fig9_wait_in_p",
    "run_lemma_checks",
    "run_lemma3_sweep",
    "run_message_overhead",
    "run_modelcheck_verification",
    "run_multiple_partitioning",
    "run_retry_recovery_comparison",
    "run_sec3_counterexamples",
    "run_sec6_cases",
    "run_sec7_assumptions",
    "run_termination_sweep",
    "run_thm10_generalization",
    "run_throughput_comparison",
    "sweep_protocol",
]
