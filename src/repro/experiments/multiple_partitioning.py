"""MULTI -- multiple partitioning is beyond any commit protocol.

Section 2 quotes Skeen & Stonebraker's theorem: "There exists no protocol
resilient to a multiple network partitioning" (more than two groups), which
is why the paper restricts itself to *simple* partitioning.  The experiment
splits the sites into three groups at various times and shows that even the
termination protocol then blocks or mis-terminates in some scenario --
i.e. the restriction is not an artefact of this implementation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.atomicity import summarize_runs
from repro.experiments.harness import ExperimentReport
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.latency import PerLinkLatency
from repro.sim.partition import PartitionSchedule, PartitionSpec


def three_way_splits(n_sites: int) -> list[PartitionSpec]:
    """Three-group splits of ``1..n`` with the master alone or accompanied."""
    if n_sites < 3:
        raise ValueError("multiple partitioning needs at least three sites")
    sites = list(range(1, n_sites + 1))
    slaves = sites[1:]
    splits = []
    # master alone, the slaves split into two halves
    half = max(1, len(slaves) // 2)
    if slaves[half:]:
        splits.append(PartitionSpec.of([1], slaves[:half], slaves[half:]))
    # master with the first slave, the rest split off in two further groups
    if len(slaves) >= 3:
        splits.append(PartitionSpec.of([1, slaves[0]], [slaves[1]], slaves[2:]))
    else:
        splits.append(PartitionSpec.of([1], [slaves[0]], [slaves[1]]))
    # every site isolated, when the system is small enough to enumerate
    if n_sites <= 4:
        splits.append(PartitionSpec.of(*[[site] for site in sites]))
    return splits


def run_multiple_partitioning(
    n_sites: int = 4,
    *,
    protocols: Iterable[str] = ("terminating-three-phase-commit", "terminating-quorum-commit"),
    times: Optional[Iterable[float]] = None,
) -> ExperimentReport:
    """Sweep three-way partitions and show the resilience property fails."""
    report = ExperimentReport(
        experiment="MULTI",
        title="Multiple (three-way) partitioning defeats every protocol",
    )
    times = list(times) if times is not None else [0.5 * i for i in range(1, 13)]
    # With every link taking exactly T the prepares all arrive together, so a
    # three-way cut cannot leave one remote group prepared and another not --
    # which is precisely the situation the impossibility argument needs.  A
    # slightly slower link to the last site provides it.
    skewed_latency = PerLinkLatency(1.0, {(1, n_sites): 1.5})
    skewed_times = [3.7, 3.9, 4.1]
    details = {}
    for protocol in protocols:
        results = []
        for at in times:
            for spec in three_way_splits(n_sites):
                schedule = PartitionSchedule.permanent(at, spec)
                results.append(
                    run_scenario(
                        create_protocol(protocol),
                        ScenarioSpec(n_sites=n_sites, partition=schedule),
                    )
                )
        for at in skewed_times:
            for spec in three_way_splits(n_sites):
                schedule = PartitionSchedule.permanent(at, spec)
                results.append(
                    run_scenario(
                        create_protocol(protocol),
                        ScenarioSpec(
                            n_sites=n_sites, partition=schedule, latency=skewed_latency
                        ),
                    )
                )
        summary = summarize_runs(results, protocol=protocol)
        details[protocol] = summary
        report.table.append(
            {
                "protocol": protocol,
                "three-way scenarios": summary.total_runs,
                "atomicity violations": summary.atomicity_violations,
                "blocked runs": summary.blocked_runs,
                "resilient": "yes" if summary.resilient else "NO",
            }
        )
    report.details = details
    report.headline = (
        "Under three-way partitions the termination protocol (like every commit protocol -- "
        "the impossibility theorem quoted in Section 2) fails to stay simultaneously atomic "
        "and non-blocking, which is why the paper restricts itself to simple partitioning."
    )
    return report
