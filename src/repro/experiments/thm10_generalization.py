"""THM10 -- generalizing the termination protocol to other commit protocols.

Theorem 10: any master/slave commit protocol satisfying the Lemma 1/2
conditions (plus the environment assumptions) can be made resilient by the
same construction, substituting for ``prepare`` the message ``m`` that moves
a slave from a noncommittable to a committable state.

The experiment (a) evaluates the five conditions for each catalogued
protocol and reports the automatically derived promotion message, and (b)
runs the construction applied to the quorum-commit skeleton through the same
partition sweep used for Theorem 9.
"""

from __future__ import annotations

from repro.analysis.atomicity import summarize_runs
from repro.core.catalog import (
    four_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.generalize import check_theorem10_conditions
from repro.experiments.harness import ExperimentReport, sweep_protocol


def run_thm10_generalization(n_sites: int = 3) -> ExperimentReport:
    """Check Theorem 10's conditions and exercise the quorum construction."""
    report = ExperimentReport(
        experiment="THM10",
        title="Theorem 10: generic termination construction",
    )
    condition_reports = {}
    for factory in (two_phase_commit, three_phase_commit, quorum_commit, four_phase_commit):
        spec = factory()
        verdict = check_theorem10_conditions(spec, n_sites)
        condition_reports[spec.name] = verdict
        report.table.append(
            {
                "protocol": spec.name,
                "lemma 1/2 conditions": "hold" if verdict.structural_conditions_hold else "violated",
                "promotion message m": verdict.plan.promotion_message if verdict.plan else "-",
                "construction applies": "yes" if verdict.applicable else "no",
            }
        )

    quorum_sweep = summarize_runs(
        sweep_protocol(
            "terminating-quorum-commit",
            n_sites=n_sites,
            no_voter_options=(frozenset(), frozenset({2})),
        )
    )
    report.table.append(
        {
            "protocol": "terminating-quorum-commit (construction applied)",
            "lemma 1/2 conditions": "hold",
            "promotion message m": "pre-commit",
            "construction applies": (
                f"resilient over {quorum_sweep.total_runs} scenarios "
                f"({quorum_sweep.atomicity_violations} violations, {quorum_sweep.blocked_runs} blocked)"
            ),
        }
    )
    report.details = {"conditions": condition_reports, "quorum_sweep": quorum_sweep}
    report.headline = (
        "The construction applies to every catalogued protocol that satisfies Lemmas 1-2 "
        "(3PC, quorum, four-phase) and, instantiated for the quorum skeleton with m = pre-commit, "
        "it is resilient over the full partition sweep; it does not apply to 2PC."
    )
    return report
