"""FIG2 -- the extended two-phase commit protocol (Fig. 2).

The figure is the 2PC automaton augmented with timeout and
undeliverable-message transitions derived from Rule (a) and Rule (b).  The
experiment (a) derives that augmentation mechanically from the concurrency
and sender sets and tabulates it, and (b) verifies by exhaustive sweep that
the extension is resilient for two participating sites -- the Skeen &
Stonebraker result the paper builds on.
"""

from __future__ import annotations

from repro.analysis.atomicity import summarize_runs
from repro.core.catalog import two_phase_commit
from repro.core.fsa import MASTER_ROLE, SLAVE_ROLE
from repro.core.rules import augment_with_rules
from repro.experiments.harness import ExperimentReport, sweep_protocol


def run_fig2_extended_two_phase() -> ExperimentReport:
    """Derive the Fig. 2 augmentation and check two-site resilience."""
    report = ExperimentReport(
        experiment="FIG2",
        title="Extended two-phase commit (Rule a/b augmentation, two sites)",
    )

    augmented = augment_with_rules(two_phase_commit(), 2)
    for role in (MASTER_ROLE, SLAVE_ROLE):
        automaton = augmented.spec.automaton(role)
        for state in sorted(automaton.states):
            timeout = augmented.timeout_target(role, state)
            undeliverable = augmented.undeliverable_target(role, state)
            if timeout is None and undeliverable is None:
                continue
            report.table.append(
                {
                    "local state": f"{role}:{state}",
                    "timeout ->": timeout.value if timeout else "-",
                    "undeliverable ->": undeliverable.value if undeliverable else "-",
                }
            )

    two_site = summarize_runs(
        sweep_protocol(
            "extended-two-phase-commit",
            n_sites=2,
            no_voter_options=(frozenset(), frozenset({2})),
        )
    )
    three_site = summarize_runs(
        sweep_protocol(
            "extended-two-phase-commit",
            n_sites=3,
            no_voter_options=(frozenset(), frozenset({3})),
        )
    )
    report.details = {
        "augmentation": augmented,
        "two_site": two_site,
        "three_site": three_site,
    }
    report.headline = (
        f"two sites: {two_site.atomicity_violations} violations / {two_site.blocked_runs} blocked "
        f"in {two_site.total_runs} partition scenarios (resilient, as proved in [7]); "
        f"three sites: {three_site.atomicity_violations} violations in {three_site.total_runs} "
        "scenarios (not resilient -- Section 3)."
    )
    return report
