"""FIG6 -- the master's probe-collection window.

Fig. 6 argues that ``5T`` after receiving an undeliverable prepare message
the master has received every probe it is ever going to receive, so closing
the window then is safe.  The experiment sweeps partition scenarios that
open the window and measures the longest gap between the window opening and
the last probe arriving.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.timing import TimingMeasurement
from repro.core.termination import TerminationTimers
from repro.experiments.harness import ExperimentReport, stream_protocol


def run_fig6_probe_window(
    n_sites: int = 4,
    *,
    times: Optional[Iterable[float]] = None,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Measure the worst observed UD(prepare) -> last probe gap."""
    report = ExperimentReport(
        experiment="FIG6",
        title="Master probe-collection window after an undeliverable prepare (bound 5T)",
    )
    timers = TerminationTimers(max_delay=1.0)
    summaries = stream_protocol(
        "terminating-three-phase-commit",
        n_sites=n_sites,
        times=list(times) if times is not None else None,
        workers=workers,
        measures=("probe_window",),
    )
    worst = 0.0
    windows = 0
    probes_seen = 0
    for summary in summaries:
        probe = summary.metrics["probe_window"]
        if probe["window_open"]:
            windows += 1
        gap = probe["gap"]
        if gap is None:
            continue
        probes_seen += 1
        worst = max(worst, gap)
    measurement = TimingMeasurement(
        name="UD(prepare) -> last probe at master",
        measured=worst,
        bound=timers.probe_window,
        unit=1.0,
    )
    report.table.append(
        {
            "sites": n_sites,
            "scenarios with a probe window": windows,
            "windows that received probes": probes_seen,
            "worst gap (xT)": f"{measurement.measured_in_t:.2f}",
            "paper bound (xT)": "5.0",
            "within bound": "yes" if measurement.within_bound else "NO",
        }
    )
    report.details = {"measurement": measurement, "windows": windows}
    report.headline = (
        f"The master never received a probe later than {measurement.measured_in_t:.2f}T after its "
        "first undeliverable prepare -- within the 5T window the protocol waits (Fig. 6)."
    )
    return report
