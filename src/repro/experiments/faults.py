"""FAULTS -- which protocol classes survive which fault classes.

Every guarantee in the paper rests on assumption 1 (Section 5.1): a message
between two connected, live sites is always delivered.  This experiment
drops that assumption one fault class at a time -- message loss,
duplication, bounded reordering, send-omission, and a Byzantine
(equivocating) participant -- and sweeps every registry protocol through
seeded single-transaction scenarios under each class, twice: once on the
raw faulty network and once with the at-least-once retransmission layer
(:class:`~repro.sim.failures.RetransmitPolicy`) switched on.  The
Byzantine row puts the misbehaviour where it bites: the *master*
equivocates its decision broadcast, telling different slaves different
things.

The table is the survival matrix.  Under raw loss the blocking protocols
(2PC, 3PC, quorum) lose *termination* -- a dropped vote or decision leaves
sites waiting forever -- while the timeout-driven variants decide
unilaterally and lose *atomicity* on the schedules where the drop splits
them.  With retransmission every delivery-fault row recovers: the layer
restores assumption 1, so the paper's guarantees return.  Duplication is
absorbed by the FSAs (a repeated command re-triggers the transition it
already took), reordering only stretches decision latency, and the
Byzantine row does NOT recover -- retransmission repairs *delivery*, not
*honesty*, which is exactly the boundary of assumption 1.

The exhaustive checker proves the same story at ``n = 3``:
:data:`~repro.core.reachability.LOSSY` explores one adversarial silent
loss at every reachable point, and
:data:`~repro.core.reachability.LOSSY_RETRANSMIT` contributes no loss
edges at all (its graph is the failure-free one by construction -- the
model-level statement that retransmission restores assumption 1).  The
report's details carry the checker verdicts and the directional agreement
check against the simulator rows: every simulator-observed guarantee loss
must be predicted by the checker, and no retransmit row may contradict the
checker's all-hold verdict.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.analysis.atomicity import AtomicityReport, summarize_runs
from repro.engine import SweepTask
from repro.experiments.harness import ExperimentReport, get_engine
from repro.protocols.registry import available_protocols
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import (
    SEND_OMISSION,
    ByzantineSpec,
    FaultPlan,
    LinkFault,
    OmissionFault,
    RetransmitPolicy,
)

#: Per-message loss probability of the loss row.  High enough that every
#: seed's run is hit several times, low enough that the retransmission
#: layer's residual failure probability (``p ** (attempts + 1)``) stays
#: negligible across the whole grid.
LOSS_PROBABILITY = 0.35

#: Seeds per (protocol, fault class, retransmission) cell; each seed draws
#: an independent fault realization (the plan seed feeds the fault RNG).
DEFAULT_SEEDS: tuple[int, ...] = tuple(range(8))


def fault_class_plans(seed: int = 0) -> tuple[tuple[str, FaultPlan], ...]:
    """The swept fault classes as ``(label, plan)`` pairs, raw (no retransmit).

    One representative plan per class, all seeded by ``seed`` so every
    scenario seed draws an independent realization: uniform loss,
    duplication and bounded reordering on every link, a send-omitting slave
    and an equivocating slave.
    """
    return (
        ("loss", FaultPlan(links=(LinkFault(loss=LOSS_PROBABILITY),), seed=seed)),
        ("duplicate", FaultPlan(links=(LinkFault(duplicate=0.5),), seed=seed)),
        (
            "reorder",
            FaultPlan(
                links=(LinkFault(reorder=0.5, reorder_window=1.5),), seed=seed
            ),
        ),
        (
            "send-omission",
            FaultPlan(
                omissions=(
                    OmissionFault(site=3, kind=SEND_OMISSION, probability=0.5),
                ),
                seed=seed,
            ),
        ),
        # The master equivocates: it is the decision broadcaster, so telling
        # different slaves different things is the classic atomicity attack
        # (an equivocating slave cannot split the honest sites at n=3).
        ("byzantine", FaultPlan(byzantine=(ByzantineSpec(site=1),), seed=seed)),
    )


def fault_survival_tasks(
    protocols: Sequence[str],
    *,
    n_sites: int = 3,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[list[SweepTask], list[tuple[str, str, bool, int, int]]]:
    """The FAULTS grid with its ``(protocol, fault, retransmit)`` spans.

    Enumeration is protocol > fault class > retransmit-off/on > seed
    (outermost to innermost), so results, spans and cache keys are stable.
    Returns ``(tasks, spans)`` where each span is
    ``(protocol, fault_label, retransmit, start, end)`` into the task list.
    """
    tasks: list[SweepTask] = []
    spans: list[tuple[str, str, bool, int, int]] = []
    for protocol in protocols:
        for index, (label, _) in enumerate(fault_class_plans()):
            for retransmit in (False, True):
                start = len(tasks)
                for seed in seeds:
                    plan = fault_class_plans(seed)[index][1]
                    if retransmit:
                        plan = replace(plan, retransmit=RetransmitPolicy())
                    tasks.append(
                        SweepTask(
                            protocol=protocol,
                            spec=ScenarioSpec(
                                n_sites=n_sites, seed=seed, faults=plan
                            ),
                        )
                    )
                spans.append((protocol, label, retransmit, start, len(tasks)))
    return tasks, spans


def _verdict(report: AtomicityReport) -> str:
    """One cell of the survival matrix: what broke, if anything."""
    problems = []
    if report.atomicity_violations:
        problems.append(
            f"violates atomicity ({report.atomicity_violations}/{report.total_runs})"
        )
    if report.blocked_runs:
        problems.append(f"blocks ({report.blocked_runs}/{report.total_runs})")
    return " + ".join(problems) if problems else "survives"


def _checker_verdicts(n_sites: int) -> dict[tuple[str, str], frozenset[str]]:
    """Exhaustive-checker verdicts per (checkable protocol, loss envelope).

    Maps to the set of *violated* invariant names; empty set = all hold.
    """
    from repro.core.reachability import LOSSY, LOSSY_RETRANSMIT
    from repro.modelcheck.checker import INVARIANTS, check_model
    from repro.modelcheck.protocols import checkable_protocols
    from repro.modelcheck.spec import ModelCheckSpec

    verdicts: dict[tuple[str, str], frozenset[str]] = {}
    for protocol in checkable_protocols():
        for fault in (LOSSY, LOSSY_RETRANSMIT):
            summary = check_model(
                protocol, ModelCheckSpec(n_sites=n_sites, fault=fault)
            ).to_summary(spec_hash="faults-experiment")
            verdicts[(protocol, fault)] = frozenset(
                name for name in INVARIANTS if not summary.invariant_holds(name)
            )
    return verdicts


def _checker_disagreements(
    survival: dict[tuple[str, str, bool], AtomicityReport],
    checker: dict[tuple[str, str], frozenset[str]],
) -> list[str]:
    """Directional agreement of the simulator's loss rows with the checker.

    The checker over-approximates the simulator (it explores *every*
    schedule, the simulator samples a few), so agreement is directional:
    a violation the simulator *observed* must be *predicted* by the
    checker, and under the lossy-retransmit envelope -- where the checker
    proves every invariant -- the simulator must observe nothing.
    """
    from repro.core.reachability import LOSSY, LOSSY_RETRANSMIT
    from repro.modelcheck.checker import BLOCKING_INVARIANT, SAFETY_INVARIANTS

    disagreements: list[str] = []
    checked = {protocol for protocol, _ in checker}
    for protocol in sorted(checked):
        raw = survival[(protocol, "loss", False)]
        violated = checker[(protocol, LOSSY)]
        if raw.atomicity_violations and not (violated & set(SAFETY_INVARIANTS)):
            disagreements.append(
                f"{protocol}: simulator saw atomicity violations under loss "
                f"but the checker proves every safety invariant"
            )
        if raw.blocked_runs and BLOCKING_INVARIANT not in violated:
            disagreements.append(
                f"{protocol}: simulator saw blocking under loss but the "
                f"checker proves {BLOCKING_INVARIANT}"
            )
        rtx = survival[(protocol, "loss", True)]
        if checker[(protocol, LOSSY_RETRANSMIT)]:
            disagreements.append(
                f"{protocol}: the lossy-retransmit envelope must prove every "
                f"invariant (its graph is failure-free by construction)"
            )
        elif not rtx.resilient:
            disagreements.append(
                f"{protocol}: checker proves loss+retransmit safe but the "
                f"simulator still saw {_verdict(rtx)}"
            )
    return disagreements


def run_fault_survival(
    n_sites: int = 3,
    *,
    protocols: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """FAULTS -- the fault-class survival matrix, cross-checked exhaustively.

    Sweeps every protocol through every fault class with and without the
    retransmission layer, summarizes each cell as a survival verdict, and
    cross-validates the loss rows against the exhaustive checker at the
    same site count.
    """
    protocol_names = list(protocols) if protocols is not None else list(
        available_protocols()
    )
    tasks, spans = fault_survival_tasks(
        protocol_names, n_sites=n_sites, seeds=seeds
    )
    summaries = get_engine(workers).run(tasks).summaries

    survival: dict[tuple[str, str, bool], AtomicityReport] = {}
    for protocol, label, retransmit, start, end in spans:
        survival[(protocol, label, retransmit)] = summarize_runs(
            summaries[start:end], protocol=protocol
        )

    rows = []
    fault_labels = [label for label, _ in fault_class_plans()]
    for protocol in protocol_names:
        for label in fault_labels:
            rows.append(
                {
                    "protocol": protocol,
                    "fault": label,
                    "without retransmit": _verdict(survival[(protocol, label, False)]),
                    "with retransmit": _verdict(survival[(protocol, label, True)]),
                }
            )

    checker = _checker_verdicts(n_sites)
    disagreements = _checker_disagreements(survival, checker)

    lost_raw = sorted(
        p for p in protocol_names if not survival[(p, "loss", False)].resilient
    )
    recovered = sorted(
        p for p in lost_raw if survival[(p, "loss", True)].resilient
    )
    byzantine_broken = sorted(
        p
        for p in protocol_names
        if not survival[(p, "byzantine", False)].resilient
        and not survival[(p, "byzantine", True)].resilient
    )

    report = ExperimentReport(
        experiment="FAULTS",
        title=(
            f"fault-class survival matrix ({n_sites} sites, "
            f"{len(seeds)} seeds/cell, loss p={LOSS_PROBABILITY})"
        ),
        table=rows,
    )
    report.details = {
        "survival": survival,
        "checker_verdicts": checker,
        "checker_disagreements": disagreements,
        "lost_under_raw_loss": lost_raw,
        "recovered_with_retransmit": recovered,
        "byzantine_broken_despite_retransmit": byzantine_broken,
    }
    report.headline = (
        f"Raw message loss costs {len(lost_raw)}/{len(protocol_names)} "
        f"protocols a guarantee (blocking protocols block, timeout-driven "
        f"variants violate atomicity); retransmission restores assumption 1 "
        f"and {len(recovered)}/{len(lost_raw)} of them recover, while the "
        f"equivocating master still breaks {len(byzantine_broken)}/"
        f"{len(protocol_names)} -- delivery, not honesty, is what the layer "
        f"repairs.  Exhaustive check at n={n_sites}: {len(disagreements)} "
        f"disagreement(s) with the simulator."
    )
    return report
