"""FIG1 -- the two-phase commit protocol (Fig. 1).

Reproduces the behaviour the figure describes: the failure-free commit and
abort paths, the message cost, and the blocking that motivates the rest of
the paper (a master that goes silent while the slaves are in their wait
state leaves them blocked, holding locks).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentReport, run_once
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import CrashSchedule
from repro.sim.partition import PartitionSchedule


def run_fig1_two_phase(n_sites: int = 3) -> ExperimentReport:
    """Run the Fig. 1 scenarios and tabulate their outcomes."""
    report = ExperimentReport(
        experiment="FIG1",
        title=f"Two-phase commit protocol, {n_sites} sites",
    )

    commit_run = run_once("two-phase-commit", ScenarioSpec(n_sites=n_sites))
    report.table.append(
        {
            "scenario": "failure-free, all vote yes",
            "outcome": "commit" if commit_run.all_committed else "mixed",
            "blocked sites": len(commit_run.blocked_sites),
            "latency (xT)": f"{commit_run.max_decision_latency():.1f}",
            "messages": commit_run.messages_sent,
        }
    )

    abort_run = run_once(
        "two-phase-commit", ScenarioSpec(n_sites=n_sites, no_voters=frozenset({n_sites}))
    )
    report.table.append(
        {
            "scenario": "one slave votes no",
            "outcome": "abort" if abort_run.all_aborted else "mixed",
            "blocked sites": len(abort_run.blocked_sites),
            "latency (xT)": f"{abort_run.max_decision_latency():.1f}",
            "messages": abort_run.messages_sent,
        }
    )

    crash_run = run_once(
        "two-phase-commit",
        ScenarioSpec(n_sites=n_sites, crashes=CrashSchedule.single(1, at=1.5)),
    )
    report.table.append(
        {
            "scenario": "master silent after votes",
            "outcome": "blocked",
            "blocked sites": len(crash_run.blocked_sites),
            "latency (xT)": "-",
            "messages": crash_run.messages_sent,
        }
    )

    partition_run = run_once(
        "two-phase-commit",
        ScenarioSpec(n_sites=n_sites, partition=PartitionSchedule.simple(1.5, [1], list(range(2, n_sites + 1)))),
    )
    report.table.append(
        {
            "scenario": "partition while slaves wait",
            "outcome": "blocked" if partition_run.blocked else "terminated",
            "blocked sites": len(partition_run.blocked_sites),
            "latency (xT)": "-",
            "messages": partition_run.messages_sent,
        }
    )

    report.details = {
        "commit_run": commit_run,
        "abort_run": abort_run,
        "crash_run": crash_run,
        "partition_run": partition_run,
    }
    report.headline = (
        "2PC commits in 3T with 3(n-1) messages when nothing fails, but a silent master "
        f"or a partition leaves {len(crash_run.blocked_sites)} slave(s) blocked with locks held."
    )
    return report
