"""SEC6 -- the transient-partitioning case table of Section 6.

Section 6 enumerates the ways a simple partition can interleave with the
protocol and derives, per case, the longest time a slave that timed out in
``p`` may wait before it hears an UD(probe), a commit or an abort:

====================  =====
case                  bound
====================  =====
2.1                   T
2.2.1                 4T
2.2.2                 5T
3.1                   T
3.2.2.1               4T
3.2.2.2               unbounded (fixed by the 5T commit rule)
====================  =====

For every case the experiment (a) builds a concrete scenario, (b) verifies
via the trace that it really is that case, (c) measures the worst wait with
the Section 5 protocol (no transient rule), and (d) shows that the Section 6
rule terminates case 3.2.2.2 consistently.  The paper's bounds are derived
from worst-case timing diagrams for the slaves in ``G2``; our measured
values also include the slaves in ``G1`` waiting for the master's probe
window, so individual cases may exceed the paper's entry while staying
within the protocol's own 5T + window budget -- the qualitative shape
(every case bounded except 3.2.2.2) is what the tests assert.
"""

from __future__ import annotations

import math

from repro.analysis.cases import build_case_scenario, classify_run
from repro.analysis.timing import measure_wait_after_timeout_in_p
from repro.core.transient import PartitionCase, worst_case_wait
from repro.experiments.harness import ExperimentReport
from repro.protocols.registry import create_protocol
from repro.protocols.runner import run_scenario


def run_sec6_cases() -> ExperimentReport:
    """Reproduce the Section 6 case table."""
    report = ExperimentReport(
        experiment="SEC6",
        title="Section 6: transient partitioning case analysis",
    )
    details: dict[str, dict] = {}
    for case in PartitionCase:
        scenario = build_case_scenario(case)
        unit = scenario.spec.effective_latency().upper_bound

        plain = run_scenario(
            create_protocol("terminating-three-phase-commit-no-transient"), scenario.spec
        )
        transient = run_scenario(
            create_protocol("terminating-three-phase-commit"), scenario.spec
        )
        classified = classify_run(plain)
        waits = measure_wait_after_timeout_in_p(plain)
        finite_waits = [w / unit for w in waits.values() if not math.isinf(w)]
        has_unbounded = any(math.isinf(w) for w in waits.values())
        measured = math.inf if has_unbounded else (max(finite_waits) if finite_waits else 0.0)
        bound = worst_case_wait(case, 1.0)

        details[case.label] = {
            "scenario": scenario,
            "classified": classified,
            "plain": plain,
            "transient": transient,
            "measured": measured,
        }
        report.table.append(
            {
                "case": case.label,
                "construction": scenario.description,
                "classified as": classified.label,
                "paper bound (xT)": "inf" if math.isinf(bound) else f"{bound:.0f}",
                "measured wait (xT)": "inf" if math.isinf(measured) else f"{measured:.2f}",
                "Section 5 protocol": "blocks" if plain.blocked else (
                    "violates" if plain.atomicity_violated else "consistent"
                ),
                "with Section 6 rule": "blocks" if transient.blocked else (
                    "violates" if transient.atomicity_violated else "consistent"
                ),
            }
        )
    report.details = details
    report.headline = (
        "Every case terminates consistently except 3.2.2.2, which blocks the isolated slave "
        "under the Section 5 protocol and is terminated (with a commit, matching every other "
        "site) by the Section 6 rule of waiting 5T after the probe."
    )
    return report
