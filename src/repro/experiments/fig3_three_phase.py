"""FIG3 -- the three-phase commit protocol (Fig. 3).

Reproduces the figure's protocol behaviour: the failure-free commit path
(five message delays instead of three), the structural Lemma 1/2 compliance
that 2PC lacks, and the fact that -- without a termination protocol -- 3PC
still blocks when the network partitions.
"""

from __future__ import annotations

from repro.analysis.atomicity import summarize_runs
from repro.core.catalog import three_phase_commit, two_phase_commit
from repro.core.lemmas import check_nonblocking_conditions
from repro.experiments.harness import ExperimentReport, run_once, sweep_protocol
from repro.protocols.runner import ScenarioSpec


def run_fig3_three_phase(n_sites: int = 3) -> ExperimentReport:
    """Run the Fig. 3 scenarios and the structural comparison against 2PC."""
    report = ExperimentReport(
        experiment="FIG3",
        title=f"Three-phase commit protocol, {n_sites} sites",
    )

    commit_run = run_once("three-phase-commit", ScenarioSpec(n_sites=n_sites))
    abort_run = run_once(
        "three-phase-commit", ScenarioSpec(n_sites=n_sites, no_voters=frozenset({2}))
    )
    two_phase_run = run_once("two-phase-commit", ScenarioSpec(n_sites=n_sites))
    partition_results = sweep_protocol("three-phase-commit", n_sites=n_sites)
    partition_summary = summarize_runs(partition_results)

    lemma_2pc = check_nonblocking_conditions(two_phase_commit(), n_sites)
    lemma_3pc = check_nonblocking_conditions(three_phase_commit(), n_sites)

    report.table = [
        {
            "scenario": "failure-free commit",
            "outcome": "commit" if commit_run.all_committed else "mixed",
            "latency (xT)": f"{commit_run.max_decision_latency():.1f}",
            "messages": commit_run.messages_sent,
        },
        {
            "scenario": "one slave votes no",
            "outcome": "abort" if abort_run.all_aborted else "mixed",
            "latency (xT)": f"{abort_run.max_decision_latency():.1f}",
            "messages": abort_run.messages_sent,
        },
        {
            "scenario": f"partition sweep ({partition_summary.total_runs} runs)",
            "outcome": f"{partition_summary.blocked_runs} blocked, "
            f"{partition_summary.atomicity_violations} violations",
            "latency (xT)": "-",
            "messages": "-",
        },
    ]
    report.details = {
        "commit_run": commit_run,
        "abort_run": abort_run,
        "two_phase_run": two_phase_run,
        "partition_summary": partition_summary,
        "lemma_2pc": lemma_2pc,
        "lemma_3pc": lemma_3pc,
    }
    report.headline = (
        f"3PC commits in {commit_run.max_decision_latency():.0f}T "
        f"(vs {two_phase_run.max_decision_latency():.0f}T for 2PC) and satisfies the Lemma 1/2 "
        "conditions, but still blocks under partitions without a termination protocol "
        f"({partition_summary.blocked_runs}/{partition_summary.total_runs} scenarios blocked)."
    )
    return report
