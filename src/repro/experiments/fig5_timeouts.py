"""FIG5 -- the commit protocol's own timeout intervals.

Fig. 5 derives the timeout intervals of the (three-phase) commit protocol:
the master needs to wait at most ``2T`` for the responses to a command and a
slave at most ``3T`` for the master's next command.  The experiment measures
both quantities over failure-free runs for several system sizes and latency
models and compares them against the bounds (the measured values must never
exceed them; with every message taking exactly ``T`` they are tight).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.timing import TimingMeasurement
from repro.core.termination import TerminationTimers
from repro.engine import SweepTask
from repro.experiments.harness import ExperimentReport, get_engine
from repro.protocols.runner import ScenarioSpec
from repro.sim.latency import ConstantLatency, UniformLatency


def run_fig5_timeouts(
    site_counts: Sequence[int] = (3, 4, 6), *, workers: Optional[int] = None
) -> ExperimentReport:
    """Measure the Fig. 5 round-trip and inter-command waits."""
    report = ExperimentReport(
        experiment="FIG5",
        title="Commit-protocol timeout intervals (master 2T, slave 3T)",
    )
    cases = [
        (n_sites, label, latency)
        for n_sites in site_counts
        for label, latency in (
            ("constant T", ConstantLatency(1.0)),
            ("uniform [0.25T, T]", UniformLatency(0.25, 1.0)),
        )
    ]
    tasks = [
        SweepTask(
            protocol="terminating-three-phase-commit",
            spec=ScenarioSpec(n_sites=n_sites, latency=latency, seed=n_sites),
        )
        for n_sites, _, latency in cases
    ]
    # Streamed execution: summaries arrive in task order, one at a time, so
    # they pair with `cases` without materializing a result list.
    sweep = get_engine(workers).stream(tasks, measures=("timeouts",))
    measurements: list[TimingMeasurement] = []
    for (n_sites, label, latency), summary in zip(cases, sweep):
        timers = TerminationTimers(max_delay=latency.upper_bound)
        waits = summary.metrics["timeouts"]
        master = TimingMeasurement(
            name=f"master round trip (n={n_sites}, {label})",
            measured=waits["master_round_trip"] or 0.0,
            bound=timers.master_vote_timeout,
            unit=latency.upper_bound,
        )
        slave = TimingMeasurement(
            name=f"slave wait for next command (n={n_sites}, {label})",
            measured=waits["slave_wait"] or 0.0,
            bound=timers.slave_timeout,
            unit=latency.upper_bound,
        )
        measurements.extend([master, slave])
        report.table.append(
            {
                "sites": n_sites,
                "latency model": label,
                "master round trip (xT)": f"{master.measured_in_t:.2f}",
                "master bound (xT)": "2.0",
                "slave wait (xT)": f"{slave.measured_in_t:.2f}",
                "slave bound (xT)": "3.0",
                "within bounds": "yes" if master.within_bound and slave.within_bound else "NO",
            }
        )
    report.details = {"measurements": measurements}
    worst_master = max(m.measured_in_t for m in measurements if m.name.startswith("master"))
    worst_slave = max(m.measured_in_t for m in measurements if m.name.startswith("slave"))
    report.headline = (
        f"Worst measured master round trip {worst_master:.2f}T (bound 2T) and slave wait "
        f"{worst_slave:.2f}T (bound 3T): the Fig. 5 timeout intervals are sufficient and tight "
        "when every message takes the maximum delay."
    )
    return report
