"""MSG -- message-overhead ablation.

Not a paper table, but a design-choice ablation called out in DESIGN.md: the
price of the extra phase and of the termination machinery in messages per
transaction, failure-free and under a partition.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentReport, run_once, sweep_protocol
from repro.protocols.runner import ScenarioSpec

DEFAULT_PROTOCOLS: tuple[str, ...] = (
    "two-phase-commit",
    "extended-two-phase-commit",
    "three-phase-commit",
    "terminating-three-phase-commit",
    "terminating-quorum-commit",
)


def run_message_overhead(
    n_sites: int = 4, *, protocols: Sequence[str] = DEFAULT_PROTOCOLS
) -> ExperimentReport:
    """Messages per transaction, failure-free and averaged over a partition sweep."""
    report = ExperimentReport(
        experiment="MSG",
        title=f"Message overhead per transaction ({n_sites} sites)",
    )
    details = {}
    for protocol in protocols:
        failure_free = run_once(protocol, ScenarioSpec(n_sites=n_sites))
        partitioned = sweep_protocol(
            protocol, n_sites=n_sites, times=[0.5, 1.5, 2.5, 3.5, 4.5]
        )
        mean_partitioned = sum(r.messages_sent for r in partitioned) / len(partitioned)
        mean_bounced = sum(r.messages_bounced for r in partitioned) / len(partitioned)
        details[protocol] = {
            "failure_free": failure_free,
            "partitioned_mean": mean_partitioned,
        }
        report.table.append(
            {
                "protocol": protocol,
                "messages (failure-free)": failure_free.messages_sent,
                "latency (failure-free, xT)": f"{failure_free.max_decision_latency():.0f}",
                "messages (partitioned, mean)": f"{mean_partitioned:.1f}",
                "bounced (partitioned, mean)": f"{mean_bounced:.1f}",
            }
        )
    report.details = details
    report.headline = (
        "The third phase costs one extra round of messages and 2T of latency; the termination "
        "protocol adds probe traffic only when a partition actually strikes."
    )
    return report
