"""TPUT / RETRY -- goodput under partitions on contended multi-transaction workloads.

Sections 1-2 argue that a blocked commit protocol is an *availability*
failure: the blocked transaction's locks render its data inaccessible to
every transaction behind it.  The AVAIL experiment quantifies that with
lock-hold times of a single transaction; this experiment measures it
directly.  Each scenario offers a stream of update transactions
(:class:`~repro.txn.runner.ThroughputSpec`) to one cluster, a partition
strikes mid-run and heals, and the per-protocol
:class:`~repro.txn.sink.ThroughputSink` aggregates goodput, abort rate
and lock-wait.  Blocking protocols (2PC, 3PC, quorum) never release the
locks of the transactions caught by the partition, so their goodput
collapses and stays collapsed after the heal; the terminating protocols
abort those transactions within bounded time and recover.

The **RETRY** panel (:func:`run_retry_recovery_comparison`) replays the
same argument under open-loop conditions: Poisson arrivals, hot-spot key
skew, lock-wait timeouts, a bounded retry budget, and a crash/recovery
schedule on top of the transient partition.  Retries *amplify* the gap --
a blocking protocol's stranded locks turn every retry into another
timeout victim (a retry storm burning the budget for nothing), while the
terminating protocols' partition write-offs re-enter after the heal and
commit (`committed_after_retry`), draining the backlog the outage built
up.

The sweep axes are partition onset x offered load x read fraction per
protocol; every grid point executes through the sweep engine (workers,
result cache and streaming sinks all apply).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.engine import SweepTask
from repro.experiments.harness import ExperimentReport, get_engine
from repro.txn.sink import ThroughputSink
from repro.sim.failures import CrashSchedule, FaultPlan
from repro.sim.partition import PartitionSchedule
from repro.txn.deadlock import DeadlockPolicy
from repro.txn.retry import RetryPolicy
from repro.txn.runner import ThroughputSpec

#: Protocols with no timeout / undeliverable transitions: a partition leaves
#: them holding their locks for the rest of the run.
BLOCKING_PROTOCOLS: tuple[str, ...] = (
    "two-phase-commit",
    "three-phase-commit",
    "quorum-commit",
)

#: The paper's non-blocking three-phase variants (Theorem 9 / Theorem 10).
NONBLOCKING_PROTOCOLS: tuple[str, ...] = (
    "terminating-three-phase-commit",
    "terminating-quorum-commit",
)

DEFAULT_PROTOCOLS: tuple[str, ...] = BLOCKING_PROTOCOLS + NONBLOCKING_PROTOCOLS


def mid_run_partition(
    spec: ThroughputSpec, *, onset_fraction: float = 0.5, heal_after: Optional[float] = 8.0
) -> PartitionSchedule:
    """A simple partition cutting off the highest site mid-admission.

    ``onset_fraction`` places the onset within the admission span;
    ``heal_after`` heals that many time units later (``None`` = permanent).
    """
    span = spec.arrival_times()[-1] or spec.effective_latency().upper_bound
    onset = max(spec.effective_latency().upper_bound * 0.25, span * onset_fraction)
    g1 = list(range(1, spec.n_sites))
    g2 = [spec.n_sites]
    if not g1:  # single-site cluster: nothing to cut
        return PartitionSchedule.none()
    if heal_after is None:
        return PartitionSchedule.simple(onset, g1, g2)
    return PartitionSchedule.transient(onset, onset + heal_after, g1, g2)


def throughput_tasks(
    protocols: Sequence[str],
    *,
    n_sites: int = 3,
    n_transactions: int = 200,
    tx_rates: Sequence[float] = (1.0,),
    read_fractions: Sequence[float] = (0.2,),
    onset_fractions: Sequence[Optional[float]] = (0.5,),
    heal_after: Optional[float] = 8.0,
    operations_per_site: int = 1,
    n_keys: int = 8,
    op_delay: float = 0.05,
    arrival: str = "uniform",
    hotspot: float = 0.0,
    deadlock: Optional[DeadlockPolicy] = None,
    retry: Optional[RetryPolicy] = None,
    crashes: Optional[CrashSchedule] = None,
    faults: Optional[FaultPlan] = None,
    lock_transport: str = "direct",
    seeds: Sequence[int] = (0,),
) -> list[SweepTask]:
    """The TPUT grid: protocol x onset x offered load x read fraction x seed.

    An onset fraction of ``None`` yields a failure-free (no-partition)
    scenario.  ``arrival`` / ``hotspot`` / ``retry`` / ``crashes`` shape
    the open-loop variants (RETRY panel, ``repro throughput --arrival
    poisson --retries ... --crash-schedule ...``); ``faults`` /
    ``lock_transport`` thread the unified
    :class:`~repro.sim.failures.FaultPlan` and the lock-message transport
    through every grid point (``repro throughput --faults
    loss=0.3,retransmit=on``).  Enumeration order is protocol outermost,
    seed innermost (matching :class:`~repro.engine.grid.ScenarioGrid`
    conventions), so results and cache keys are stable across runs and
    worker counts.
    """
    tasks: list[SweepTask] = []
    for protocol in protocols:
        for onset_fraction in onset_fractions:
            for tx_rate in tx_rates:
                for read_fraction in read_fractions:
                    for seed in seeds:
                        spec = ThroughputSpec(
                            n_sites=n_sites,
                            n_transactions=n_transactions,
                            tx_rate=tx_rate,
                            arrival=arrival,
                            read_fraction=read_fraction,
                            operations_per_site=operations_per_site,
                            n_keys=n_keys,
                            hotspot=hotspot,
                            op_delay=op_delay,
                            deadlock=deadlock or DeadlockPolicy(),
                            retry=retry or RetryPolicy(),
                            crashes=crashes,
                            faults=faults,
                            lock_transport=lock_transport,
                            seed=seed,
                        )
                        if onset_fraction is None:
                            partition = None
                        else:
                            partition = mid_run_partition(
                                spec,
                                onset_fraction=onset_fraction,
                                heal_after=heal_after,
                            )
                        tasks.append(
                            SweepTask(
                                protocol=protocol,
                                spec=replace(spec, partition=partition),
                            )
                        )
    return tasks


def run_throughput_comparison(
    n_sites: int = 3,
    *,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    n_transactions: int = 200,
    tx_rates: Sequence[float] = (1.0,),
    read_fractions: Sequence[float] = (0.2,),
    onset_fractions: Sequence[float] = (0.5,),
    heal_after: Optional[float] = 8.0,
    seeds: Iterable[int] = (0,),
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Compare goodput under a mid-run partition across protocols.

    Returns a report whose ``details`` carry the raw
    :class:`~repro.txn.sink.ThroughputSink` totals plus the blocking /
    non-blocking goodput split the headline asserts.
    """
    tasks = throughput_tasks(
        list(protocols),
        n_sites=n_sites,
        n_transactions=n_transactions,
        tx_rates=tx_rates,
        read_fractions=read_fractions,
        onset_fractions=onset_fractions,
        heal_after=heal_after,
        seeds=list(seeds),
    )
    sink = ThroughputSink()
    get_engine(workers).run_streaming(tasks, sinks=sink)
    report = ExperimentReport(
        experiment="TPUT",
        title=(
            f"Goodput under a mid-run partition "
            f"({n_sites} sites, {n_transactions} transactions/scenario)"
        ),
        table=sink.rows(),
    )
    blocking = {p: sink.goodput(p) for p in protocols if p in BLOCKING_PROTOCOLS}
    nonblocking = {p: sink.goodput(p) for p in protocols if p in NONBLOCKING_PROTOCOLS}
    report.details = {
        "totals": sink.totals,
        "blocking_goodput": blocking,
        "nonblocking_goodput": nonblocking,
    }
    if blocking and nonblocking:
        report.headline = (
            f"Blocking protocols keep the partition's locks and collapse to "
            f"<= {max(blocking.values()):.3f} committed transactions per T, while the "
            f"non-blocking three-phase variants release them and sustain "
            f">= {min(nonblocking.values()):.3f}."
        )
    return report


def default_retry_crash_schedule(
    spec: ThroughputSpec, *, crash_fraction: float = 0.65, outage: float = 6.0
) -> CrashSchedule:
    """The RETRY panel's crash event: site 2 fails mid-run and recovers.

    The crash lands at ``crash_fraction`` of the *mean* admission span
    (``(n-1) * T / tx_rate`` -- analytic, so one schedule serves every
    seed of a Poisson sweep rather than tracking seed 0's realized
    draws) -- deliberately after the default partition has healed -- and
    the site recovers ``outage`` time units later, so the run exercises
    both failure modes (partition write-offs, then crash write-offs with
    WAL-replaying recovery) and the post-recovery re-admission of retried
    victims.
    """
    max_delay = spec.effective_latency().upper_bound
    span = (spec.n_transactions - 1) * max_delay / spec.tx_rate
    at = max(max_delay * 0.5, span * crash_fraction)
    site = min(2, spec.n_sites)
    return CrashSchedule.single(site, at, recover_at=at + outage)


def run_retry_recovery_comparison(
    n_sites: int = 3,
    *,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    n_transactions: int = 150,
    tx_rate: float = 2.0,
    hotspot: float = 1.0,
    n_keys: int = 6,
    max_attempts: int = 3,
    backoff: float = 1.0,
    wait_timeout: float = 4.0,
    onset_fraction: float = 0.35,
    heal_after: float = 8.0,
    crash: bool = True,
    seeds: Iterable[int] = (0,),
    workers: Optional[int] = None,
) -> ExperimentReport:
    """RETRY -- open-loop retries and crash/recovery amplify the TPUT gap.

    Poisson arrivals, hot-spot skew, lock-wait timeouts and a bounded
    retry budget on top of a transient partition plus (optionally) a
    crash/recovery schedule.  Blocking protocols turn every retry of a
    transaction queued behind stranded locks into another timeout victim
    -- a retry storm that exhausts the budget and grows the unserved
    backlog -- while the terminating protocols' write-offs re-enter after
    the heal and commit (``committed after retry``), draining theirs.
    """
    tasks = throughput_tasks(
        list(protocols),
        n_sites=n_sites,
        n_transactions=n_transactions,
        tx_rates=(tx_rate,),
        read_fractions=(0.2,),
        onset_fractions=(onset_fraction,),
        heal_after=heal_after,
        n_keys=n_keys,
        op_delay=0.1,
        arrival="poisson",
        hotspot=hotspot,
        deadlock=DeadlockPolicy(detect_cycles=True, wait_timeout=wait_timeout),
        retry=RetryPolicy(max_attempts=max_attempts, backoff=backoff),
        seeds=list(seeds),
    )
    if crash and tasks:
        # Derive the crash instant from a spec the grid actually runs, so
        # the timing can never drift from the executed parameters.
        schedule = default_retry_crash_schedule(tasks[0].spec)
        tasks = [
            SweepTask(protocol=task.protocol, spec=replace(task.spec, crashes=schedule))
            for task in tasks
        ]
    sink = ThroughputSink()
    get_engine(workers).run_streaming(tasks, sinks=sink)
    report = ExperimentReport(
        experiment="RETRY",
        title=(
            f"Open-loop retries + crash/recovery under a mid-run partition "
            f"({n_sites} sites, {n_transactions} Poisson arrivals/scenario, "
            f"budget {max_attempts} attempts)"
        ),
        table=sink.rows(),
    )
    committed = {p: sink.totals.get(p, {}).get("committed", 0) for p in protocols}
    after_retry = {
        p: sink.totals.get(p, {}).get("committed_after_retry", 0) for p in protocols
    }
    unserved = {
        p: sink.totals.get(p, {}).get("offered", 0) - committed[p] for p in protocols
    }
    report.details = {
        "totals": sink.totals,
        "committed": committed,
        "committed_after_retry": after_retry,
        "unserved_backlog": unserved,
    }
    blocking = [p for p in protocols if p in BLOCKING_PROTOCOLS]
    nonblocking = [p for p in protocols if p in NONBLOCKING_PROTOCOLS]
    if blocking and nonblocking:
        report.headline = (
            f"Retry storms leave the blocking protocols >= "
            f"{min(unserved[p] for p in blocking)} transactions of unserved "
            f"backlog (<= {max(after_retry[p] for p in blocking)} commits after "
            f"retry), while the terminating variants drain theirs post-heal: "
            f">= {min(after_retry[p] for p in nonblocking)} committed-after-retry "
            f"each and <= {max(unserved[p] for p in nonblocking)} unserved."
        )
    return report
