"""TPUT -- goodput under partitions on a contended multi-transaction workload.

Sections 1-2 argue that a blocked commit protocol is an *availability*
failure: the blocked transaction's locks render its data inaccessible to
every transaction behind it.  The AVAIL experiment quantifies that with
lock-hold times of a single transaction; this experiment measures it
directly.  Each scenario offers a stream of update transactions
(:class:`~repro.txn.runner.ThroughputSpec`) to one cluster, a partition
strikes mid-run and heals, and the per-protocol
:class:`~repro.txn.sink.ThroughputSink` aggregates goodput, abort rate
and lock-wait.  Blocking protocols (2PC, 3PC, quorum) never release the
locks of the transactions caught by the partition, so their goodput
collapses and stays collapsed after the heal; the terminating protocols
abort those transactions within bounded time and recover.

The sweep axes are partition onset x offered load x read fraction per
protocol; every grid point executes through the sweep engine (workers,
result cache and streaming sinks all apply).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.engine import SweepTask
from repro.experiments.harness import ExperimentReport, get_engine
from repro.txn.sink import ThroughputSink
from repro.sim.partition import PartitionSchedule
from repro.txn.deadlock import DeadlockPolicy
from repro.txn.runner import ThroughputSpec

#: Protocols with no timeout / undeliverable transitions: a partition leaves
#: them holding their locks for the rest of the run.
BLOCKING_PROTOCOLS: tuple[str, ...] = (
    "two-phase-commit",
    "three-phase-commit",
    "quorum-commit",
)

#: The paper's non-blocking three-phase variants (Theorem 9 / Theorem 10).
NONBLOCKING_PROTOCOLS: tuple[str, ...] = (
    "terminating-three-phase-commit",
    "terminating-quorum-commit",
)

DEFAULT_PROTOCOLS: tuple[str, ...] = BLOCKING_PROTOCOLS + NONBLOCKING_PROTOCOLS


def mid_run_partition(
    spec: ThroughputSpec, *, onset_fraction: float = 0.5, heal_after: Optional[float] = 8.0
) -> PartitionSchedule:
    """A simple partition cutting off the highest site mid-admission.

    ``onset_fraction`` places the onset within the admission span;
    ``heal_after`` heals that many time units later (``None`` = permanent).
    """
    span = spec.arrival_times()[-1] or spec.effective_latency().upper_bound
    onset = max(spec.effective_latency().upper_bound * 0.25, span * onset_fraction)
    g1 = list(range(1, spec.n_sites))
    g2 = [spec.n_sites]
    if not g1:  # single-site cluster: nothing to cut
        return PartitionSchedule.none()
    if heal_after is None:
        return PartitionSchedule.simple(onset, g1, g2)
    return PartitionSchedule.transient(onset, onset + heal_after, g1, g2)


def throughput_tasks(
    protocols: Sequence[str],
    *,
    n_sites: int = 3,
    n_transactions: int = 200,
    tx_rates: Sequence[float] = (1.0,),
    read_fractions: Sequence[float] = (0.2,),
    onset_fractions: Sequence[Optional[float]] = (0.5,),
    heal_after: Optional[float] = 8.0,
    operations_per_site: int = 1,
    n_keys: int = 8,
    op_delay: float = 0.05,
    deadlock: Optional[DeadlockPolicy] = None,
    seeds: Sequence[int] = (0,),
) -> list[SweepTask]:
    """The TPUT grid: protocol x onset x offered load x read fraction x seed.

    An onset fraction of ``None`` yields a failure-free (no-partition)
    scenario.  Enumeration order is protocol outermost, seed innermost
    (matching :class:`~repro.engine.grid.ScenarioGrid` conventions), so
    results and cache keys are stable across runs and worker counts.
    """
    tasks: list[SweepTask] = []
    for protocol in protocols:
        for onset_fraction in onset_fractions:
            for tx_rate in tx_rates:
                for read_fraction in read_fractions:
                    for seed in seeds:
                        spec = ThroughputSpec(
                            n_sites=n_sites,
                            n_transactions=n_transactions,
                            tx_rate=tx_rate,
                            read_fraction=read_fraction,
                            operations_per_site=operations_per_site,
                            n_keys=n_keys,
                            op_delay=op_delay,
                            deadlock=deadlock or DeadlockPolicy(),
                            seed=seed,
                        )
                        if onset_fraction is None:
                            partition = None
                        else:
                            partition = mid_run_partition(
                                spec,
                                onset_fraction=onset_fraction,
                                heal_after=heal_after,
                            )
                        tasks.append(
                            SweepTask(
                                protocol=protocol,
                                spec=replace(spec, partition=partition),
                            )
                        )
    return tasks


def run_throughput_comparison(
    n_sites: int = 3,
    *,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    n_transactions: int = 200,
    tx_rates: Sequence[float] = (1.0,),
    read_fractions: Sequence[float] = (0.2,),
    onset_fractions: Sequence[float] = (0.5,),
    heal_after: Optional[float] = 8.0,
    seeds: Iterable[int] = (0,),
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Compare goodput under a mid-run partition across protocols.

    Returns a report whose ``details`` carry the raw
    :class:`~repro.txn.sink.ThroughputSink` totals plus the blocking /
    non-blocking goodput split the headline asserts.
    """
    tasks = throughput_tasks(
        list(protocols),
        n_sites=n_sites,
        n_transactions=n_transactions,
        tx_rates=tx_rates,
        read_fractions=read_fractions,
        onset_fractions=onset_fractions,
        heal_after=heal_after,
        seeds=list(seeds),
    )
    sink = ThroughputSink()
    get_engine(workers).run_streaming(tasks, sinks=sink)
    report = ExperimentReport(
        experiment="TPUT",
        title=(
            f"Goodput under a mid-run partition "
            f"({n_sites} sites, {n_transactions} transactions/scenario)"
        ),
        table=sink.rows(),
    )
    blocking = {p: sink.goodput(p) for p in protocols if p in BLOCKING_PROTOCOLS}
    nonblocking = {p: sink.goodput(p) for p in protocols if p in NONBLOCKING_PROTOCOLS}
    report.details = {
        "totals": sink.totals,
        "blocking_goodput": blocking,
        "nonblocking_goodput": nonblocking,
    }
    if blocking and nonblocking:
        report.headline = (
            f"Blocking protocols keep the partition's locks and collapse to "
            f"<= {max(blocking.values()):.3f} committed transactions per T, while the "
            f"non-blocking three-phase variants release them and sustain "
            f">= {min(nonblocking.values()):.3f}."
        )
    return report
