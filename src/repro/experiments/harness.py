"""Shared machinery for the per-figure experiments.

All sweep traffic funnels through the grid builders here and executes on
the :class:`~repro.engine.SweepEngine` -- serially by default, across
worker processes when ``workers > 1`` (or when ``REPRO_SWEEP_WORKERS`` is
set).  The timing experiments (FIG5-FIG9) and the availability harness
consume their sweeps through the engine's *streaming* surface
(:func:`stream_protocol` / :func:`stream_protocol_sinks`): summaries are
folded one at a time, in task order, and never materialized into a list.
:func:`sweep_protocol` remains for callers that want the list.  Single
diagnostic runs (:func:`run_once`) still return the full
:class:`~repro.protocols.runner.TransactionRunResult` with its trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.engine import RunSummary, ScenarioGrid, StreamStats, SummarySink, SweepEngine
from repro.metrics.reporting import format_table
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, TransactionRunResult, run_scenario


@dataclass
class ExperimentReport:
    """A titled, tabular experiment result.

    Attributes:
        experiment: identifier from DESIGN.md's experiment index (e.g.
            ``"FIG8"``).
        title: human-readable description.
        table: list of dict rows (rendered by :meth:`format`).
        headline: one-sentence conclusion (what the paper claims / what we
            measured).
        details: free-form extra facts used by tests and EXPERIMENTS.md.
    """

    experiment: str
    title: str
    table: list[dict[str, Any]] = field(default_factory=list)
    headline: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    def rows(self) -> list[dict[str, Any]]:
        """The tabular data of the experiment."""
        return self.table

    def format(self) -> str:
        """Printable report (title, table, headline)."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.table:
            parts.append(format_table(self.table))
        if self.headline:
            parts.append(self.headline)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()


def default_workers() -> int:
    """Worker count used when a sweep does not specify one.

    Controlled by the ``REPRO_SWEEP_WORKERS`` environment variable
    (default 1, i.e. the deterministic in-process path).
    """
    try:
        return max(1, int(os.environ.get("REPRO_SWEEP_WORKERS", "1")))
    except ValueError:
        return 1


def get_engine(
    workers: Optional[int] = None, *, engine: Optional[SweepEngine] = None
) -> SweepEngine:
    """Resolve the engine for a sweep: explicit > worker count > env default."""
    if engine is not None:
        return engine
    return SweepEngine(workers=workers if workers is not None else default_workers())


def partition_grid(
    protocol_name: str,
    *,
    n_sites: int = 3,
    times: Optional[Iterable[float]] = None,
    heal_after: Optional[float] = None,
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
    horizon: Optional[float] = None,
) -> ScenarioGrid:
    """The standard simple-partition grid of one protocol (Theorem 9 axes)."""
    return ScenarioGrid.from_partition_sweep(
        protocol_name,
        n_sites,
        times=list(times) if times is not None else None,
        heal_after=heal_after,
        no_voter_options=no_voter_options,
        horizon=horizon,
    )


def sweep_protocol(
    protocol_name: str,
    *,
    workers: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
    measures: Sequence[str] = (),
    **grid_kwargs: Any,
) -> list[RunSummary]:
    """Run ``protocol_name`` over a grid of simple-partition scenarios.

    Materializes the summary list -- use :func:`stream_protocol` or
    :func:`stream_protocol_sinks` for sweeps that should not.
    """
    grid = partition_grid(protocol_name, **grid_kwargs)
    return get_engine(workers, engine=engine).run(grid, measures=measures).summaries


def stream_protocol(
    protocol_name: str,
    *,
    workers: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
    measures: Sequence[str] = (),
    stats: Optional[StreamStats] = None,
    **grid_kwargs: Any,
) -> Iterator[RunSummary]:
    """Stream ``protocol_name``'s partition sweep one summary at a time.

    Summaries arrive in task order and are dropped after each loop
    iteration, so the sweep runs in constant memory regardless of grid size.
    """
    grid = partition_grid(protocol_name, **grid_kwargs)
    return get_engine(workers, engine=engine).stream(grid, measures=measures, stats=stats)


def stream_protocol_sinks(
    protocol_name: str,
    *,
    sinks: Union[SummarySink, Sequence[SummarySink]],
    workers: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
    measures: Sequence[str] = (),
    **grid_kwargs: Any,
) -> StreamStats:
    """Stream ``protocol_name``'s partition sweep into aggregation sinks."""
    grid = partition_grid(protocol_name, **grid_kwargs)
    return get_engine(workers, engine=engine).run_streaming(
        grid, sinks=sinks, measures=measures
    )


def run_once(protocol_name: str, spec: Optional[ScenarioSpec] = None, **overrides: Any) -> TransactionRunResult:
    """Run a single scenario for ``protocol_name`` (full result, with trace)."""
    return run_scenario(create_protocol(protocol_name), spec, **overrides)
