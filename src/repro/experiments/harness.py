"""Shared machinery for the per-figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.analysis.scenarios import partition_sweep
from repro.metrics.reporting import format_table
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, TransactionRunResult, run_scenario


@dataclass
class ExperimentReport:
    """A titled, tabular experiment result.

    Attributes:
        experiment: identifier from DESIGN.md's experiment index (e.g.
            ``"FIG8"``).
        title: human-readable description.
        table: list of dict rows (rendered by :meth:`format`).
        headline: one-sentence conclusion (what the paper claims / what we
            measured).
        details: free-form extra facts used by tests and EXPERIMENTS.md.
    """

    experiment: str
    title: str
    table: list[dict[str, Any]] = field(default_factory=list)
    headline: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    def rows(self) -> list[dict[str, Any]]:
        """The tabular data of the experiment."""
        return self.table

    def format(self) -> str:
        """Printable report (title, table, headline)."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.table:
            parts.append(format_table(self.table))
        if self.headline:
            parts.append(self.headline)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()


def sweep_protocol(
    protocol_name: str,
    *,
    n_sites: int = 3,
    times: Optional[Iterable[float]] = None,
    heal_after: Optional[float] = None,
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
    horizon: Optional[float] = None,
) -> list[TransactionRunResult]:
    """Run ``protocol_name`` over a grid of simple-partition scenarios."""
    specs = partition_sweep(
        n_sites,
        times=times,
        heal_after=heal_after,
        no_voter_options=no_voter_options,
        horizon=horizon,
    )
    return [run_scenario(create_protocol(protocol_name), spec) for spec in specs]


def run_once(protocol_name: str, spec: Optional[ScenarioSpec] = None, **overrides: Any) -> TransactionRunResult:
    """Run a single scenario for ``protocol_name``."""
    return run_scenario(create_protocol(protocol_name), spec, **overrides)
