"""MODELCHECK / DIFF -- exhaustive verification and differential validation.

``run_modelcheck_verification`` is the machine-checked restatement of the
paper's correctness results: the explorer enumerates *every* reachable
global state of each checkable protocol under each fault envelope and
checks the Section 2 invariants, instead of sampling timed schedules.  The
blocking of 2PC/3PC under a coordinator crash, and both Section 3
counterexamples (extended 2PC and the naive Rule a/b 3PC extension beyond
two sites), fall out as invariant verdicts with minimal traces.

``run_differential_validation`` runs the checker and the event-driven
simulator on the same sampled configurations and asserts their verdicts
agree (see :mod:`repro.modelcheck.differential` for the directional
agreement relation) -- each implementation cross-validates the other.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.reachability import FAILURE_FREE, FAULT_ENVELOPES
from repro.engine.grid import SweepTask
from repro.experiments.harness import ExperimentReport, get_engine
from repro.modelcheck.checker import check_model
from repro.modelcheck.differential import cross_validate, sample_configs
from repro.modelcheck.protocols import checkable_protocols
from repro.modelcheck.sink import ModelCheckSink
from repro.modelcheck.spec import ModelCheckSpec

#: Envelope order of the verification grid (benign first).
DEFAULT_FAULTS: tuple[str, ...] = FAULT_ENVELOPES

#: The two invariants the paper's Theorem 1 / Section 2 arguments turn on.
HEADLINE_INVARIANTS = ("same-decision", "no-commit-after-abort")


def modelcheck_tasks(
    protocols: Sequence[str],
    *,
    n_sites: int = 3,
    faults: Sequence[str] = DEFAULT_FAULTS,
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
    max_states: int = 200_000,
    max_depth: Optional[int] = None,
) -> list[SweepTask]:
    """The model-checking grid: protocol x fault envelope x vote pattern.

    Shared by ``repro modelcheck``, ``repro shard --kind modelcheck`` and
    the MODELCHECK experiment, so sharded runs cover exactly the grid a
    single-machine run would (the merge-identity contract).
    """
    tasks: list[SweepTask] = []
    for protocol in protocols:
        for fault in faults:
            for no_voters in no_voter_options:
                spec = ModelCheckSpec(
                    n_sites=n_sites,
                    fault=fault,
                    no_voters=frozenset(no_voters) or None,
                    max_states=max_states,
                    max_depth=max_depth,
                )
                tasks.append(SweepTask(protocol=protocol, spec=spec))
    return tasks


def run_modelcheck_verification(n_sites: int = 3) -> ExperimentReport:
    """Exhaustively model-check every checkable protocol, every envelope."""
    report = ExperimentReport(
        experiment="MODELCHECK",
        title=(
            f"exhaustive model checking at n={n_sites} "
            "(all interleavings, machine-checked invariants)"
        ),
    )
    tasks = modelcheck_tasks(checkable_protocols(), n_sites=n_sites)
    summaries = get_engine().run(tasks).summaries

    sink = ModelCheckSink()
    for index, summary in enumerate(summaries):
        sink.accept(index, summary)
    report.table = sink.rows()

    by_protocol: dict[str, list] = {}
    for summary in summaries:
        by_protocol.setdefault(summary.protocol, []).append(summary)
    verified = sorted(
        protocol
        for protocol, group in by_protocol.items()
        if all(
            s.invariant_holds(name)
            for s in group
            for name in HEADLINE_INVARIANTS
        )
    )
    violated = sorted(set(by_protocol) - set(verified))
    states = sum(s.states_explored for s in summaries)
    report.details = {
        "summaries": summaries,
        "verified_protocols": verified,
        "violated_protocols": violated,
        "states_explored": states,
    }
    report.headline = (
        f"Explored {states} global states: "
        f"{', '.join(verified)} satisfy {' and '.join(HEADLINE_INVARIANTS)} "
        f"under every fault envelope, while the Section 3 extensions "
        f"({', '.join(violated)}) are refuted by minimal counterexample "
        f"traces."
    )
    return report


def run_differential_validation(
    count: int = 60, seed: int = 0
) -> ExperimentReport:
    """Cross-validate the checker against the simulator on sampled configs."""
    report = ExperimentReport(
        experiment="DIFF",
        title=(
            f"differential validation: checker vs simulator on {count} "
            f"sampled configurations (seed {seed})"
        ),
    )
    checkers: dict = {}
    rows: dict[tuple[str, str], dict] = {}
    sim_runs = 0
    failures: list[str] = []
    for config in sample_configs(count, seed=seed):
        key = (config.protocol, config.n_sites, config.fault, config.no_voters)
        if key not in checkers:
            checkers[key] = check_model(config.protocol, config.modelcheck_spec())
        result = cross_validate(config, checker=checkers[key])
        sim_runs += result.sim_runs
        row = rows.setdefault(
            (config.protocol, config.fault),
            {
                "protocol": config.protocol,
                "fault": config.fault,
                "configs": 0,
                "sim runs": 0,
                "checker verdicts": set(),
                "disagreements": 0,
            },
        )
        row["configs"] += 1
        row["sim runs"] += result.sim_runs
        row["checker verdicts"].add(
            checkers[key].to_summary(spec_hash="differential").verdict
        )
        row["disagreements"] += len(result.disagreements)
        if not result.agreed:
            failures.append(result.format_failures())

    report.table = [rows[key] for key in sorted(rows)]
    for row in report.table:
        row["checker verdicts"] = "/".join(sorted(row["checker verdicts"]))
    disagreements = sum(row["disagreements"] for row in report.table)
    report.details = {
        "configs": count,
        "unique_configs": len(checkers),
        "sim_runs": sim_runs,
        "disagreements": disagreements,
        "failures": failures,
    }
    report.headline = (
        f"{count} configurations ({len(checkers)} unique) -> {sim_runs} "
        f"simulator runs cross-checked against exhaustive exploration: "
        f"{disagreements} disagreement(s)."
    )
    return report
