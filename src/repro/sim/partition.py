"""Network partition specifications and schedules.

Terminology follows the paper:

* **simple partitioning** -- the sites split into exactly two groups with no
  communication between them (Fig. 4).  The group containing the master of a
  transaction is called ``G1`` and the other ``G2``; the cut between them is
  the *boundary* ``B``.
* **multiple partitioning** -- more than two groups (the paper proves no
  protocol can be resilient to this, and we use it only for negative tests).
* **transient partitioning** -- the network heals before all affected
  transactions have terminated (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence


class PartitionError(ValueError):
    """Raised for malformed partition specifications."""


@dataclass(frozen=True)
class PartitionSpec:
    """An assignment of sites to disjoint connectivity groups."""

    groups: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise PartitionError("a partition needs at least one group")
        seen: set[int] = set()
        index: dict[int, frozenset[int]] = {}
        for group in self.groups:
            if not group:
                raise PartitionError("empty partition group")
            overlap = seen & group
            if overlap:
                raise PartitionError(f"sites {sorted(overlap)} appear in two groups")
            seen.update(group)
            for site in group:
                index[site] = group
        # Site -> group index: the network asks separated() for every send
        # and delivery, so group membership must not be a linear scan.  Not a
        # dataclass field (object.__setattr__ sidesteps frozen), so equality,
        # hashing and spec-hash canonicalization see only `groups`.
        object.__setattr__(self, "_group_index", index)

    @classmethod
    def of(cls, *groups: Iterable[int]) -> "PartitionSpec":
        """Build a spec from iterables of site ids."""
        return cls(tuple(frozenset(group) for group in groups))

    @classmethod
    def simple(cls, group_a: Iterable[int], group_b: Iterable[int]) -> "PartitionSpec":
        """A two-group (simple) partition."""
        spec = cls.of(group_a, group_b)
        if not spec.is_simple:
            raise PartitionError("simple partition requires exactly two groups")
        return spec

    @property
    def sites(self) -> frozenset[int]:
        """All sites named by the spec."""
        return frozenset(site for group in self.groups for site in group)

    @property
    def is_simple(self) -> bool:
        """True when the spec has exactly two groups."""
        return len(self.groups) == 2

    @property
    def is_multiple(self) -> bool:
        """True when the spec has more than two groups (multiple partitioning)."""
        return len(self.groups) > 2

    def group_of(self, site: int) -> Optional[frozenset[int]]:
        """Group containing ``site`` or ``None`` if the site is not named."""
        return self._group_index.get(site)

    def separated(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` cannot exchange messages under this spec.

        Sites not named by the spec are treated as belonging to the first
        group; in practice callers always name every site.
        """
        index = self._group_index
        group_a = index.get(a) or self.groups[0]
        group_b = index.get(b) or self.groups[0]
        return group_a is not group_b

    def master_partition(self, master: int) -> frozenset[int]:
        """The paper's ``G1``: the group containing ``master``."""
        group = self.group_of(master)
        if group is None:
            raise PartitionError(f"master {master} is not part of this partition spec")
        return group

    def remote_partition(self, master: int) -> frozenset[int]:
        """The paper's ``G2``: the union of groups not containing ``master``."""
        g1 = self.master_partition(master)
        return frozenset(site for site in self.sites if site not in g1)

    def __str__(self) -> str:
        groups = " | ".join("{" + ",".join(map(str, sorted(g))) + "}" for g in self.groups)
        return f"Partition[{groups}]"


@dataclass(frozen=True)
class PartitionEvent:
    """Either the onset of a partition or a heal, at a point in time."""

    time: float
    spec: Optional[PartitionSpec]  # None means the network heals

    @property
    def is_heal(self) -> bool:
        """True when this event restores full connectivity."""
        return self.spec is None


@dataclass
class PartitionSchedule:
    """A time-ordered list of partition / heal events."""

    events: list[PartitionEvent] = field(default_factory=list)

    @classmethod
    def none(cls) -> "PartitionSchedule":
        """A schedule with no partitions at all (failure-free runs)."""
        return cls([])

    @classmethod
    def permanent(cls, at: float, spec: PartitionSpec) -> "PartitionSchedule":
        """Partition at ``at`` and never heal (Section 5's assumption 5)."""
        return cls([PartitionEvent(at, spec)])

    @classmethod
    def simple(
        cls, at: float, group_a: Iterable[int], group_b: Iterable[int]
    ) -> "PartitionSchedule":
        """A permanent simple partition splitting ``group_a`` from ``group_b``."""
        return cls.permanent(at, PartitionSpec.simple(group_a, group_b))

    @classmethod
    def transient(
        cls,
        at: float,
        heal_at: float,
        group_a: Iterable[int],
        group_b: Iterable[int],
    ) -> "PartitionSchedule":
        """A simple partition at ``at`` that heals at ``heal_at`` (Section 6)."""
        if heal_at <= at:
            raise PartitionError(f"heal time {heal_at} must follow partition time {at}")
        return cls(
            [
                PartitionEvent(at, PartitionSpec.simple(group_a, group_b)),
                PartitionEvent(heal_at, None),
            ]
        )

    def add(self, event: PartitionEvent) -> "PartitionSchedule":
        """Append an event, keeping the list time-ordered."""
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)
        return self

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.time))

    def __len__(self) -> int:
        return len(self.events)


class PartitionManager:
    """Tracks the live connectivity relation between sites.

    The :class:`~repro.sim.network.Network` consults :meth:`separated` for
    every send and delivery, and registers listeners so in-flight messages can
    be bounced when a partition cuts their path (the optimistic model's
    "outstanding messages ... are returned to the senders").
    """

    def __init__(self) -> None:
        self._current: Optional[PartitionSpec] = None
        self._listeners: list[Callable[[Optional[PartitionSpec]], None]] = []
        self._history: list[tuple[float, Optional[PartitionSpec]]] = []

    @property
    def current(self) -> Optional[PartitionSpec]:
        """The partition in force right now, or ``None`` if fully connected."""
        return self._current

    @property
    def partitioned(self) -> bool:
        """True when some pair of sites is currently separated."""
        return self._current is not None and len(self._current.groups) > 1

    @property
    def history(self) -> Sequence[tuple[float, Optional[PartitionSpec]]]:
        """Chronological ``(time, spec-or-None)`` transitions applied so far."""
        return tuple(self._history)

    def subscribe(self, listener: Callable[[Optional[PartitionSpec]], None]) -> None:
        """Register a callback invoked after every connectivity change."""
        self._listeners.append(listener)

    def apply(self, spec: Optional[PartitionSpec], *, at: float = 0.0) -> None:
        """Install ``spec`` (or heal, when ``spec`` is ``None``)."""
        self._current = spec
        self._history.append((at, spec))
        for listener in self._listeners:
            listener(spec)

    def heal(self, *, at: float = 0.0) -> None:
        """Restore full connectivity."""
        self.apply(None, at=at)

    def separated(self, a: int, b: int) -> bool:
        """True when sites ``a`` and ``b`` cannot currently communicate."""
        if a == b:
            return False
        if self._current is None:
            return False
        return self._current.separated(a, b)
