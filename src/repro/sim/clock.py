"""Simulated clock.

The clock is owned by the :class:`~repro.sim.kernel.Simulator` and only ever
advances; components read it through a shared reference so that traces,
metrics and protocol roles all agree on "now".
"""

from __future__ import annotations


class Clock:
    """A monotonically non-decreasing simulated clock.

    Time is a ``float`` in arbitrary units.  Throughout this repository the
    unit is ``T``, the longest end-to-end network propagation delay, so that
    measured bounds can be compared directly with the paper's ``2T`` / ``3T``
    / ``5T`` / ``6T`` figures.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Advance the clock to ``when``.

        Raises :class:`ValueError` if ``when`` lies in the past; the simulator
        never schedules events before the current time, so a violation here
        indicates a bug in event ordering.
        """
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"
