"""Site failure injection.

The paper assumes (Section 5.1, assumptions 3-4) that site failures never
coincide with network partitioning and that masters never fail; Section 7
justifies this by exhibiting two scenarios where a concurrent failure breaks
atomicity.  The failure injector exists to reproduce exactly those negative
scenarios (experiment SEC7) and to exercise the recovery path of the database
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.events import EventKind
from repro.sim.kernel import Simulator
from repro.sim.node import Node


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``site`` at ``time``; recover at ``recover_at`` unless ``None``."""

    time: float
    site: int
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.time:
            raise ValueError(
                f"recovery time {self.recover_at} must follow crash time {self.time}"
            )


@dataclass
class CrashSchedule:
    """A collection of crash events applied to a run."""

    events: list[CrashEvent] = field(default_factory=list)

    @classmethod
    def none(cls) -> "CrashSchedule":
        """No crashes (the paper's default operating assumption)."""
        return cls([])

    @classmethod
    def single(cls, site: int, at: float, recover_at: Optional[float] = None) -> "CrashSchedule":
        """Crash one site at ``at`` (optionally recovering later)."""
        return cls([CrashEvent(time=at, site=site, recover_at=recover_at)])

    def add(self, event: CrashEvent) -> "CrashSchedule":
        """Append a crash event."""
        self.events.append(event)
        return self

    def sites(self) -> set[int]:
        """Sites named by any crash event."""
        return {event.site for event in self.events}

    def validate(self, n_sites: int) -> None:
        """Raise :class:`ValueError` when the schedule cannot run on
        ``n_sites`` sites (unknown site id or a negative event time).

        The single source of truth shared by
        :class:`~repro.txn.runner.ThroughputSpec` validation and the CLI's
        ``--crash-schedule`` checks, so both always reject the same inputs.
        """
        out_of_range = sorted(
            site for site in self.sites() if not 1 <= site <= n_sites
        )
        if out_of_range:
            raise ValueError(
                f"crash schedule names site(s) {out_of_range} outside 1..{n_sites}"
            )
        past = sorted(event.time for event in self if event.time < 0)
        if past:
            raise ValueError(
                f"crash schedule contains negative event time(s) {past}"
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.time))


class FailureInjector:
    """Schedules crash / recovery events against registered nodes."""

    def __init__(self, sim: Simulator, nodes: Iterable[Node]) -> None:
        self.sim = sim
        self._nodes = {node.node_id: node for node in nodes}

    def apply(self, schedule: CrashSchedule) -> None:
        """Install every crash (and recovery) in ``schedule``."""
        for event in schedule:
            node = self._nodes.get(event.site)
            if node is None:
                raise KeyError(f"cannot crash unknown site {event.site}")
            self.sim.schedule_at(
                event.time,
                node.crash,
                kind=EventKind.CRASH,
                label=f"crash site {event.site}",
            )
            if event.recover_at is not None:
                self.sim.schedule_at(
                    event.recover_at,
                    node.recover,
                    kind=EventKind.RECOVER,
                    label=f"recover site {event.site}",
                )
