"""Site failure injection and the unified :class:`FaultPlan` API.

The paper assumes (Section 5.1, assumptions 3-4) that site failures never
coincide with network partitioning and that masters never fail; Section 7
justifies this by exhibiting two scenarios where a concurrent failure breaks
atomicity.  The failure injector exists to reproduce exactly those negative
scenarios (experiment SEC7) and to exercise the recovery path of the database
substrate.

Beyond crashes, this module defines the fault taxonomy that goes *past* the
paper's assumption 1 (reliable delivery between connected, live sites):

* :class:`LinkFault` -- per-link (or wildcard) message loss, duplication and
  bounded reordering;
* :class:`OmissionFault` -- a site that silently fails to send or receive;
* :class:`ByzantineSpec` -- a site that equivocates its votes/decisions or
  takes arbitrary (seeded) protocol transitions;
* :class:`RetransmitPolicy` -- the at-least-once retransmission/dedup layer
  that *restores* assumption 1 on top of a lossy network;
* :class:`FaultPlan` -- the frozen, stably-hashable value object bundling
  all of the above (plus the crash schedule) so one API flows through spec
  hashing, the spec-kind registry, the CLI and the model checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.events import EventKind
from repro.sim.kernel import Simulator
from repro.sim.node import Node

#: Omission fault directions.
SEND_OMISSION = "send"
RECEIVE_OMISSION = "receive"
OMISSION_KINDS = (SEND_OMISSION, RECEIVE_OMISSION)

#: Byzantine behaviour modes.
EQUIVOCATE = "equivocate"
ARBITRARY = "arbitrary"
BYZANTINE_MODES = (EQUIVOCATE, ARBITRARY)


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``site`` at ``time``; recover at ``recover_at`` unless ``None``."""

    time: float
    site: int
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.time:
            raise ValueError(
                f"recovery time {self.recover_at} must follow crash time {self.time}"
            )


@dataclass
class CrashSchedule:
    """A collection of crash events applied to a run."""

    events: list[CrashEvent] = field(default_factory=list)

    @classmethod
    def none(cls) -> "CrashSchedule":
        """No crashes (the paper's default operating assumption)."""
        return cls([])

    @classmethod
    def single(cls, site: int, at: float, recover_at: Optional[float] = None) -> "CrashSchedule":
        """Crash one site at ``at`` (optionally recovering later)."""
        return cls([CrashEvent(time=at, site=site, recover_at=recover_at)])

    def add(self, event: CrashEvent) -> "CrashSchedule":
        """Append a crash event."""
        self.events.append(event)
        return self

    def sites(self) -> set[int]:
        """Sites named by any crash event."""
        return {event.site for event in self.events}

    def validate(self, n_sites: int) -> None:
        """Raise :class:`ValueError` when the schedule cannot run on
        ``n_sites`` sites (unknown site id or a negative event time).

        The single source of truth shared by
        :class:`~repro.txn.runner.ThroughputSpec` validation and the CLI's
        ``--crash-schedule`` checks, so both always reject the same inputs.
        """
        out_of_range = sorted(
            site for site in self.sites() if not 1 <= site <= n_sites
        )
        if out_of_range:
            raise ValueError(
                f"crash schedule names site(s) {out_of_range} outside 1..{n_sites}"
            )
        past = sorted(event.time for event in self if event.time < 0)
        if past:
            raise ValueError(
                f"crash schedule contains negative event time(s) {past}"
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.time))


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFault:
    """Stochastic faults on one directed link (``0`` wildcards a side).

    Attributes:
        src / dst: affected source / destination site (``0`` = any site).
        loss: probability a matching message is silently lost.
        duplicate: probability a matching message is delivered twice.
        reorder: probability a matching message is delayed by an extra
            ``uniform(0, reorder_window * T)``, letting later sends overtake
            it (bounded reordering).
        reorder_window: reorder delay bound, in units of ``T``.
    """

    src: int = 0
    dst: int = 0
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("loss", self.loss)
        _check_probability("duplicate", self.duplicate)
        _check_probability("reorder", self.reorder)
        if self.reorder_window <= 0:
            raise ValueError(
                f"reorder_window must be positive, got {self.reorder_window}"
            )

    def matches(self, source: int, destination: int) -> bool:
        """True when this fault applies to a ``source -> destination`` send."""
        return (self.src in (0, source)) and (self.dst in (0, destination))


@dataclass(frozen=True)
class OmissionFault:
    """A site that silently omits sends or receives.

    A send-omission site "sends" messages that never enter the network; a
    receive-omission site never sees matching deliveries.  Either way the
    peer observes pure silence (no bounce), unlike a partition under the
    optimistic model.
    """

    site: int
    kind: str = SEND_OMISSION
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in OMISSION_KINDS:
            raise ValueError(
                f"omission kind must be one of {OMISSION_KINDS}, got {self.kind!r}"
            )
        _check_probability("probability", self.probability)
        if self.site < 1:
            raise ValueError(f"omission site must be >= 1, got {self.site}")


@dataclass(frozen=True)
class ByzantineSpec:
    """A participant that misbehaves at the protocol layer.

    Modes:
        ``"equivocate"``: the site tells different peers different things --
        vote/ack messages flip content per destination, and decision
        broadcasts alternate commit/abort across destinations (the classic
        atomicity attack).
        ``"arbitrary"``: every outgoing protocol message is run through a
        seeded mutation (kind rewrite, drop, or pass-through), modelling a
        site whose FSA takes arbitrary transitions.
    """

    site: int
    mode: str = EQUIVOCATE

    def __post_init__(self) -> None:
        if self.mode not in BYZANTINE_MODES:
            raise ValueError(
                f"byzantine mode must be one of {BYZANTINE_MODES}, got {self.mode!r}"
            )
        if self.site < 1:
            raise ValueError(f"byzantine site must be >= 1, got {self.site}")


@dataclass(frozen=True)
class RetransmitPolicy:
    """At-least-once delivery: seeded-backoff retransmit + receiver dedup.

    A sender keeps retransmitting a message (every ``interval * T``, plus a
    small seeded jitter) until it sees the receiver's ack or exhausts
    ``max_attempts``; receivers acknowledge every copy and deliver only the
    first (dedup by message id).  With loss probability ``p`` per copy the
    residual failure probability is ``p ** (max_attempts + 1)`` -- the layer
    restores the paper's assumption 1 up to that vanishing term.
    """

    max_attempts: int = 6
    interval: float = 0.8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")


@dataclass(frozen=True)
class FaultPlan:
    """The unified fault specification: one frozen, stably-hashable value.

    Bundles the crash schedule with the message-level faults and the
    retransmission policy so every spec kind (scenario, throughput,
    modelcheck) threads faults through a single field instead of three
    parallel plumbing paths.  ``FaultPlan.none()`` is the identity: specs
    normalize it away so fault-free runs hash -- and execute -- exactly as
    before the API existed.
    """

    crashes: tuple[CrashEvent, ...] = ()
    links: tuple[LinkFault, ...] = ()
    omissions: tuple[OmissionFault, ...] = ()
    byzantine: tuple[ByzantineSpec, ...] = ()
    retransmit: Optional[RetransmitPolicy] = None
    seed: int = 0

    def __post_init__(self) -> None:
        # Normalize list inputs so equal plans are equal values.
        for name in ("crashes", "links", "omissions", "byzantine"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        duplicated = sorted(
            {b.site for b in self.byzantine}
            & {e.site for e in self.crashes}
        )
        if duplicated:
            raise ValueError(
                f"site(s) {duplicated} cannot be both Byzantine and crashed"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (reliable delivery, no crashes)."""
        return cls()

    @classmethod
    def lossy(
        cls,
        probability: float,
        *,
        retransmit: Optional[RetransmitPolicy] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Uniform message loss on every link."""
        return cls(
            links=(LinkFault(loss=probability),),
            retransmit=retransmit,
            seed=seed,
        )

    @classmethod
    def duplicating(cls, probability: float, *, seed: int = 0) -> "FaultPlan":
        """Uniform message duplication on every link."""
        return cls(links=(LinkFault(duplicate=probability),), seed=seed)

    @classmethod
    def reordering(
        cls, probability: float, *, window: float = 1.0, seed: int = 0
    ) -> "FaultPlan":
        """Uniform bounded reordering on every link."""
        return cls(
            links=(LinkFault(reorder=probability, reorder_window=window),),
            seed=seed,
        )

    @classmethod
    def from_crashes(cls, schedule: "CrashSchedule") -> "FaultPlan":
        """Wrap a legacy crash schedule (time-sorted) in a plan."""
        return cls(crashes=tuple(schedule))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_none(self) -> bool:
        """True for the identity plan (no faults, no retransmission)."""
        return (
            not self.crashes
            and not self.links
            and not self.omissions
            and not self.byzantine
            and self.retransmit is None
        )

    @property
    def has_message_faults(self) -> bool:
        """True when the network needs the message-fault layer installed."""
        return bool(self.links or self.omissions or self.retransmit is not None)

    def byzantine_sites(self) -> frozenset[int]:
        """Sites configured to misbehave."""
        return frozenset(b.site for b in self.byzantine)

    def fault_classes(self) -> tuple[str, ...]:
        """The fault-class labels this plan exercises (sorted, for reports)."""
        classes: set[str] = set()
        if self.crashes:
            classes.add("crash")
        for link in self.links:
            if link.loss:
                classes.add("loss")
            if link.duplicate:
                classes.add("duplicate")
            if link.reorder:
                classes.add("reorder")
        for omission in self.omissions:
            classes.add(f"{omission.kind}-omission")
        if self.byzantine:
            classes.add("byzantine")
        return tuple(sorted(classes))

    def crash_schedule(self) -> CrashSchedule:
        """The plan's crashes as a legacy :class:`CrashSchedule`."""
        return CrashSchedule(list(self.crashes))

    def effective_max_delay(self, max_delay: float) -> float:
        """The delivery bound ``T'`` once retransmission is in force.

        Protocol timeouts are multiples of the longest end-to-end delay; a
        retransmitted message can take up to the full retry budget before
        its first surviving copy lands, so timers must stretch with it.
        Reordering likewise inflates the bound by its window.
        """
        bound = max_delay
        window = max(
            (link.reorder_window for link in self.links if link.reorder),
            default=0.0,
        )
        bound += window * max_delay
        if self.retransmit is not None:
            bound += (
                self.retransmit.max_attempts * self.retransmit.interval * max_delay
            )
        return bound

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, n_sites: int) -> None:
        """Reject plans naming sites outside ``1..n_sites``."""
        self.crash_schedule().validate(n_sites)
        bad_links = sorted(
            site
            for link in self.links
            for site in (link.src, link.dst)
            if site != 0 and not 1 <= site <= n_sites
        )
        if bad_links:
            raise ValueError(
                f"fault plan names link site(s) {bad_links} outside 1..{n_sites}"
            )
        bad_sites = sorted(
            site
            for site in (
                [o.site for o in self.omissions]
                + [b.site for b in self.byzantine]
            )
            if not 1 <= site <= n_sites
        )
        if bad_sites:
            raise ValueError(
                f"fault plan names site(s) {bad_sites} outside 1..{n_sites}"
            )


def normalize_fault_plan(plan: Optional["FaultPlan"]) -> Optional["FaultPlan"]:
    """Collapse the identity plan to ``None``.

    Specs store ``None`` for "no faults" so their canonical hash -- and every
    golden table, cache key and shard spill derived from it -- is
    byte-identical to the pre-FaultPlan format.
    """
    if plan is not None and plan.is_none():
        return None
    return plan


class FailureInjector:
    """Schedules crash / recovery events against registered nodes."""

    def __init__(self, sim: Simulator, nodes: Iterable[Node]) -> None:
        self.sim = sim
        self._nodes = {node.node_id: node for node in nodes}

    def apply(self, schedule: CrashSchedule) -> None:
        """Install every crash (and recovery) in ``schedule``."""
        for event in schedule:
            node = self._nodes.get(event.site)
            if node is None:
                raise KeyError(f"cannot crash unknown site {event.site}")
            self.sim.schedule_at(
                event.time,
                node.crash,
                kind=EventKind.CRASH,
                label=f"crash site {event.site}",
            )
            if event.recover_at is not None:
                self.sim.schedule_at(
                    event.recover_at,
                    node.recover,
                    kind=EventKind.RECOVER,
                    label=f"recover site {event.site}",
                )
