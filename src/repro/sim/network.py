"""Message-passing network with partition semantics.

Two partition models are supported, mirroring Skeen & Stonebraker's taxonomy
quoted in Section 2 of the paper:

* **optimistic** -- no messages are lost when a partition occurs; messages
  that cannot be delivered (either already in flight across the boundary, or
  sent across it later) are *returned to the sender* wrapped in
  :class:`Undeliverable`.  This is the model under which the termination
  protocol is proved correct.
* **pessimistic** -- undeliverable messages are silently dropped.  The paper
  proves no protocol can be resilient in this model; we keep it for the
  negative experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, TYPE_CHECKING

from repro.sim.events import Event, EventKind
from repro.sim.kernel import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.partition import PartitionManager, PartitionSpec
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"

_envelope_ids = itertools.count(1)


@dataclass(frozen=True)
class Envelope:
    """A message in transit from ``source`` to ``destination``."""

    envelope_id: int
    source: int
    destination: int
    payload: Any
    sent_at: float

    def __str__(self) -> str:
        return (
            f"Envelope#{self.envelope_id}({self.source}->{self.destination}: "
            f"{self.payload})"
        )


@dataclass(frozen=True)
class Undeliverable:
    """The paper's ``UD(msg)``: a message returned to its sender.

    Attributes:
        original: the envelope whose delivery failed.
    """

    original: Envelope

    @property
    def payload(self) -> Any:
        """The payload of the bounced message."""
        return self.original.payload

    @property
    def intended_destination(self) -> int:
        """Site the bounced message was addressed to."""
        return self.original.destination

    def __str__(self) -> str:
        return f"UD({self.original.payload} -> site {self.original.destination})"


@dataclass
class DeliveryReceipt:
    """Bookkeeping for a message the network has accepted but not yet resolved."""

    envelope: Envelope
    event: Event
    deliver_at: float
    resolved: bool = False


class Network:
    """Point-to-point network connecting simulated sites.

    Args:
        sim: owning simulator.
        latency: latency model; its upper bound is the paper's ``T``.
        partitions: partition manager consulted on every send/delivery.
        model: ``"optimistic"`` or ``"pessimistic"``.
        trace: shared trace for send/deliver/bounce/drop records.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: Optional[LatencyModel] = None,
        partitions: Optional[PartitionManager] = None,
        model: str = OPTIMISTIC,
        trace: Optional[Trace] = None,
    ) -> None:
        if model not in (OPTIMISTIC, PESSIMISTIC):
            raise ValueError(f"unknown partition model: {model!r}")
        self.sim = sim
        self.latency = latency or ConstantLatency(1.0)
        self.partitions = partitions or PartitionManager()
        self.model = model
        self.trace = trace if trace is not None else Trace()
        self._nodes: Dict[int, "Node"] = {}
        self._in_flight: Dict[int, DeliveryReceipt] = {}
        self._sent = 0
        self._delivered = 0
        self._bounced = 0
        self._dropped = 0
        self.partitions.subscribe(self._on_connectivity_change)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def max_delay(self) -> float:
        """The paper's ``T``."""
        return self.latency.upper_bound

    def register(self, node: "Node") -> None:
        """Attach a node so the network can deliver to it."""
        if node.node_id in self._nodes:
            raise ValueError(f"site {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Look up a registered node."""
        return self._nodes[node_id]

    def sites(self) -> list[int]:
        """Registered site ids, sorted."""
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        """Number of sends accepted."""
        return self._sent

    @property
    def messages_delivered(self) -> int:
        """Number of messages delivered to their destination."""
        return self._delivered

    @property
    def messages_bounced(self) -> int:
        """Number of messages returned to their sender as undeliverable."""
        return self._bounced

    @property
    def messages_dropped(self) -> int:
        """Number of messages silently lost (pessimistic model / crashed sites)."""
        return self._dropped

    @property
    def in_flight(self) -> int:
        """Messages currently in transit."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, source: int, destination: int, payload: Any) -> Envelope:
        """Send ``payload`` from ``source`` to ``destination``.

        The message is accepted unconditionally; whether it is eventually
        delivered, bounced or dropped depends on the partition state now and
        while it is in flight.
        """
        envelope = Envelope(
            envelope_id=next(_envelope_ids),
            source=source,
            destination=destination,
            payload=payload,
            sent_at=self.sim.now,
        )
        self._sent += 1
        self.trace.record(
            self.sim.now,
            "send",
            site=source,
            destination=destination,
            payload=describe_payload(payload),
            envelope_id=envelope.envelope_id,
        )
        if self.partitions.separated(source, destination):
            # The destination is unreachable right now: bounce or drop
            # immediately (after a propagation delay for the bounce itself).
            self._fail_delivery(envelope, reason="partitioned-at-send")
            return envelope
        delay = self.latency.sample(self.sim.rng, source, destination)
        deliver_at = self.sim.now + delay
        event = self.sim.schedule(
            delay,
            lambda env=envelope: self._deliver(env),
            kind=EventKind.MESSAGE_DELIVERY,
            label=f"deliver {envelope}",
        )
        self._in_flight[envelope.envelope_id] = DeliveryReceipt(
            envelope=envelope, event=event, deliver_at=deliver_at
        )
        return envelope

    def multicast(self, source: int, destinations: Iterable[int], payload: Any) -> list[Envelope]:
        """Send the same payload from ``source`` to every destination."""
        return [self.send(source, destination, payload) for destination in destinations]

    # ------------------------------------------------------------------
    # internal delivery machinery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        receipt = self._in_flight.pop(envelope.envelope_id, None)
        if receipt is not None:
            receipt.resolved = True
        if self.partitions.separated(envelope.source, envelope.destination):
            # Partition occurred while the message was in flight and is still
            # in force at the (attempted) delivery instant.
            self._fail_delivery(envelope, reason="partitioned-in-flight")
            return
        node = self._nodes.get(envelope.destination)
        if node is None:
            self._dropped += 1
            self.trace.record(
                self.sim.now,
                "drop",
                site=envelope.destination,
                reason="unknown-destination",
                payload=describe_payload(envelope.payload),
            )
            return
        if node.crashed:
            self._dropped += 1
            self.trace.record(
                self.sim.now,
                "drop",
                site=envelope.destination,
                reason="destination-crashed",
                payload=describe_payload(envelope.payload),
            )
            return
        self._delivered += 1
        self.trace.record(
            self.sim.now,
            "deliver",
            site=envelope.destination,
            source=envelope.source,
            payload=describe_payload(envelope.payload),
            envelope_id=envelope.envelope_id,
            latency=self.sim.now - envelope.sent_at,
        )
        node.deliver(envelope)

    def _fail_delivery(self, envelope: Envelope, *, reason: str) -> None:
        """Handle a message that cannot reach its destination."""
        if self.model == PESSIMISTIC:
            self._dropped += 1
            self.trace.record(
                self.sim.now,
                "drop",
                site=envelope.destination,
                source=envelope.source,
                reason=reason,
                payload=describe_payload(envelope.payload),
            )
            return
        # Optimistic model: return the message to the sender.  The bounce
        # itself takes a propagation delay back to the source.
        delay = self.latency.sample(self.sim.rng, envelope.destination, envelope.source)
        undeliverable = Undeliverable(envelope)
        self.sim.schedule(
            delay,
            lambda ud=undeliverable: self._deliver_bounce(ud),
            kind=EventKind.MESSAGE_BOUNCE,
            label=f"bounce {envelope}",
        )
        self.trace.record(
            self.sim.now,
            "bounce",
            site=envelope.source,
            destination=envelope.destination,
            reason=reason,
            payload=describe_payload(envelope.payload),
            envelope_id=envelope.envelope_id,
        )

    def _deliver_bounce(self, undeliverable: Undeliverable) -> None:
        envelope = undeliverable.original
        node = self._nodes.get(envelope.source)
        self._bounced += 1
        if node is None or node.crashed:
            self._dropped += 1
            self.trace.record(
                self.sim.now,
                "drop",
                site=envelope.source,
                reason="bounce-target-crashed",
                payload=describe_payload(envelope.payload),
            )
            return
        self.trace.record(
            self.sim.now,
            "deliver-undeliverable",
            site=envelope.source,
            payload=describe_payload(envelope.payload),
            intended=envelope.destination,
            envelope_id=envelope.envelope_id,
        )
        bounce_envelope = Envelope(
            envelope_id=next(_envelope_ids),
            source=envelope.destination,
            destination=envelope.source,
            payload=undeliverable,
            sent_at=self.sim.now,
        )
        node.deliver(bounce_envelope)

    def _on_connectivity_change(self, spec: Optional[PartitionSpec]) -> None:
        """Bounce (or drop) in-flight messages that now cross the boundary.

        This implements the paper's assumption 1: "all undeliverable messages
        due to network partitioning are returned to the sender" -- including
        the ones that were outstanding at the instant the partition occurred.
        """
        if spec is None:
            return
        for receipt in list(self._in_flight.values()):
            envelope = receipt.envelope
            if not spec.separated(envelope.source, envelope.destination):
                continue
            receipt.event.cancel()
            receipt.resolved = True
            del self._in_flight[envelope.envelope_id]
            self._fail_delivery(envelope, reason="partition-cut-in-flight")


def describe_payload(payload: Any) -> str:
    """Short human-readable description of a message payload for traces."""
    if isinstance(payload, Undeliverable):
        return f"UD({describe_payload(payload.original.payload)})"
    kind = getattr(payload, "kind", None)
    if kind is not None:
        return str(kind)
    return type(payload).__name__ if not isinstance(payload, str) else payload
