"""Message-passing network with partition semantics.

Two partition models are supported, mirroring Skeen & Stonebraker's taxonomy
quoted in Section 2 of the paper:

* **optimistic** -- no messages are lost when a partition occurs; messages
  that cannot be delivered (either already in flight across the boundary, or
  sent across it later) are *returned to the sender* wrapped in
  :class:`Undeliverable`.  This is the model under which the termination
  protocol is proved correct.
* **pessimistic** -- undeliverable messages are silently dropped.  The paper
  proves no protocol can be resilient in this model; we keep it for the
  negative experiments.

The send/deliver path is the hottest code in a sweep, so the message records
are ``__slots__`` classes, delivery events carry the envelope as an event
argument (no closure per send), and envelope ids are a per-``Network``
counter -- a run's trace is therefore identical no matter what ran earlier
in the same process.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Optional, TYPE_CHECKING

from repro.sim.events import Event, EventKind
from repro.sim.kernel import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.partition import PartitionManager, PartitionSpec
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.failures import FaultPlan
    from repro.sim.node import Node

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"


class DeliveryAck:
    """Internal receiver-to-sender acknowledgement of a tracked message.

    Part of the at-least-once retransmission layer: the network consumes
    these on delivery (they are never handed to a role).  Acks are not
    themselves tracked or retransmitted, and they traverse the same lossy
    links as the data they acknowledge -- a lost ack simply triggers one
    more (deduplicated) retransmission.
    """

    __slots__ = ("message_id",)

    def __init__(self, message_id: int) -> None:
        self.message_id = message_id

    def __str__(self) -> str:
        return f"ack#{self.message_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.__str__()


class _PendingMessage:
    """Sender-side state for one logical message awaiting acknowledgement."""

    __slots__ = ("message_id", "source", "destination", "payload", "attempts", "event")

    def __init__(
        self, message_id: int, source: int, destination: int, payload: Any
    ) -> None:
        self.message_id = message_id
        self.source = source
        self.destination = destination
        self.payload = payload
        self.attempts = 0
        self.event: Optional[Event] = None


class Envelope:
    """A message in transit from ``source`` to ``destination``."""

    __slots__ = ("envelope_id", "source", "destination", "payload", "sent_at")

    def __init__(
        self,
        envelope_id: int,
        source: int,
        destination: int,
        payload: Any,
        sent_at: float,
    ) -> None:
        self.envelope_id = envelope_id
        self.source = source
        self.destination = destination
        self.payload = payload
        self.sent_at = sent_at

    def __str__(self) -> str:
        return (
            f"Envelope#{self.envelope_id}({self.source}->{self.destination}: "
            f"{self.payload})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.__str__()


class Undeliverable:
    """The paper's ``UD(msg)``: a message returned to its sender.

    Attributes:
        original: the envelope whose delivery failed.
    """

    __slots__ = ("original",)

    def __init__(self, original: Envelope) -> None:
        self.original = original

    @property
    def payload(self) -> Any:
        """The payload of the bounced message."""
        return self.original.payload

    @property
    def intended_destination(self) -> int:
        """Site the bounced message was addressed to."""
        return self.original.destination

    def __str__(self) -> str:
        return f"UD({self.original.payload} -> site {self.original.destination})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.__str__()


class DeliveryReceipt:
    """Bookkeeping for a message the network has accepted but not yet resolved."""

    __slots__ = ("envelope", "event", "deliver_at", "resolved")

    def __init__(
        self,
        envelope: Envelope,
        event: Event,
        deliver_at: float,
        resolved: bool = False,
    ) -> None:
        self.envelope = envelope
        self.event = event
        self.deliver_at = deliver_at
        self.resolved = resolved


class Network:
    """Point-to-point network connecting simulated sites.

    Args:
        sim: owning simulator.
        latency: latency model; its upper bound is the paper's ``T``.
        partitions: partition manager consulted on every send/delivery.
        model: ``"optimistic"`` or ``"pessimistic"``.
        trace: shared trace for send/deliver/bounce/drop records.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: Optional[LatencyModel] = None,
        partitions: Optional[PartitionManager] = None,
        model: str = OPTIMISTIC,
        trace: Optional[Trace] = None,
    ) -> None:
        if model not in (OPTIMISTIC, PESSIMISTIC):
            raise ValueError(f"unknown partition model: {model!r}")
        self.sim = sim
        self.latency = latency or ConstantLatency(1.0)
        # Fixed-delay models advertise constant_delay; caching it here lets
        # send/bounce skip the per-message sample() call and never touch the
        # simulator's (lazily built) rng.
        self._constant_delay: Optional[float] = getattr(
            self.latency, "constant_delay", None
        )
        self.partitions = partitions or PartitionManager()
        self.model = model
        self.trace = trace if trace is not None else Trace()
        # Cached so the hot send/deliver paths can skip both the record and
        # the describe_payload() / kwargs work that feeds it.
        self._tracing: bool = self.trace.enabled
        self._nodes: Dict[int, "Node"] = {}
        self._in_flight: Dict[int, DeliveryReceipt] = {}
        self._next_envelope_id = 1
        self._sent = 0
        self._delivered = 0
        self._bounced = 0
        self._dropped = 0
        # Message-fault layer (loss / duplication / reordering / omission +
        # retransmission).  ``None`` on the default reliable network; the hot
        # send/deliver paths pay exactly one ``is None`` check for it.
        self._faults: Optional["FaultPlan"] = None
        self._fault_rng: Optional[random.Random] = None
        self._send_omissions: Dict[int, float] = {}
        self._recv_omissions: Dict[int, float] = {}
        self._retransmit = None
        self._pending: Dict[int, _PendingMessage] = {}
        self._copy_message: Dict[int, int] = {}
        self._seen: set[tuple[int, int]] = set()
        self._next_message_id = 1
        self._retransmits = 0
        self._deduplicated = 0
        self._fault_losses = 0
        self.partitions.subscribe(self._on_connectivity_change)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def max_delay(self) -> float:
        """The paper's ``T``."""
        return self.latency.upper_bound

    def register(self, node: "Node") -> None:
        """Attach a node so the network can deliver to it."""
        if node.node_id in self._nodes:
            raise ValueError(f"site {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Look up a registered node."""
        return self._nodes[node_id]

    def sites(self) -> list[int]:
        """Registered site ids, sorted."""
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        """Number of sends accepted."""
        return self._sent

    @property
    def messages_delivered(self) -> int:
        """Number of messages delivered to their destination."""
        return self._delivered

    @property
    def messages_bounced(self) -> int:
        """Number of messages returned to their sender as undeliverable."""
        return self._bounced

    @property
    def messages_dropped(self) -> int:
        """Number of messages silently lost (pessimistic model / crashed sites)."""
        return self._dropped

    @property
    def in_flight(self) -> int:
        """Messages currently in transit."""
        return len(self._in_flight)

    @property
    def messages_retransmitted(self) -> int:
        """Retransmission copies sent by the at-least-once layer."""
        return self._retransmits

    @property
    def messages_deduplicated(self) -> int:
        """Deliveries suppressed as duplicates of an already-seen message."""
        return self._deduplicated

    @property
    def messages_lost_to_faults(self) -> int:
        """Messages silently lost (or omitted) by the fault layer."""
        return self._fault_losses

    # ------------------------------------------------------------------
    # fault layer installation
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: "FaultPlan") -> None:
        """Install ``plan``'s message-level faults (and retransmission).

        Crash events are the cluster's business
        (:meth:`repro.sim.cluster.Cluster.apply_fault_plan` splits the plan);
        this installs the link faults, omission faults and the retransmission
        policy.  The layer owns its own seeded RNG so the latency model's
        random stream is untouched -- a plan with no stochastic faults leaves
        delivery timing bit-identical.
        """
        from repro.sim.failures import RECEIVE_OMISSION, SEND_OMISSION

        self._faults = plan
        self._fault_rng = random.Random(f"fault-plan:{plan.seed}")
        self._send_omissions = {
            o.site: o.probability
            for o in plan.omissions
            if o.kind == SEND_OMISSION
        }
        self._recv_omissions = {
            o.site: o.probability
            for o in plan.omissions
            if o.kind == RECEIVE_OMISSION
        }
        self._retransmit = plan.retransmit

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, source: int, destination: int, payload: Any) -> Envelope:
        """Send ``payload`` from ``source`` to ``destination``.

        The message is accepted unconditionally; whether it is eventually
        delivered, bounced or dropped depends on the partition state now and
        while it is in flight.
        """
        if self._faults is not None:
            return self._faulty_send(source, destination, payload)
        sim = self.sim
        now = sim.clock._now
        envelope_id = self._next_envelope_id
        self._next_envelope_id = envelope_id + 1
        envelope = Envelope(envelope_id, source, destination, payload, now)
        self._sent += 1
        if self._tracing:
            self.trace.record(
                now,
                "send",
                site=source,
                destination=destination,
                payload=describe_payload(payload),
                envelope_id=envelope_id,
            )
        # Inlined PartitionManager.separated (source != destination always
        # holds for protocol traffic; spec.separated handles a == b anyway).
        current = self.partitions._current
        if current is not None and current.separated(source, destination):
            # The destination is unreachable right now: bounce or drop
            # immediately (after a propagation delay for the bounce itself).
            self._fail_delivery(envelope, reason="partitioned-at-send")
            return envelope
        delay = self._constant_delay
        if delay is None:
            delay = self.latency.sample(sim.rng, source, destination)
        # Inlined sim.schedule(): latency models guarantee positive delays,
        # so the negative-delay guard is redundant on this hottest path.
        event = sim._push(
            now + delay, self._deliver, EventKind.MESSAGE_DELIVERY, "deliver", 0, envelope
        )
        self._in_flight[envelope_id] = DeliveryReceipt(
            envelope=envelope, event=event, deliver_at=now + delay
        )
        return envelope

    def multicast(self, source: int, destinations: Iterable[int], payload: Any) -> list[Envelope]:
        """Send the same payload from ``source`` to every destination."""
        return [self.send(source, destination, payload) for destination in destinations]

    # ------------------------------------------------------------------
    # fault-layer send path
    # ------------------------------------------------------------------
    def _faulty_send(
        self,
        source: int,
        destination: int,
        payload: Any,
        *,
        message_id: Optional[int] = None,
    ) -> Envelope:
        """The full-fat send path used when a fault plan is installed.

        Applies, in order: at-least-once registration, send omission,
        partition semantics (unchanged), then the per-link stochastic faults
        (loss, duplication, bounded reordering).  All randomness comes from
        the fault layer's own seeded RNG, never the simulator's.
        """
        sim = self.sim
        now = sim.clock._now
        envelope_id = self._next_envelope_id
        self._next_envelope_id = envelope_id + 1
        envelope = Envelope(envelope_id, source, destination, payload, now)
        self._sent += 1
        if self._tracing:
            self.trace.record(
                now,
                "send",
                site=source,
                destination=destination,
                payload=describe_payload(payload),
                envelope_id=envelope_id,
            )
        rng = self._fault_rng
        is_ack = type(payload) is DeliveryAck
        if self._retransmit is not None and not is_ack and message_id is None:
            message_id = self._register_pending(source, destination, payload)
        if message_id is not None:
            self._copy_message[envelope_id] = message_id
        omission = self._send_omissions.get(source)
        if omission is not None and rng.random() < omission:
            self._drop_to_fault(envelope, reason="send-omission")
            return envelope
        current = self.partitions._current
        if current is not None and current.separated(source, destination):
            if is_ack:
                # Acks are network-internal: a bounced ack must never reach
                # a protocol role, so partitioned acks are simply lost (one
                # more retransmission follows and is deduplicated).
                self._drop_to_fault(envelope, reason="ack-partitioned")
            else:
                self._fail_delivery(envelope, reason="partitioned-at-send")
            return envelope
        duplicate = False
        extra_delay = 0.0
        for link in self._faults.links:
            if not link.matches(source, destination):
                continue
            if link.loss and rng.random() < link.loss:
                self._drop_to_fault(envelope, reason="link-loss")
                return envelope
            if link.duplicate and rng.random() < link.duplicate:
                duplicate = True
            if link.reorder and rng.random() < link.reorder:
                extra_delay += rng.uniform(
                    0.0, link.reorder_window * self.latency.upper_bound
                )
        delay = self._constant_delay
        if delay is None:
            delay = self.latency.sample(sim.rng, source, destination)
        deliver_at = now + delay + extra_delay
        event = sim._push(
            deliver_at, self._deliver, EventKind.MESSAGE_DELIVERY, "deliver", 0, envelope
        )
        self._in_flight[envelope_id] = DeliveryReceipt(
            envelope=envelope, event=event, deliver_at=deliver_at
        )
        if duplicate:
            self._send_duplicate(envelope, message_id, extra_delay)
        return envelope

    def _send_duplicate(
        self, original: Envelope, message_id: Optional[int], extra_delay: float
    ) -> None:
        """Inject a second physical copy of ``original`` (duplication fault)."""
        sim = self.sim
        now = sim.clock._now
        envelope_id = self._next_envelope_id
        self._next_envelope_id = envelope_id + 1
        copy = Envelope(
            envelope_id, original.source, original.destination, original.payload, now
        )
        if message_id is not None:
            self._copy_message[envelope_id] = message_id
        delay = self._constant_delay
        if delay is None:
            delay = self.latency.sample(sim.rng, original.source, original.destination)
        # The copy takes its own (jittered) path so it can land before or
        # after the original.
        delay += self._fault_rng.uniform(0.0, self.latency.upper_bound) + extra_delay
        deliver_at = now + delay
        if self._tracing:
            self.trace.record(
                now,
                "duplicate",
                site=original.source,
                destination=original.destination,
                payload=describe_payload(original.payload),
                envelope_id=envelope_id,
            )
        event = sim._push(
            deliver_at, self._deliver, EventKind.MESSAGE_DELIVERY, "deliver", 0, copy
        )
        self._in_flight[envelope_id] = DeliveryReceipt(
            envelope=copy, event=event, deliver_at=deliver_at
        )

    def _drop_to_fault(self, envelope: Envelope, *, reason: str) -> None:
        """Silently lose a message to the fault layer (no bounce)."""
        self._dropped += 1
        self._fault_losses += 1
        if self._tracing:
            self.trace.record(
                self.sim.clock._now,
                "drop",
                site=envelope.destination,
                source=envelope.source,
                reason=reason,
                payload=describe_payload(envelope.payload),
            )

    # ------------------------------------------------------------------
    # at-least-once retransmission
    # ------------------------------------------------------------------
    def _register_pending(self, source: int, destination: int, payload: Any) -> int:
        """Track a new logical message and arm its first retransmit timer."""
        message_id = self._next_message_id
        self._next_message_id = message_id + 1
        pending = _PendingMessage(message_id, source, destination, payload)
        self._pending[message_id] = pending
        self._arm_retransmit(pending)
        return message_id

    def _arm_retransmit(self, pending: _PendingMessage) -> None:
        interval = self._retransmit.interval * self.latency.upper_bound
        # Seeded backoff jitter, bounded above by the nominal interval so the
        # plan's effective_max_delay() stays a true delivery bound.
        delay = interval * self._fault_rng.uniform(0.85, 1.0)
        pending.event = self.sim.schedule(
            delay,
            self._retransmit_fire,
            kind=EventKind.TIMER,
            label="retransmit",
            priority=5,
            arg=pending.message_id,
        )

    def _retransmit_fire(self, message_id: int) -> None:
        pending = self._pending.get(message_id)
        if pending is None:
            return
        source_node = self._nodes.get(pending.source)
        if source_node is None or source_node.crashed:
            # A crashed sender retransmits nothing; drop the pending entry
            # (recovery restarts protocol logic, not network bookkeeping).
            del self._pending[message_id]
            return
        if pending.attempts >= self._retransmit.max_attempts:
            del self._pending[message_id]
            if self._tracing:
                self.trace.record(
                    self.sim.clock._now,
                    "retransmit-exhausted",
                    site=pending.source,
                    destination=pending.destination,
                    payload=describe_payload(pending.payload),
                )
            return
        pending.attempts += 1
        self._retransmits += 1
        if self._tracing:
            self.trace.record(
                self.sim.clock._now,
                "retransmit",
                site=pending.source,
                destination=pending.destination,
                attempt=pending.attempts,
                payload=describe_payload(pending.payload),
            )
        self._faulty_send(
            pending.source,
            pending.destination,
            pending.payload,
            message_id=message_id,
        )
        self._arm_retransmit(pending)

    def _settle_pending(self, message_id: int) -> None:
        """Stop retransmitting ``message_id`` (acked, or bounced by a partition)."""
        pending = self._pending.pop(message_id, None)
        if pending is not None and pending.event is not None:
            pending.event.cancel()

    def _fault_deliver(self, envelope: Envelope, node: "Node") -> bool:
        """Fault-layer delivery filter; True when the role should see it.

        Handles receive omission, ack consumption, acknowledgement of
        tracked copies and idempotent dedup by message id.
        """
        payload = envelope.payload
        if type(payload) is DeliveryAck:
            # Consumed by the network; the role never sees acks.
            self._settle_pending(payload.message_id)
            return False
        omission = self._recv_omissions.get(envelope.destination)
        if omission is not None and self._fault_rng.random() < omission:
            self._drop_to_fault(envelope, reason="receive-omission")
            return False
        message_id = self._copy_message.get(envelope.envelope_id)
        if message_id is None:
            return True
        # Every copy is acknowledged (the ack itself may be lost); only the
        # first is delivered to the role.
        self._faulty_send(
            envelope.destination, envelope.source, DeliveryAck(message_id)
        )
        key = (envelope.destination, message_id)
        if key in self._seen:
            self._deduplicated += 1
            if self._tracing:
                self.trace.record(
                    self.sim.clock._now,
                    "dedup",
                    site=envelope.destination,
                    source=envelope.source,
                    payload=describe_payload(payload),
                )
            return False
        self._seen.add(key)
        return True

    # ------------------------------------------------------------------
    # internal delivery machinery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        receipt = self._in_flight.pop(envelope.envelope_id, None)
        if receipt is not None:
            receipt.resolved = True
        current = self.partitions._current
        if current is not None and current.separated(envelope.source, envelope.destination):
            # Partition occurred while the message was in flight and is still
            # in force at the (attempted) delivery instant.
            self._fail_delivery(envelope, reason="partitioned-in-flight")
            return
        now = self.sim.clock._now
        node = self._nodes.get(envelope.destination)
        if node is None:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    now,
                    "drop",
                    site=envelope.destination,
                    reason="unknown-destination",
                    payload=describe_payload(envelope.payload),
                )
            return
        if node.crashed:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    now,
                    "drop",
                    site=envelope.destination,
                    reason="destination-crashed",
                    payload=describe_payload(envelope.payload),
                )
            return
        if self._faults is not None and not self._fault_deliver(envelope, node):
            return
        self._delivered += 1
        if self._tracing:
            self.trace.record(
                now,
                "deliver",
                site=envelope.destination,
                source=envelope.source,
                payload=describe_payload(envelope.payload),
                envelope_id=envelope.envelope_id,
                latency=now - envelope.sent_at,
            )
        node.deliver(envelope)

    def _fail_delivery(self, envelope: Envelope, *, reason: str) -> None:
        """Handle a message that cannot reach its destination."""
        if self._faults is not None:
            # A partition-bounced message stops retransmitting: the UD
            # notification (assumption 1) informs the sender's role, and
            # retransmission cannot cross the boundary anyway.
            message_id = self._copy_message.get(envelope.envelope_id)
            if message_id is not None:
                self._settle_pending(message_id)
        if self.model == PESSIMISTIC:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    self.sim.clock._now,
                    "drop",
                    site=envelope.destination,
                    source=envelope.source,
                    reason=reason,
                    payload=describe_payload(envelope.payload),
                )
            return
        # Optimistic model: return the message to the sender.  The bounce
        # itself takes a propagation delay back to the source.
        sim = self.sim
        delay = self._constant_delay
        if delay is None:
            delay = self.latency.sample(sim.rng, envelope.destination, envelope.source)
        sim._push(
            sim.clock._now + delay,
            self._deliver_bounce,
            EventKind.MESSAGE_BOUNCE,
            "bounce",
            0,
            Undeliverable(envelope),
        )
        if self._tracing:
            self.trace.record(
                self.sim.clock._now,
                "bounce",
                site=envelope.source,
                destination=envelope.destination,
                reason=reason,
                payload=describe_payload(envelope.payload),
                envelope_id=envelope.envelope_id,
            )

    def _deliver_bounce(self, undeliverable: Undeliverable) -> None:
        envelope = undeliverable.original
        node = self._nodes.get(envelope.source)
        self._bounced += 1
        now = self.sim.clock._now
        if node is None or node.crashed:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    now,
                    "drop",
                    site=envelope.source,
                    reason="bounce-target-crashed",
                    payload=describe_payload(envelope.payload),
                )
            return
        if self._tracing:
            self.trace.record(
                now,
                "deliver-undeliverable",
                site=envelope.source,
                payload=describe_payload(envelope.payload),
                intended=envelope.destination,
                envelope_id=envelope.envelope_id,
            )
        envelope_id = self._next_envelope_id
        self._next_envelope_id = envelope_id + 1
        bounce_envelope = Envelope(
            envelope_id, envelope.destination, envelope.source, undeliverable, now
        )
        node.deliver(bounce_envelope)

    def _on_connectivity_change(self, spec: Optional[PartitionSpec]) -> None:
        """Bounce (or drop) in-flight messages that now cross the boundary.

        This implements the paper's assumption 1: "all undeliverable messages
        due to network partitioning are returned to the sender" -- including
        the ones that were outstanding at the instant the partition occurred.
        """
        if spec is None:
            return
        for receipt in list(self._in_flight.values()):
            envelope = receipt.envelope
            if not spec.separated(envelope.source, envelope.destination):
                continue
            receipt.event.cancel()
            receipt.resolved = True
            del self._in_flight[envelope.envelope_id]
            self._fail_delivery(envelope, reason="partition-cut-in-flight")


def describe_payload(payload: Any) -> str:
    """Short human-readable description of a message payload for traces."""
    # Hot path first: protocol messages carry a string `kind` attribute
    # (Undeliverable deliberately does not, so the order is safe).
    kind = getattr(payload, "kind", None)
    if kind is not None:
        return kind if type(kind) is str else str(kind)
    if isinstance(payload, Undeliverable):
        return f"UD({describe_payload(payload.original.payload)})"
    return payload if isinstance(payload, str) else type(payload).__name__
