"""Message-passing network with partition semantics.

Two partition models are supported, mirroring Skeen & Stonebraker's taxonomy
quoted in Section 2 of the paper:

* **optimistic** -- no messages are lost when a partition occurs; messages
  that cannot be delivered (either already in flight across the boundary, or
  sent across it later) are *returned to the sender* wrapped in
  :class:`Undeliverable`.  This is the model under which the termination
  protocol is proved correct.
* **pessimistic** -- undeliverable messages are silently dropped.  The paper
  proves no protocol can be resilient in this model; we keep it for the
  negative experiments.

The send/deliver path is the hottest code in a sweep, so the message records
are ``__slots__`` classes, delivery events carry the envelope as an event
argument (no closure per send), and envelope ids are a per-``Network``
counter -- a run's trace is therefore identical no matter what ran earlier
in the same process.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, TYPE_CHECKING

from repro.sim.events import Event, EventKind
from repro.sim.kernel import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.partition import PartitionManager, PartitionSpec
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"


class Envelope:
    """A message in transit from ``source`` to ``destination``."""

    __slots__ = ("envelope_id", "source", "destination", "payload", "sent_at")

    def __init__(
        self,
        envelope_id: int,
        source: int,
        destination: int,
        payload: Any,
        sent_at: float,
    ) -> None:
        self.envelope_id = envelope_id
        self.source = source
        self.destination = destination
        self.payload = payload
        self.sent_at = sent_at

    def __str__(self) -> str:
        return (
            f"Envelope#{self.envelope_id}({self.source}->{self.destination}: "
            f"{self.payload})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.__str__()


class Undeliverable:
    """The paper's ``UD(msg)``: a message returned to its sender.

    Attributes:
        original: the envelope whose delivery failed.
    """

    __slots__ = ("original",)

    def __init__(self, original: Envelope) -> None:
        self.original = original

    @property
    def payload(self) -> Any:
        """The payload of the bounced message."""
        return self.original.payload

    @property
    def intended_destination(self) -> int:
        """Site the bounced message was addressed to."""
        return self.original.destination

    def __str__(self) -> str:
        return f"UD({self.original.payload} -> site {self.original.destination})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.__str__()


class DeliveryReceipt:
    """Bookkeeping for a message the network has accepted but not yet resolved."""

    __slots__ = ("envelope", "event", "deliver_at", "resolved")

    def __init__(
        self,
        envelope: Envelope,
        event: Event,
        deliver_at: float,
        resolved: bool = False,
    ) -> None:
        self.envelope = envelope
        self.event = event
        self.deliver_at = deliver_at
        self.resolved = resolved


class Network:
    """Point-to-point network connecting simulated sites.

    Args:
        sim: owning simulator.
        latency: latency model; its upper bound is the paper's ``T``.
        partitions: partition manager consulted on every send/delivery.
        model: ``"optimistic"`` or ``"pessimistic"``.
        trace: shared trace for send/deliver/bounce/drop records.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: Optional[LatencyModel] = None,
        partitions: Optional[PartitionManager] = None,
        model: str = OPTIMISTIC,
        trace: Optional[Trace] = None,
    ) -> None:
        if model not in (OPTIMISTIC, PESSIMISTIC):
            raise ValueError(f"unknown partition model: {model!r}")
        self.sim = sim
        self.latency = latency or ConstantLatency(1.0)
        # Fixed-delay models advertise constant_delay; caching it here lets
        # send/bounce skip the per-message sample() call and never touch the
        # simulator's (lazily built) rng.
        self._constant_delay: Optional[float] = getattr(
            self.latency, "constant_delay", None
        )
        self.partitions = partitions or PartitionManager()
        self.model = model
        self.trace = trace if trace is not None else Trace()
        # Cached so the hot send/deliver paths can skip both the record and
        # the describe_payload() / kwargs work that feeds it.
        self._tracing: bool = self.trace.enabled
        self._nodes: Dict[int, "Node"] = {}
        self._in_flight: Dict[int, DeliveryReceipt] = {}
        self._next_envelope_id = 1
        self._sent = 0
        self._delivered = 0
        self._bounced = 0
        self._dropped = 0
        self.partitions.subscribe(self._on_connectivity_change)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def max_delay(self) -> float:
        """The paper's ``T``."""
        return self.latency.upper_bound

    def register(self, node: "Node") -> None:
        """Attach a node so the network can deliver to it."""
        if node.node_id in self._nodes:
            raise ValueError(f"site {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Look up a registered node."""
        return self._nodes[node_id]

    def sites(self) -> list[int]:
        """Registered site ids, sorted."""
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        """Number of sends accepted."""
        return self._sent

    @property
    def messages_delivered(self) -> int:
        """Number of messages delivered to their destination."""
        return self._delivered

    @property
    def messages_bounced(self) -> int:
        """Number of messages returned to their sender as undeliverable."""
        return self._bounced

    @property
    def messages_dropped(self) -> int:
        """Number of messages silently lost (pessimistic model / crashed sites)."""
        return self._dropped

    @property
    def in_flight(self) -> int:
        """Messages currently in transit."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, source: int, destination: int, payload: Any) -> Envelope:
        """Send ``payload`` from ``source`` to ``destination``.

        The message is accepted unconditionally; whether it is eventually
        delivered, bounced or dropped depends on the partition state now and
        while it is in flight.
        """
        sim = self.sim
        now = sim.clock._now
        envelope_id = self._next_envelope_id
        self._next_envelope_id = envelope_id + 1
        envelope = Envelope(envelope_id, source, destination, payload, now)
        self._sent += 1
        if self._tracing:
            self.trace.record(
                now,
                "send",
                site=source,
                destination=destination,
                payload=describe_payload(payload),
                envelope_id=envelope_id,
            )
        # Inlined PartitionManager.separated (source != destination always
        # holds for protocol traffic; spec.separated handles a == b anyway).
        current = self.partitions._current
        if current is not None and current.separated(source, destination):
            # The destination is unreachable right now: bounce or drop
            # immediately (after a propagation delay for the bounce itself).
            self._fail_delivery(envelope, reason="partitioned-at-send")
            return envelope
        delay = self._constant_delay
        if delay is None:
            delay = self.latency.sample(sim.rng, source, destination)
        # Inlined sim.schedule(): latency models guarantee positive delays,
        # so the negative-delay guard is redundant on this hottest path.
        event = sim._push(
            now + delay, self._deliver, EventKind.MESSAGE_DELIVERY, "deliver", 0, envelope
        )
        self._in_flight[envelope_id] = DeliveryReceipt(
            envelope=envelope, event=event, deliver_at=now + delay
        )
        return envelope

    def multicast(self, source: int, destinations: Iterable[int], payload: Any) -> list[Envelope]:
        """Send the same payload from ``source`` to every destination."""
        return [self.send(source, destination, payload) for destination in destinations]

    # ------------------------------------------------------------------
    # internal delivery machinery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        receipt = self._in_flight.pop(envelope.envelope_id, None)
        if receipt is not None:
            receipt.resolved = True
        current = self.partitions._current
        if current is not None and current.separated(envelope.source, envelope.destination):
            # Partition occurred while the message was in flight and is still
            # in force at the (attempted) delivery instant.
            self._fail_delivery(envelope, reason="partitioned-in-flight")
            return
        now = self.sim.clock._now
        node = self._nodes.get(envelope.destination)
        if node is None:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    now,
                    "drop",
                    site=envelope.destination,
                    reason="unknown-destination",
                    payload=describe_payload(envelope.payload),
                )
            return
        if node.crashed:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    now,
                    "drop",
                    site=envelope.destination,
                    reason="destination-crashed",
                    payload=describe_payload(envelope.payload),
                )
            return
        self._delivered += 1
        if self._tracing:
            self.trace.record(
                now,
                "deliver",
                site=envelope.destination,
                source=envelope.source,
                payload=describe_payload(envelope.payload),
                envelope_id=envelope.envelope_id,
                latency=now - envelope.sent_at,
            )
        node.deliver(envelope)

    def _fail_delivery(self, envelope: Envelope, *, reason: str) -> None:
        """Handle a message that cannot reach its destination."""
        if self.model == PESSIMISTIC:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    self.sim.clock._now,
                    "drop",
                    site=envelope.destination,
                    source=envelope.source,
                    reason=reason,
                    payload=describe_payload(envelope.payload),
                )
            return
        # Optimistic model: return the message to the sender.  The bounce
        # itself takes a propagation delay back to the source.
        sim = self.sim
        delay = self._constant_delay
        if delay is None:
            delay = self.latency.sample(sim.rng, envelope.destination, envelope.source)
        sim._push(
            sim.clock._now + delay,
            self._deliver_bounce,
            EventKind.MESSAGE_BOUNCE,
            "bounce",
            0,
            Undeliverable(envelope),
        )
        if self._tracing:
            self.trace.record(
                self.sim.clock._now,
                "bounce",
                site=envelope.source,
                destination=envelope.destination,
                reason=reason,
                payload=describe_payload(envelope.payload),
                envelope_id=envelope.envelope_id,
            )

    def _deliver_bounce(self, undeliverable: Undeliverable) -> None:
        envelope = undeliverable.original
        node = self._nodes.get(envelope.source)
        self._bounced += 1
        now = self.sim.clock._now
        if node is None or node.crashed:
            self._dropped += 1
            if self._tracing:
                self.trace.record(
                    now,
                    "drop",
                    site=envelope.source,
                    reason="bounce-target-crashed",
                    payload=describe_payload(envelope.payload),
                )
            return
        if self._tracing:
            self.trace.record(
                now,
                "deliver-undeliverable",
                site=envelope.source,
                payload=describe_payload(envelope.payload),
                intended=envelope.destination,
                envelope_id=envelope.envelope_id,
            )
        envelope_id = self._next_envelope_id
        self._next_envelope_id = envelope_id + 1
        bounce_envelope = Envelope(
            envelope_id, envelope.destination, envelope.source, undeliverable, now
        )
        node.deliver(bounce_envelope)

    def _on_connectivity_change(self, spec: Optional[PartitionSpec]) -> None:
        """Bounce (or drop) in-flight messages that now cross the boundary.

        This implements the paper's assumption 1: "all undeliverable messages
        due to network partitioning are returned to the sender" -- including
        the ones that were outstanding at the instant the partition occurred.
        """
        if spec is None:
            return
        for receipt in list(self._in_flight.values()):
            envelope = receipt.envelope
            if not spec.separated(envelope.source, envelope.destination):
                continue
            receipt.event.cancel()
            receipt.resolved = True
            del self._in_flight[envelope.envelope_id]
            self._fail_delivery(envelope, reason="partition-cut-in-flight")


def describe_payload(payload: Any) -> str:
    """Short human-readable description of a message payload for traces."""
    # Hot path first: protocol messages carry a string `kind` attribute
    # (Undeliverable deliberately does not, so the order is safe).
    kind = getattr(payload, "kind", None)
    if kind is not None:
        return kind if type(kind) is str else str(kind)
    if isinstance(payload, Undeliverable):
        return f"UD({describe_payload(payload.original.payload)})"
    return payload if isinstance(payload, str) else type(payload).__name__
