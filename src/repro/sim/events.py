"""Event representation for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned at scheduling time by the owning simulator, which makes simultaneous
events execute in the order they were scheduled -- the whole simulation is
therefore a deterministic function of its inputs.

The kernel keeps the ordering key *outside* the event: heap entries are flat
``(time, priority, sequence, event)`` tuples, so heap comparisons are C-speed
tuple comparisons and never call back into Python.  :class:`Event` itself is a
``__slots__`` payload record -- it carries the action to run and cancellation
state, not comparison logic.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional


class EventKind(enum.Enum):
    """Classification of kernel events, mainly for traces and debugging."""

    MESSAGE_DELIVERY = "message-delivery"
    MESSAGE_BOUNCE = "message-bounce"
    TIMER = "timer"
    PARTITION = "partition"
    HEAL = "heal"
    CRASH = "crash"
    RECOVER = "recover"
    GENERIC = "generic"


_sequence = itertools.count()


def next_sequence() -> int:
    """Return the next *process-global* scheduling sequence number.

    Retained for backwards compatibility only: the kernel now assigns
    sequence numbers from a per-:class:`~repro.sim.kernel.Simulator` counter,
    so interleaving two simulators in one process cannot perturb either
    simulator's event order (and a run's trace no longer depends on what ran
    before it in the same process).
    """
    return next(_sequence)


def _noop() -> None:
    """Default event action."""


class Event:
    """A single scheduled occurrence.

    Attributes:
        time: simulated time at which the event fires.
        priority: smaller numbers fire first among events at the same time.
        sequence: insertion order tie-breaker (assigned by the simulator).
        kind: coarse classification used by traces.
        action: callable executed when the event fires.  Called with
            :attr:`arg` when ``arg`` is not ``None``, otherwise with no
            arguments -- passing a bound method plus an argument avoids a
            closure allocation per scheduled event on the hot paths.
        arg: optional single argument for :attr:`action`.
        label: human readable description for traces.
        cancelled: cancelled events are skipped when popped.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "kind",
        "action",
        "arg",
        "label",
        "cancelled",
        "_sim",
        "_queued",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        kind: EventKind = EventKind.GENERIC,
        action: Callable[..., Any] = _noop,
        label: str = "",
        cancelled: bool = False,
        arg: Any = None,
        sim: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.kind = kind
        self.action = action
        self.arg = arg
        self.label = label
        self.cancelled = cancelled
        self._sim = sim
        self._queued = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"sequence={self.sequence}, kind={self.kind!r}, label={self.label!r}, "
            f"cancelled={self.cancelled})"
        )

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be ignored when popped.

        The owning simulator is notified so its live-event accounting (and
        lazy heap compaction) stays exact; cancelling an event that already
        fired or was already cancelled is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None and self._queued:
            sim._note_cancel()

    def fire(self) -> Any:
        """Execute the event's action (the kernel calls this)."""
        arg = self.arg
        if arg is None:
            return self.action()
        return self.action(arg)
