"""Event representation for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned at scheduling time, which makes simultaneous events execute in the
order they were scheduled -- the whole simulation is therefore a
deterministic function of its inputs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class EventKind(enum.Enum):
    """Classification of kernel events, mainly for traces and debugging."""

    MESSAGE_DELIVERY = "message-delivery"
    MESSAGE_BOUNCE = "message-bounce"
    TIMER = "timer"
    PARTITION = "partition"
    HEAL = "heal"
    CRASH = "crash"
    RECOVER = "recover"
    GENERIC = "generic"


_sequence = itertools.count()


def next_sequence() -> int:
    """Return the next global scheduling sequence number."""
    return next(_sequence)


@dataclass(order=True)
class Event:
    """A single scheduled occurrence.

    Attributes:
        time: simulated time at which the event fires.
        priority: smaller numbers fire first among events at the same time.
        sequence: insertion order tie-breaker (assigned by the simulator).
        kind: coarse classification used by traces.
        action: zero-argument callable executed when the event fires.
        label: human readable description for traces.
        cancelled: cancelled events are skipped when popped.
    """

    time: float
    priority: int
    sequence: int
    kind: EventKind = field(compare=False, default=EventKind.GENERIC)
    action: Callable[[], Any] = field(compare=False, default=lambda: None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be ignored when popped."""
        self.cancelled = True

    def fire(self) -> Any:
        """Execute the event's action (the kernel calls this)."""
        return self.action()
