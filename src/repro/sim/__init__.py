"""Discrete-event simulation substrate.

The paper reasons about distributed commit protocols running over a
point-to-point network whose end-to-end propagation delay is bounded by ``T``
and which may split into exactly two groups ("simple partitioning").  This
package provides the executable stand-in for that 1987 testbed:

* :mod:`repro.sim.kernel` -- a deterministic discrete-event simulator,
* :mod:`repro.sim.network` -- a message-passing network with optimistic
  (return undeliverable messages) and pessimistic (lose messages) partition
  semantics,
* :mod:`repro.sim.partition` -- partition specifications and schedules
  (simple, multiple, transient),
* :mod:`repro.sim.node` -- simulated sites with mailboxes and named timers,
* :mod:`repro.sim.failures` -- crash / recovery injection,
* :mod:`repro.sim.trace` -- structured traces consumed by the analysis layer.

Every run is a pure function of its configuration and seed, which is what
makes the exhaustive sweeps behind Theorem 9 and the Section 6 case table
practical.
"""

from repro.sim.clock import Clock
from repro.sim.cluster import Cluster
from repro.sim.events import Event, EventKind
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.latency import ConstantLatency, LatencyModel, PerLinkLatency, UniformLatency
from repro.sim.network import (
    DeliveryReceipt,
    Envelope,
    Network,
    OPTIMISTIC,
    PESSIMISTIC,
    Undeliverable,
)
from repro.sim.node import Node, Timer, is_undeliverable
from repro.sim.partition import (
    PartitionEvent,
    PartitionManager,
    PartitionSchedule,
    PartitionSpec,
)
from repro.sim.failures import CrashEvent, CrashSchedule, FailureInjector
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Clock",
    "Cluster",
    "ConstantLatency",
    "CrashEvent",
    "CrashSchedule",
    "DeliveryReceipt",
    "Envelope",
    "Event",
    "EventKind",
    "FailureInjector",
    "LatencyModel",
    "Network",
    "Node",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "PartitionEvent",
    "PartitionManager",
    "PartitionSchedule",
    "PartitionSpec",
    "PerLinkLatency",
    "SimulationError",
    "Simulator",
    "Timer",
    "Trace",
    "TraceRecord",
    "Undeliverable",
    "UniformLatency",
    "is_undeliverable",
]
