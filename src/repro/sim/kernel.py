"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small: an event heap, a clock, and helpers for
scheduling.  Determinism is the load-bearing property -- the reproduction of
Theorem 9 and the Section 6 case table sweeps thousands of partition
placements and asserts exact worst-case bounds, which is only meaningful if a
given configuration always produces the same execution.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Iterable, Optional

from repro.sim.clock import Clock
from repro.sim.events import Event, EventKind, next_sequence


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class Simulator:
    """Event-driven simulator with deterministic tie-breaking.

    Args:
        seed: seed for the simulator-owned random number generator.  All
            stochastic components (latency models, workload generators) must
            draw from :attr:`rng` so that a run is reproducible from
            ``(configuration, seed)`` alone.
        start_time: initial clock value.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self.rng = random.Random(seed)
        self._heap: list[Event] = []
        self._stopped = False
        self._events_executed = 0
        self._max_events: Optional[int] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far."""
        return self._events_executed

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past: delay={delay}")
        return self.schedule_at(
            self.now + delay, action, kind=kind, label=label, priority=priority
        )

    def schedule_at(
        self,
        when: float,
        action: Callable[[], Any],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule an event in the past: now={self.now}, when={when}"
            )
        event = Event(
            time=when,
            priority=priority,
            sequence=next_sequence(),
            kind=kind,
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that the run loop stop after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None

    def step(self) -> Optional[Event]:
        """Execute the next live event and return it (``None`` if none left)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._events_executed += 1
            event.fire()
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the event queue drains, ``until`` is reached, or stopped.

        Args:
            until: inclusive time horizon.  Events scheduled strictly after
                ``until`` are left in the queue.
            max_events: safety valve against runaway protocols; raises
                :class:`SimulationError` when exceeded.

        Returns:
            The simulated time at which the run loop stopped.
        """
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            # Find the next live event without executing it yet so that we
            # can honour the `until` horizon exactly.
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            self._events_executed += 1
            executed += 1
            event.fire()
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a protocol livelock"
                )
        if until is not None and self.now < until and not self._stopped:
            self.clock.advance_to(until)
        return self.now

    def run_until_quiescent(self, *, max_events: int = 1_000_000) -> float:
        """Run until no events remain (with a safety cap)."""
        return self.run(until=None, max_events=max_events)

    def drain(self) -> Iterable[Event]:
        """Remove and return all still-queued events (used by tests)."""
        events = [event for event in self._heap if not event.cancelled]
        self._heap.clear()
        return events
