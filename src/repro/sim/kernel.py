"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small: an event heap, a clock, and helpers for
scheduling.  Determinism is the load-bearing property -- the reproduction of
Theorem 9 and the Section 6 case table sweeps thousands of partition
placements and asserts exact worst-case bounds, which is only meaningful if a
given configuration always produces the same execution.

The hot-path representation (this is the innermost loop of every sweep):

* the heap holds flat ``(time, priority, sequence, event)`` tuples, so
  ordering is a C-speed tuple comparison that never reaches the event object;
* sequence numbers come from a per-``Simulator`` counter, so two simulators
  in one process cannot perturb each other's event order and a run's
  execution is a function of its own schedule alone;
* cancelled events are skipped when popped ("lazy deletion") and counted,
  and when they outnumber the live entries the heap is compacted in place --
  re-armed timers therefore cannot bloat the heap across a long run;
* ``peek_time``/``pending`` are O(1) amortized: popped-cancelled-head
  cleanup plus the live counter, never a scan or sort.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Iterable, Optional

from repro.sim.clock import Clock
from repro.sim.events import Event, EventKind

#: Compaction threshold: rebuild the heap once more than this many cancelled
#: entries are queued *and* they outnumber the live entries.  Small enough to
#: bound memory on timer-churn-heavy workloads, large enough that short runs
#: never pay a rebuild.
_COMPACT_MIN_CANCELLED = 64

#: Observability hook, installed by :func:`repro.obs.metrics.set_active`
#: (the kernel stays import-free of the obs layer).  Called once per
#: :meth:`Simulator.run` return with that run's deltas -- counters only,
#: gated exactly like the ``_tracing`` flags: when no registry is active
#: the hook is ``None`` and the cost is one ``is None`` check per run()
#: call, never per event.
_METRICS_HOOK: Optional[Callable[[int, int, int, int], None]] = None


def set_metrics_hook(
    hook: Optional[Callable[[int, int, int, int], None]]
) -> None:
    """Install (or clear, with ``None``) the per-run metrics callback.

    The hook receives ``(scheduled, executed, cancelled, compactions)``
    deltas of one :meth:`Simulator.run` call.
    """
    global _METRICS_HOOK
    _METRICS_HOOK = hook


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class Simulator:
    """Event-driven simulator with deterministic tie-breaking.

    Args:
        seed: seed for the simulator-owned random number generator.  All
            stochastic components (latency models, workload generators) must
            draw from :attr:`rng` so that a run is reproducible from
            ``(configuration, seed)`` alone.
        start_time: initial clock value.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self.seed = seed
        # Seeding a Mersenne Twister costs several microseconds -- real money
        # when a sweep builds one Simulator per scenario and deterministic
        # latency models never draw from it -- so the generator is built on
        # first access.
        self._rng: Optional[random.Random] = None
        # Heap of (time, priority, sequence, Event); the unique sequence
        # guarantees the comparison never falls through to the Event.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._cancelled_in_heap = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._stopped = False
        self._events_executed = 0
        # High-water marks of what the metrics hook has already reported,
        # so schedules/cancellations between run() calls (arrivals queued
        # before the run, cross-run cancellations) are never lost.
        self._reported_sequence = 0
        self._reported_cancelled = 0
        self._reported_compactions = 0

    @property
    def rng(self) -> random.Random:
        """The simulator-owned random number generator (built lazily)."""
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(self.seed)
        return rng

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far."""
        return self._events_executed

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        priority: int = 0,
        arg: Any = None,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now.

        ``arg`` (when not ``None``) is passed to ``action`` at fire time;
        hot callers pass a bound method plus its argument instead of
        allocating a closure per event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past: delay={delay}")
        return self._push(self.clock._now + delay, action, kind, label, priority, arg)

    def schedule_at(
        self,
        when: float,
        action: Callable[..., Any],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        priority: int = 0,
        arg: Any = None,
    ) -> Event:
        """Schedule ``action`` to run at absolute time ``when``."""
        if when < self.clock._now:
            raise SimulationError(
                f"cannot schedule an event in the past: now={self.now}, when={when}"
            )
        return self._push(when, action, kind, label, priority, arg)

    def _push(
        self,
        when: float,
        action: Callable[..., Any],
        kind: EventKind,
        label: str,
        priority: int,
        arg: Any,
    ) -> Event:
        sequence = self._sequence
        self._sequence = sequence + 1
        # Positional construction: this is the hottest allocation in a sweep.
        event = Event(when, priority, sequence, kind, action, label, False, arg, self)
        event._queued = True
        heapq.heappush(self._heap, (when, priority, sequence, event))
        return event

    # ------------------------------------------------------------------
    # cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still queued."""
        self._cancelled_total += 1
        count = self._cancelled_in_heap = self._cancelled_in_heap + 1
        if count > _COMPACT_MIN_CANCELLED and count * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: aliases survive)."""
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that the run loop stop after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_in_heap

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty.

        O(1) amortized: cancelled heads are popped (each such pop is paid
        for by the cancellation that created it) and then the heap root is
        inspected directly.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3]._queued = False
            self._cancelled_in_heap -= 1
        return heap[0][0] if heap else None

    def step(self) -> Optional[Event]:
        """Execute the next live event and return it (``None`` if none left)."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            event._queued = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.clock.advance_to(event.time)
            self._events_executed += 1
            event.fire()
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the event queue drains, ``until`` is reached, or stopped.

        Args:
            until: inclusive time horizon.  Events scheduled strictly after
                ``until`` are left in the queue.
            max_events: safety valve against runaway protocols; raises
                :class:`SimulationError` *before* executing event
                ``max_events + 1``, so exactly ``max_events`` events run.

        Returns:
            The simulated time at which the run loop stopped.
        """
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        executed = 0
        # `heap` stays valid across event actions: compaction mutates the
        # list in place and nothing else rebinds self._heap.
        while heap and not self._stopped:
            # Peek the next live event without executing it yet so that we
            # can honour the `until` horizon exactly.
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                event._queued = False
                self._cancelled_in_heap -= 1
                continue
            when = entry[0]
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a protocol livelock"
                )
            heappop(heap)
            event._queued = False
            # Heap order makes `when` monotone, so the clock's backwards
            # check is redundant here; assign directly.
            clock._now = when
            self._events_executed += 1
            executed += 1
            action = event.action
            arg = event.arg
            if arg is None:
                action()
            else:
                action(arg)
        if until is not None and clock._now < until and not self._stopped:
            clock._now = float(until)
        if _METRICS_HOOK is not None:
            # Deltas since the last report (or simulator creation), so
            # events scheduled/cancelled outside the run loop still count.
            _METRICS_HOOK(
                self._sequence - self._reported_sequence,
                executed,
                self._cancelled_total - self._reported_cancelled,
                self._compactions - self._reported_compactions,
            )
            self._reported_sequence = self._sequence
            self._reported_cancelled = self._cancelled_total
            self._reported_compactions = self._compactions
        return clock._now

    def run_until_quiescent(self, *, max_events: int = 1_000_000) -> float:
        """Run until no events remain (with a safety cap)."""
        return self.run(until=None, max_events=max_events)

    def drain(self) -> Iterable[Event]:
        """Remove and return all still-queued live events (used by tests)."""
        events = [entry[3] for entry in self._heap if not entry[3].cancelled]
        for entry in self._heap:
            entry[3]._queued = False
        self._heap.clear()
        self._cancelled_in_heap = 0
        return events
