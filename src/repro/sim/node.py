"""Simulated sites.

A :class:`Node` is one site of the distributed database: it owns a mailbox
(fed by the network), a set of named timers, and a crash flag.  Protocol
logic is supplied by a *role* object attached with :meth:`Node.attach`; the
node forwards deliveries, timeouts and crash/recovery notifications to it.

Delivery and timer dispatch are on the sweep hot path, so the role's
``on_message`` / ``on_timeout`` hooks are resolved once at :meth:`attach`
time instead of per event, and timer events carry the timer name as the
event argument (no closure per (re)arm).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.sim.events import Event, EventKind
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.network import Envelope, Network, Undeliverable, describe_payload
from repro.sim.trace import Trace


@runtime_checkable
class Role(Protocol):
    """Protocol logic hosted by a node.

    Roles only need to implement the hooks they care about; the node checks
    for each method's presence before calling it.
    """

    def on_start(self) -> None:  # pragma: no cover - protocol definition
        """Called once when the simulation run begins."""

    def on_message(self, payload: Any, envelope: Envelope) -> None:  # pragma: no cover
        """Called for every delivered message (including ``Undeliverable``)."""

    def on_timeout(self, timer: "Timer") -> None:  # pragma: no cover
        """Called when one of the node's timers fires."""

    def on_crash(self) -> None:  # pragma: no cover
        """Called when the node crashes."""

    def on_recover(self) -> None:  # pragma: no cover
        """Called when the node recovers from a crash."""


class Timer:
    """A named timer owned by a node."""

    __slots__ = ("name", "owner", "deadline", "event", "payload")

    def __init__(
        self,
        name: str,
        owner: int,
        deadline: float,
        event: Event,
        payload: Any = None,
    ) -> None:
        self.name = name
        self.owner = owner
        self.deadline = deadline
        self.event = event
        self.payload = payload

    @property
    def cancelled(self) -> bool:
        """Whether the timer was cancelled before firing."""
        return self.event.cancelled

    def cancel(self) -> None:
        """Cancel the timer (no-op if it already fired)."""
        self.event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer(name={self.name!r}, owner={self.owner}, deadline={self.deadline})"


class Node:
    """One simulated site.

    Args:
        node_id: site identifier (the paper numbers sites 1..n with site 1
            the master).
        sim: owning simulator.
        network: network used for sends; the node registers itself.
        trace: shared trace (defaults to the network's trace).
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        *,
        trace: Optional[Trace] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.trace = trace if trace is not None else network.trace
        # Cached so note() / timer fires skip disabled-trace records.
        self._tracing: bool = self.trace.enabled
        self.crashed = False
        self.role: Optional[Role] = None
        self._on_message: Optional[Any] = None
        self._on_timeout: Optional[Any] = None
        self._timers: dict[str, Timer] = {}
        self._started = False
        # Byzantine hook: called as interceptor(source, destination, payload)
        # before every send; it may rewrite the payload or return None to
        # silently swallow the send.  None (the default) costs one attribute
        # check on the send path.
        self._send_interceptor: Optional[Any] = None
        network.register(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, crashed={self.crashed})"

    # ------------------------------------------------------------------
    # role wiring
    # ------------------------------------------------------------------
    def attach(self, role: Role) -> None:
        """Attach the protocol role driving this node.

        The hot dispatch hooks (``on_message`` / ``on_timeout``) are resolved
        here, once, so deliveries and timer fires skip the per-event
        ``getattr``.
        """
        self.role = role
        self._on_message = getattr(role, "on_message", None)
        self._on_timeout = getattr(role, "on_timeout", None)

    def start(self) -> None:
        """Schedule the role's ``on_start`` hook at the current time."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(0.0, self._start_role, label=f"start site {self.node_id}")

    def _start_role(self) -> None:
        if self.crashed or self.role is None:
            return
        hook = getattr(self.role, "on_start", None)
        if hook is not None:
            hook()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, destination: int, payload: Any) -> Optional[Envelope]:
        """Send ``payload`` to ``destination`` (dropped if this node crashed)."""
        if self.crashed:
            return None
        interceptor = self._send_interceptor
        if interceptor is not None:
            payload = interceptor(self.node_id, destination, payload)
            if payload is None:
                return None
        return self.network.send(self.node_id, destination, payload)

    def multicast(self, destinations: list[int], payload: Any) -> list[Envelope]:
        """Send ``payload`` to every site in ``destinations``."""
        if self.crashed:
            return []
        if self._send_interceptor is not None:
            sent = (self.send(destination, payload) for destination in destinations)
            return [envelope for envelope in sent if envelope is not None]
        return self.network.multicast(self.node_id, destinations, payload)

    def deliver(self, envelope: Envelope) -> None:
        """Called by the network when a message (or bounce) arrives."""
        if self.crashed:
            return
        handler = self._on_message
        if handler is not None:
            handler(envelope.payload, envelope)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def set_timer(self, name: str, delay: float, payload: Any = None) -> Timer:
        """(Re)arm the named timer to fire ``delay`` from now.

        Re-arming an existing timer cancels the previous instance, which is
        how the protocol's "reset timer 5T" steps are expressed.
        """
        self.cancel_timer(name)
        sim = self.sim
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past: delay={delay}")
        deadline = sim.clock._now + delay
        # Timers fire *after* message deliveries scheduled for the same
        # instant (priority 10): a timeout of exactly "2T" must not preempt a
        # message that arrives exactly at the 2T mark (the paper's bounds are
        # inclusive).  Inlined sim.schedule() -- timers are re-armed on every
        # protocol round, making this one of the hottest scheduling sites.
        event = sim._push(deadline, self._fire_timer, EventKind.TIMER, name, 10, name)
        timer = Timer(
            name=name,
            owner=self.node_id,
            deadline=deadline,
            event=event,
            payload=payload,
        )
        self._timers[name] = timer
        return timer

    def cancel_timer(self, name: str) -> None:
        """Cancel the named timer if it is armed."""
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.event.cancel()

    def cancel_all_timers(self) -> None:
        """Cancel every armed timer."""
        timers = self._timers
        if timers:
            for timer in timers.values():
                timer.event.cancel()
            timers.clear()

    def timer_armed(self, name: str) -> bool:
        """True when the named timer is armed and has not fired."""
        timer = self._timers.get(name)
        return timer is not None and not timer.cancelled

    def _fire_timer(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is None or timer.event.cancelled or self.crashed:
            return
        if self._tracing:
            self.trace.record(
                self.sim.clock._now, "timeout", site=self.node_id, timer=name
            )
        handler = self._on_timeout
        if handler is not None:
            handler(timer)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the site: cancel timers, drop future messages until recovery."""
        if self.crashed:
            return
        self.crashed = True
        self.cancel_all_timers()
        self.trace.record(self.sim.now, "crash", site=self.node_id)
        if self.role is not None:
            hook = getattr(self.role, "on_crash", None)
            if hook is not None:
                hook()

    def recover(self) -> None:
        """Recover the site and notify the role."""
        if not self.crashed:
            return
        self.crashed = False
        self.trace.record(self.sim.now, "recover", site=self.node_id)
        if self.role is not None:
            hook = getattr(self.role, "on_recover", None)
            if hook is not None:
                hook()

    # ------------------------------------------------------------------
    # trace helpers used by roles
    # ------------------------------------------------------------------
    def note(self, category: str, **detail: Any) -> None:
        """Record a role-level trace entry attributed to this site."""
        if self._tracing:
            self.trace.record(
                self.sim.clock._now, category, site=self.node_id, **detail
            )

    @staticmethod
    def describe(payload: Any) -> str:
        """Human-readable payload description (re-exported for roles)."""
        return describe_payload(payload)


def is_undeliverable(payload: Any) -> bool:
    """True when ``payload`` is a bounced message (the paper's ``UD(msg)``)."""
    return isinstance(payload, Undeliverable)
