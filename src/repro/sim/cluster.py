"""Convenience wiring of a whole simulated system.

A :class:`Cluster` bundles the simulator, network, partition manager, nodes
and failure injector for ``n`` sites numbered ``1..n`` (site 1 is, by the
paper's convention, the master of any transaction it coordinates).  The
protocol harness and all experiments build on this class instead of wiring
the pieces by hand.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.events import EventKind
from repro.sim.failures import CrashSchedule, FailureInjector, FaultPlan
from repro.sim.kernel import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import Network, OPTIMISTIC
from repro.sim.node import Node
from repro.sim.partition import PartitionManager, PartitionSchedule
from repro.sim.trace import Trace


class Cluster:
    """A complete simulated deployment of ``n`` database sites.

    Args:
        n_sites: number of participating sites; they are numbered ``1..n``.
        latency: network latency model (default: constant delay of 1.0, i.e.
            every message takes exactly ``T``).
        model: partition model, ``"optimistic"`` (return undeliverable
            messages) or ``"pessimistic"`` (lose them).
        seed: seed for the simulator's random number generator.
        trace: shared trace to use (default: a fresh :class:`Trace`; pass a
            :class:`~repro.sim.trace.NullTrace` to skip trace collection).
    """

    def __init__(
        self,
        n_sites: int,
        *,
        latency: Optional[LatencyModel] = None,
        model: str = OPTIMISTIC,
        seed: int = 0,
        trace: Optional[Trace] = None,
    ) -> None:
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        self.n_sites = n_sites
        self.sim = Simulator(seed=seed)
        self.trace = trace if trace is not None else Trace()
        self.partitions = PartitionManager()
        self.network = Network(
            self.sim,
            latency=latency or ConstantLatency(1.0),
            partitions=self.partitions,
            model=model,
            trace=self.trace,
        )
        self.nodes: dict[int, Node] = {
            site: Node(site, self.sim, self.network, trace=self.trace)
            for site in range(1, n_sites + 1)
        }
        self.failures = FailureInjector(self.sim, self.nodes.values())

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def max_delay(self) -> float:
        """The paper's ``T`` for this cluster's network."""
        return self.network.max_delay

    def site_ids(self) -> list[int]:
        """All site ids, ``[1, ..., n]``."""
        return sorted(self.nodes)

    def node(self, site: int) -> Node:
        """The node for ``site``."""
        return self.nodes[site]

    # ------------------------------------------------------------------
    # schedule installation
    # ------------------------------------------------------------------
    def apply_partition_schedule(self, schedule: PartitionSchedule) -> None:
        """Schedule every partition / heal event in ``schedule``."""
        for event in schedule:
            spec = event.spec
            kind = EventKind.HEAL if event.is_heal else EventKind.PARTITION
            label = "heal" if event.is_heal else f"partition {spec}"
            self.sim.schedule_at(
                event.time,
                lambda s=spec, t=event.time: self._apply_partition(s, t),
                kind=kind,
                label=label,
            )

    def _apply_partition(self, spec, at: float) -> None:
        self.trace.record(
            at,
            "partition" if spec is not None else "heal",
            site=None,
            spec=str(spec) if spec is not None else "healed",
        )
        self.partitions.apply(spec, at=at)

    def apply_crash_schedule(self, schedule: CrashSchedule) -> None:
        """Schedule every crash / recovery in ``schedule``."""
        self.failures.apply(schedule)

    def apply_fault_plan(self, plan: FaultPlan) -> None:
        """Install a unified fault plan: crashes plus message-level faults.

        Byzantine behaviour is *not* wired here -- it lives at the protocol
        role layer (see :mod:`repro.protocols.byzantine`), because equivocation
        rewrites protocol messages the network treats as opaque payloads.
        """
        plan.validate(self.n_sites)
        if plan.crashes:
            self.apply_crash_schedule(plan.crash_schedule())
        if plan.has_message_faults:
            self.network.install_fault_plan(plan)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        """Start every node's attached role."""
        for site in self.site_ids():
            self.nodes[site].start()

    def run(self, until: Optional[float] = None, *, max_events: int = 1_000_000) -> float:
        """Run the simulation (see :meth:`repro.sim.kernel.Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)
