"""Network latency models.

The paper expresses every timeout in units of ``T``, the longest end-to-end
propagation delay.  A latency model therefore exposes both a per-message
sample and an :attr:`upper_bound` that plays the role of ``T``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional


class LatencyModel(ABC):
    """Samples one-way message delays bounded by ``T``."""

    #: When every delay equals one fixed value regardless of link and rng,
    #: the model sets this to that value; the network then skips both the
    #: per-message :meth:`sample` call and the simulator's rng entirely.
    constant_delay: Optional[float] = None

    @property
    @abstractmethod
    def upper_bound(self) -> float:
        """The longest possible end-to-end delay (the paper's ``T``)."""

    @abstractmethod
    def sample(self, rng: random.Random, source: int, destination: int) -> float:
        """Delay for one message from ``source`` to ``destination``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(T={self.upper_bound})"


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units.

    Worst-case timing experiments (Figs. 5-7, 9) use this model with
    ``delay = T`` because the paper's bounds are derived for messages that all
    take the maximum delay.
    """

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError(f"latency must be positive: {delay}")
        self._delay = float(delay)
        self.constant_delay = self._delay

    @property
    def upper_bound(self) -> float:
        return self._delay

    def sample(self, rng: random.Random, source: int, destination: int) -> float:
        return self._delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` with ``high`` playing ``T``."""

    def __init__(self, low: float, high: float) -> None:
        if low <= 0 or high < low:
            raise ValueError(f"invalid latency range: [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    @property
    def upper_bound(self) -> float:
        return self._high

    @property
    def lower_bound(self) -> float:
        """Smallest possible delay."""
        return self._low

    def sample(self, rng: random.Random, source: int, destination: int) -> float:
        return rng.uniform(self._low, self._high)


class PerLinkLatency(LatencyModel):
    """Fixed per-link delays with a default for unlisted links.

    Useful for constructing the *specific* message orderings behind the
    Section 3 counterexamples and the Section 6 cases, where one prepare
    message must be slower than another.
    """

    def __init__(self, default: float, overrides: dict[tuple[int, int], float]) -> None:
        if default <= 0:
            raise ValueError(f"latency must be positive: {default}")
        for link, value in overrides.items():
            if value <= 0:
                raise ValueError(f"latency must be positive for link {link}: {value}")
        self._default = float(default)
        self._overrides = dict(overrides)

    @property
    def upper_bound(self) -> float:
        return max([self._default, *self._overrides.values()])

    def sample(self, rng: random.Random, source: int, destination: int) -> float:
        return self._overrides.get((source, destination), self._default)
