"""Structured execution traces.

Every interesting occurrence in a run -- sends, deliveries, bounces, timer
fires, state transitions, decisions, crashes -- is appended to a
:class:`Trace`.  The analysis layer (atomicity checking, blocking detection,
timing-bound measurement) works exclusively from traces, which keeps protocol
code free of measurement concerns.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional


class TraceRecord:
    """One trace entry.

    A ``__slots__`` record rather than a dataclass: traces are written on
    every send/deliver/transition of every simulated run, so construction
    cost is on the sweep hot path.

    Attributes:
        time: simulated time of the occurrence.
        category: coarse label, e.g. ``"send"``, ``"deliver"``, ``"bounce"``,
            ``"timeout"``, ``"transition"``, ``"decision"``, ``"partition"``.
        site: site id the record concerns, or ``None`` for network-wide events.
        detail: free-form payload describing the occurrence.
    """

    __slots__ = ("time", "category", "site", "detail")

    def __init__(
        self,
        time: float,
        category: str,
        site: Optional[int] = None,
        detail: Optional[dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.category = category
        self.site = site
        self.detail = {} if detail is None else detail

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into :attr:`detail`."""
        return self.detail.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.site == other.site
            and self.detail == other.detail
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecord(time={self.time}, category={self.category!r}, "
            f"site={self.site}, detail={self.detail!r})"
        )


class Trace:
    """An append-only list of :class:`TraceRecord` with query helpers."""

    #: Writers on hot paths (network, node) consult this flag to skip the
    #: record *and* the cost of building its detail payload; see
    #: :class:`NullTrace`.
    enabled = True

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._append = self._records.append

    def record(
        self,
        time: float,
        category: str,
        site: Optional[int] = None,
        **detail: Any,
    ) -> TraceRecord:
        """Append a record and return it."""
        entry = TraceRecord(time, category, site, detail)
        self._append(entry)
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self) -> tuple[TraceRecord, ...]:
        """All records in chronological (append) order."""
        return tuple(self._records)

    def filter(
        self,
        category: Optional[str] = None,
        site: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Records matching all the provided criteria."""
        result = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if site is not None and record.site != site:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def first(
        self,
        category: Optional[str] = None,
        site: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> Optional[TraceRecord]:
        """Earliest matching record or ``None``."""
        matches = self.filter(category=category, site=site, predicate=predicate)
        return matches[0] if matches else None

    def last(
        self,
        category: Optional[str] = None,
        site: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> Optional[TraceRecord]:
        """Latest matching record or ``None``."""
        matches = self.filter(category=category, site=site, predicate=predicate)
        return matches[-1] if matches else None

    def count(self, category: str, **match: Any) -> int:
        """Number of records in ``category`` whose detail matches ``match``."""
        total = 0
        for record in self._records:
            if record.category != category:
                continue
            if all(record.detail.get(key) == value for key, value in match.items()):
                total += 1
        return total

    def categories(self) -> set[str]:
        """Set of categories present in the trace."""
        return {record.category for record in self._records}

    def merge(self, others: Iterable["Trace"]) -> "Trace":
        """Return a new trace containing this trace's and ``others``' records."""
        merged = Trace()
        records = list(self._records)
        for other in others:
            records.extend(other.records())
        records.sort(key=lambda r: r.time)
        # Extend rather than rebind: the bound-append fast path must keep
        # pointing at the live list.
        merged._records.extend(records)
        return merged


class NullTrace(Trace):
    """A trace that records nothing.

    Used by the sweep engine when no trace-derived measure was requested:
    a :class:`~repro.engine.summary.RunSummary` is computed entirely from
    protocol-role and database state, so the per-run trace is write-only
    ballast.  Substituting a ``NullTrace`` (and having the hot writers check
    :attr:`enabled` before building record payloads) removes that cost
    without touching scheduling -- the event sequence, and therefore every
    summary, is byte-for-byte identical either way.
    """

    enabled = False

    def record(
        self,
        time: float,
        category: str,
        site: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Discard the record (writers may also skip the call entirely)."""
        return None
