"""One database site.

A :class:`DatabaseSite` owns the storage, write-ahead log, lock table and
recovery manager for a single participating site, and exposes the operations
commit-protocol roles need:

* :meth:`execute` -- partially execute a transaction (acquire locks, stash
  the intended writes), producing the site's yes/no vote;
* :meth:`prepare` -- journal the prepared state (3PC's ``prepare`` step);
* :meth:`commit` / :meth:`abort` -- terminate the transaction locally,
  applying or discarding the writes and releasing locks;
* :meth:`crash` / :meth:`recover` -- lose volatile state and replay the log.

The commit decision is *not* made here -- that is the job of the protocols in
:mod:`repro.protocols`; the site only guarantees local atomicity exactly as
Section 2 of the paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.db.locks import LockConflict, LockManager, LockMode, LockRequest
from repro.db.recovery import RecoveryManager, RecoveryReport
from repro.db.storage import KeyValueStore
from repro.db.transactions import Transaction, TransactionStatus
from repro.db.wal import WriteAheadLog


class SiteState(enum.Enum):
    """Whether the site is up or crashed."""

    UP = "up"
    CRASHED = "crashed"


@dataclass
class _PendingTransaction:
    """Volatile per-transaction bookkeeping held while a transaction is open."""

    transaction: Transaction
    writes: dict[str, Any]
    status: TransactionStatus = TransactionStatus.ACTIVE
    vote: Optional[str] = None
    decided_at: Optional[float] = None
    blocked_since: Optional[float] = None


class DatabaseSite:
    """The database machinery of one participating site."""

    def __init__(self, site: int, *, initial_data: Optional[Mapping[str, Any]] = None) -> None:
        self.site = site
        self.store = KeyValueStore(initial_data)
        self.wal = WriteAheadLog(site)
        self.locks = LockManager(site)
        self.recovery = RecoveryManager(site, self.wal, self.store)
        self.state = SiteState.UP
        self._pending: dict[str, _PendingTransaction] = {}
        self._decisions: dict[str, str] = {}

    # ------------------------------------------------------------------
    # transaction execution
    # ------------------------------------------------------------------
    def execute(self, transaction: Transaction, *, now: float = 0.0) -> str:
        """Partially execute ``transaction`` and return the site's vote.

        The site votes ``"yes"`` when it can acquire all required locks and
        ``"no"`` otherwise (a unilateral abort).  Votes and the update
        information are journalled so that the site can survive a crash
        between voting and the final decision.
        """
        self._require_up()
        txn_id = transaction.transaction_id
        if txn_id in self._decisions:
            raise ValueError(f"transaction {txn_id} already terminated at site {self.site}")
        self.wal.log_begin(txn_id, time=now)
        writes = transaction.writes_at(self.site)
        try:
            for key in transaction.read_keys_at(self.site):
                self.locks.acquire(txn_id, key, LockMode.SHARED, now=now)
            for key in sorted(writes):
                self.locks.acquire(txn_id, key, LockMode.EXCLUSIVE, now=now)
        except LockConflict:
            self.locks.release_all(txn_id, now=now)
            self.wal.log_vote(txn_id, "no", time=now)
            self._pending[txn_id] = _PendingTransaction(
                transaction=transaction, writes=writes, vote="no"
            )
            return "no"
        self.wal.log_vote(txn_id, "yes", time=now)
        self._pending[txn_id] = _PendingTransaction(
            transaction=transaction, writes=writes, vote="yes"
        )
        return "yes"

    def request_lock(
        self, transaction_id: str, key: str, mode: LockMode, *, now: float = 0.0
    ) -> LockRequest:
        """Queueing lock acquisition for the concurrent-transaction scheduler.

        Unlike the :meth:`execute` path (which votes "no" on a conflict),
        a conflicting request *waits* in the site's FIFO lock queue and is
        granted when the holder terminates -- modelling the execution phase
        of a transaction under strict 2PL.  Once every requested lock is
        granted, :meth:`execute` re-acquires them idempotently and votes.
        """
        self._require_up()
        return self.locks.request(transaction_id, key, mode, now=now)

    def prepare(self, transaction_id: str, *, now: float = 0.0) -> None:
        """Journal the prepared state (the 3PC ``prepare`` step).

        Stale-tolerant: under at-least-once delivery a duplicated or
        retransmitted PREPARE can arrive after a crash wiped the volatile
        transaction state; it journals nothing.
        """
        self._require_up()
        pending = self._pending.get(transaction_id)
        if pending is None:
            return
        pending.status = TransactionStatus.PREPARED
        self.wal.log_prepare(transaction_id, pending.writes, time=now)

    def commit(self, transaction_id: str, *, now: float = 0.0) -> None:
        """Commit locally: durable decision, apply writes, release locks."""
        self._require_up()
        previous = self._decisions.get(transaction_id)
        if previous == "commit":
            return
        if previous == "abort":
            raise ValueError(
                f"site {self.site} cannot commit {transaction_id}: already aborted locally"
            )
        pending = self._pending.get(transaction_id)
        if pending is None:
            # Stale delivery: the writes died with a crash, so there is
            # nothing to apply -- recovery (WAL replay) owns the post-crash
            # outcome, not a late COMMIT command.
            return
        self.wal.log_commit(transaction_id, pending.writes, time=now)
        self.store.apply(transaction_id, pending.writes)
        self.wal.log_apply(transaction_id, time=now)
        self.locks.release_all(transaction_id, now=now)
        pending.status = TransactionStatus.COMMITTED
        pending.decided_at = now
        self._decisions[transaction_id] = "commit"

    def abort(self, transaction_id: str, *, now: float = 0.0) -> None:
        """Abort locally: durable decision, discard writes, release locks."""
        self._require_up()
        previous = self._decisions.get(transaction_id)
        if previous == "abort":
            return
        if previous == "commit":
            raise ValueError(
                f"site {self.site} cannot abort {transaction_id}: already committed locally"
            )
        pending = self._pending.get(transaction_id)
        self.wal.log_abort(transaction_id, time=now)
        self.locks.release_all(transaction_id, now=now)
        if pending is not None:
            pending.status = TransactionStatus.ABORTED
            pending.decided_at = now
        self._decisions[transaction_id] = "abort"

    def mark_blocked(self, transaction_id: str, *, now: float = 0.0) -> None:
        """Flag the transaction as blocked (still holding its locks)."""
        pending = self._pending.get(transaction_id)
        if pending is not None and pending.blocked_since is None:
            pending.status = TransactionStatus.BLOCKED
            pending.blocked_since = now

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state (pending transactions, locks).

        Queued lock requests are cancelled (their waiters observe the
        cancellation through :attr:`~repro.db.locks.LockRequest.cancelled`)
        and the grant callback survives onto the fresh lock table, so a
        scheduler wired via ``locks.on_grant`` keeps receiving grants after
        recovery.
        """
        self.state = SiteState.CRASHED
        self._pending.clear()
        self.locks.cancel_all_pending()
        on_grant = self.locks.on_grant
        self.locks = LockManager(self.site)
        self.locks.on_grant = on_grant
        self.recovery = RecoveryManager(self.site, self.wal, self.store)

    def recover(self, *, now: float = 0.0) -> RecoveryReport:
        """Restart the site and replay the log."""
        self.state = SiteState.UP
        report = self.recovery.recover(now=now)
        for transaction_id in report.redone + report.already_applied:
            self._decisions[transaction_id] = "commit"
        for transaction_id in report.aborted:
            self._decisions[transaction_id] = "abort"
        return report

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def decision(self, transaction_id: str) -> Optional[str]:
        """Local decision for ``transaction_id`` (``None`` while undecided)."""
        return self._decisions.get(transaction_id)

    def vote(self, transaction_id: str) -> Optional[str]:
        """The vote this site cast for ``transaction_id``."""
        pending = self._pending.get(transaction_id)
        if pending is not None:
            return pending.vote
        return None

    def status(self, transaction_id: str) -> Optional[TransactionStatus]:
        """Lifecycle status of ``transaction_id`` at this site."""
        decision = self._decisions.get(transaction_id)
        if decision == "commit":
            return TransactionStatus.COMMITTED
        if decision == "abort":
            return TransactionStatus.ABORTED
        pending = self._pending.get(transaction_id)
        return pending.status if pending is not None else None

    def holds_locks(self, transaction_id: str) -> bool:
        """True when the transaction still holds locks at this site."""
        return transaction_id in self.locks.owners()

    def value(self, key: str, default: Any = None) -> Any:
        """Committed value of ``key`` at this site."""
        return self.store.get(key, default)

    def _require_up(self) -> None:
        if self.state is SiteState.CRASHED:
            raise RuntimeError(f"site {self.site} is crashed")

