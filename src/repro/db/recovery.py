"""Crash recovery.

Implements the single-site recovery discipline from Section 2 of the paper:

* if a crash happened *before* the commit log record reached stable storage,
  the transaction is aborted on recovery;
* if it happened *after* the commit record but before the updates finished,
  the updates are (re)applied -- safely, because applies are idempotent.

Transactions that were prepared but have no decision record are left for the
commit protocol's own recovery/termination machinery; the report lists them
so callers can see exactly what was still in doubt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.storage import KeyValueStore
from repro.db.wal import LogRecordKind, WriteAheadLog


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass."""

    redone: list[str] = field(default_factory=list)
    aborted: list[str] = field(default_factory=list)
    in_doubt: list[str] = field(default_factory=list)
    already_applied: list[str] = field(default_factory=list)

    @property
    def total_transactions(self) -> int:
        """Number of transactions the recovery pass looked at."""
        return (
            len(self.redone)
            + len(self.aborted)
            + len(self.in_doubt)
            + len(self.already_applied)
        )


class RecoveryManager:
    """Replays a site's write-ahead log into its store after a crash."""

    def __init__(self, site: int, wal: WriteAheadLog, store: KeyValueStore) -> None:
        self.site = site
        self.wal = wal
        self.store = store

    def recover(self, *, now: float = 0.0) -> RecoveryReport:
        """Bring the store in line with the log.

        Returns a :class:`RecoveryReport` describing what was redone, what
        was rolled back (by omission -- aborted transactions never touched
        the store), and what remains in doubt.
        """
        report = RecoveryReport()
        for transaction_id in self.wal.transactions():
            decision = self.wal.decision(transaction_id)
            if decision == "commit":
                self._redo_commit(transaction_id, report, now=now)
            elif decision == "abort":
                report.aborted.append(transaction_id)
            else:
                # No decision on stable storage.  Whether the transaction
                # eventually commits is up to the commit/termination protocol;
                # a site acting alone must not guess (that is the whole point
                # of the paper).
                report.in_doubt.append(transaction_id)
        return report

    def _redo_commit(self, transaction_id: str, report: RecoveryReport, *, now: float) -> None:
        writes = self.wal.prepared_writes(transaction_id) or {}
        if self.store.applied(transaction_id):
            report.already_applied.append(transaction_id)
            return
        self.store.apply(transaction_id, writes)
        if not self.wal.was_applied(transaction_id):
            self.wal.log_apply(transaction_id, time=now)
        report.redone.append(transaction_id)

    def in_doubt_transactions(self) -> list[str]:
        """Transactions with protocol activity but no durable decision."""
        return [
            transaction_id
            for transaction_id in self.wal.transactions()
            if self.wal.decision(transaction_id) is None
        ]

    def needs_redo(self, transaction_id: str) -> bool:
        """True when a committed transaction's writes are not yet in the store."""
        if self.wal.decision(transaction_id) != "commit":
            return False
        return not self.store.applied(transaction_id)

    @staticmethod
    def classify(record_kind: LogRecordKind) -> str:
        """Coarse classification of a log record for reporting."""
        if record_kind in (LogRecordKind.COMMIT, LogRecordKind.ABORT):
            return "decision"
        if record_kind is LogRecordKind.APPLY:
            return "redo"
        return "protocol"
