"""Distributed-database substrate.

Section 2 of the paper sketches the single-site machinery that commit
protocols assume: each site partially executes a transaction, records a
commit log in stable storage before applying updates, re-applies updates
idempotently after a crash, and holds locks on data touched by a transaction
until the transaction terminates (which is why *blocking* is so costly).

This package provides that machinery:

* :mod:`repro.db.storage` -- an in-memory versioned key-value store,
* :mod:`repro.db.wal` -- a write-ahead log with commit/abort records,
* :mod:`repro.db.locks` -- a strict two-phase-locking lock table,
* :mod:`repro.db.transactions` -- transaction descriptors and operations,
* :mod:`repro.db.recovery` -- idempotent redo after crashes,
* :mod:`repro.db.site` -- one database site tying the above together; this
  is what the commit-protocol roles in :mod:`repro.protocols` drive.
"""

from repro.db.locks import LockConflict, LockManager, LockMode
from repro.db.recovery import RecoveryManager, RecoveryReport
from repro.db.site import DatabaseSite, SiteState
from repro.db.storage import KeyValueStore, Version
from repro.db.transactions import Operation, OpKind, Transaction, TransactionStatus
from repro.db.wal import LogRecord, LogRecordKind, WriteAheadLog

__all__ = [
    "DatabaseSite",
    "KeyValueStore",
    "LockConflict",
    "LockManager",
    "LockMode",
    "LogRecord",
    "LogRecordKind",
    "Operation",
    "OpKind",
    "RecoveryManager",
    "RecoveryReport",
    "SiteState",
    "Transaction",
    "TransactionStatus",
    "Version",
    "WriteAheadLog",
]
