"""Transaction descriptors.

A transaction is a logically atomic set of read/write operations spanning one
or more sites.  The commit protocols only care about which sites participate
and what each site must write if the transaction commits; reads matter for
lock acquisition (a blocked transaction keeps its read locks too, which is
the availability cost the paper's introduction highlights).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional


class OpKind(enum.Enum):
    """Kind of a single data operation."""

    READ = "read"
    WRITE = "write"


class TransactionStatus(enum.Enum):
    """Lifecycle of a transaction at one site."""

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class Operation:
    """One read or write against a named key at a specific site."""

    site: int
    kind: OpKind
    key: str
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.READ and self.value is not None:
            raise ValueError("read operations do not carry a value")

    @classmethod
    def read(cls, site: int, key: str) -> "Operation":
        """A read of ``key`` at ``site``."""
        return cls(site=site, kind=OpKind.READ, key=key)

    @classmethod
    def write(cls, site: int, key: str, value: Any) -> "Operation":
        """A write of ``value`` to ``key`` at ``site``."""
        return cls(site=site, kind=OpKind.WRITE, key=key, value=value)


_transaction_counter = itertools.count(1)

#: ``simple_update`` operation tuples, keyed by (participants, key, value).
#: Sweeps build the same one-write-per-site workload for every scenario;
#: Operation is frozen, so sharing the tuple across transactions is safe.
_simple_update_ops: dict[tuple[Any, ...], tuple[Operation, ...]] = {}


@dataclass
class Transaction:
    """A distributed transaction.

    Attributes:
        transaction_id: globally unique identifier (the paper's ``trans_id``).
        master: coordinating site (the paper's site 1).
        operations: the data operations, grouped implicitly by site.
    """

    transaction_id: str
    master: int
    operations: tuple[Operation, ...] = ()
    submitted_at: float = 0.0

    @classmethod
    def create(
        cls,
        master: int,
        operations: Iterable[Operation] = (),
        *,
        transaction_id: Optional[str] = None,
        submitted_at: float = 0.0,
    ) -> "Transaction":
        """Create a transaction, generating an id if none is supplied."""
        if transaction_id is None:
            transaction_id = f"txn-{next(_transaction_counter)}"
        return cls(
            transaction_id=transaction_id,
            master=master,
            operations=tuple(operations),
            submitted_at=submitted_at,
        )

    @classmethod
    def simple_update(
        cls,
        master: int,
        participants: Iterable[int],
        key: str,
        value: Any,
        *,
        transaction_id: Optional[str] = None,
    ) -> "Transaction":
        """A transaction writing ``key = value`` at every participant.

        This is the canonical workload of the paper's experiments: the same
        logical update must be installed at all participating sites or none.
        """
        sites = tuple(sorted(set(participants)))
        try:
            operations = _simple_update_ops.get((sites, key, value))
            if operations is None:
                operations = tuple(Operation.write(site, key, value) for site in sites)
                _simple_update_ops[(sites, key, value)] = operations
        except TypeError:  # unhashable value: build without memoizing
            operations = tuple(Operation.write(site, key, value) for site in sites)
        return cls.create(master, operations, transaction_id=transaction_id)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def participants(self) -> tuple[int, ...]:
        """Sites touched by the transaction (always including the master)."""
        sites = {op.site for op in self.operations}
        sites.add(self.master)
        return tuple(sorted(sites))

    @property
    def slaves(self) -> tuple[int, ...]:
        """Participants other than the master."""
        return tuple(site for site in self.participants if site != self.master)

    def operations_at(self, site: int) -> tuple[Operation, ...]:
        """The operations this transaction performs at ``site``."""
        return tuple(op for op in self.operations if op.site == site)

    def writes_at(self, site: int) -> dict[str, Any]:
        """Key/value pairs this transaction writes at ``site``."""
        return {
            op.key: op.value for op in self.operations if op.site == site and op.kind is OpKind.WRITE
        }

    def read_keys_at(self, site: int) -> tuple[str, ...]:
        """Keys this transaction reads at ``site``."""
        return tuple(
            op.key for op in self.operations if op.site == site and op.kind is OpKind.READ
        )

    def keys_at(self, site: int) -> tuple[str, ...]:
        """All keys (read or written) touched at ``site``."""
        return tuple(sorted({op.key for op in self.operations if op.site == site}))

    def __str__(self) -> str:
        return f"Transaction({self.transaction_id}, master={self.master}, sites={self.participants})"


@dataclass
class TransactionRecord:
    """Mutable per-site view of a transaction's progress (used by sites)."""

    transaction: Transaction
    status: TransactionStatus = TransactionStatus.ACTIVE
    decided_at: Optional[float] = None
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def terminated(self) -> bool:
        """True once the transaction committed or aborted at this site."""
        return self.status in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED)
