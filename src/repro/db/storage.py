"""In-memory versioned key-value store.

The store keeps, for every key, the committed value plus the history of
versions that produced it.  Updates are applied through :meth:`KeyValueStore.apply`,
which is *idempotent* with respect to a transaction id: applying the same
transaction's writes twice leaves the store unchanged.  Idempotence is the
property Section 2 of the paper relies on for single-site crash recovery
("performing them several times is equivalent to performing them once").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional


@dataclass(frozen=True)
class Version:
    """One committed version of a key."""

    key: str
    value: Any
    transaction_id: str
    sequence: int


class KeyValueStore:
    """A single site's committed database state."""

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        self._values: dict[str, Any] = {}
        self._history: dict[str, list[Version]] = {}
        self._applied_transactions: set[str] = set()
        self._sequence = 0
        if initial:
            for key, value in initial.items():
                self._install(key, value, transaction_id="__initial__")
            self._applied_transactions.discard("__initial__")

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Committed value of ``key`` (or ``default``)."""
        return self._values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def keys(self) -> list[str]:
        """All keys with a committed value, sorted."""
        return sorted(self._values)

    def snapshot(self) -> dict[str, Any]:
        """A copy of the committed state (used by consistency checks)."""
        return dict(self._values)

    def history(self, key: str) -> tuple[Version, ...]:
        """Committed versions of ``key``, oldest first."""
        return tuple(self._history.get(key, ()))

    def applied(self, transaction_id: str) -> bool:
        """True when the writes of ``transaction_id`` have been applied."""
        return transaction_id in self._applied_transactions

    @property
    def applied_transactions(self) -> frozenset[str]:
        """Ids of all transactions whose writes have been applied."""
        return frozenset(self._applied_transactions)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def apply(self, transaction_id: str, writes: Mapping[str, Any]) -> bool:
        """Apply ``writes`` on behalf of ``transaction_id``.

        Returns ``True`` if the writes were applied, ``False`` if they had
        already been applied earlier (the idempotent no-op path taken when a
        recovering site redoes its log).
        """
        if transaction_id in self._applied_transactions:
            return False
        for key, value in sorted(writes.items()):
            self._install(key, value, transaction_id=transaction_id)
        self._applied_transactions.add(transaction_id)
        return True

    def _install(self, key: str, value: Any, *, transaction_id: str) -> None:
        self._sequence += 1
        version = Version(
            key=key, value=value, transaction_id=transaction_id, sequence=self._sequence
        )
        self._values[key] = value
        self._history.setdefault(key, []).append(version)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def same_contents(self, other: "KeyValueStore", keys: Optional[Iterable[str]] = None) -> bool:
        """True when this store and ``other`` agree on ``keys`` (or on everything)."""
        if keys is None:
            return self.snapshot() == other.snapshot()
        return all(self.get(key) == other.get(key) for key in keys)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyValueStore(keys={len(self._values)}, applied={len(self._applied_transactions)})"
