"""Strict two-phase-locking lock table.

The paper's motivation for non-blocking commit protocols is that a blocked
transaction "cannot relinquish the locks acquired ... rendering those data
inaccessible to other transactions".  The lock manager makes that cost
measurable: the availability experiment (bench ``AVAIL``) counts how long
keys stay locked under each protocol when a partition strikes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) lock."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def compatible_with(self, other: "LockMode") -> bool:
        """Lock compatibility matrix: only shared/shared is compatible."""
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockConflict(RuntimeError):
    """Raised when a lock request conflicts with an existing holder."""

    def __init__(self, key: str, requester: str, holder: str) -> None:
        super().__init__(f"lock on {key!r} requested by {requester} held by {holder}")
        self.key = key
        self.requester = requester
        self.holder = holder


@dataclass
class LockGrant:
    """A granted lock."""

    key: str
    owner: str
    mode: LockMode
    granted_at: float


@dataclass
class LockStats:
    """Aggregate lock-contention statistics for one site."""

    grants: int = 0
    conflicts: int = 0
    releases: int = 0
    total_hold_time: float = 0.0
    held_since: dict[tuple[str, str], float] = field(default_factory=dict)


class LockManager:
    """Per-site lock table with strict 2PL semantics.

    Locks are requested by transaction id and released only when the
    transaction terminates (commit or abort).  Upgrades from shared to
    exclusive by the same owner are allowed when no other owner holds the
    lock.
    """

    def __init__(self, site: int) -> None:
        self.site = site
        self._locks: dict[str, list[LockGrant]] = {}
        self.stats = LockStats()

    # ------------------------------------------------------------------
    # acquisition / release
    # ------------------------------------------------------------------
    def acquire(
        self, owner: str, key: str, mode: LockMode, *, now: float = 0.0
    ) -> LockGrant:
        """Grant ``owner`` a lock on ``key`` or raise :class:`LockConflict`."""
        holders = self._locks.setdefault(key, [])
        for grant in holders:
            if grant.owner == owner:
                if grant.mode is mode or grant.mode is LockMode.EXCLUSIVE:
                    return grant
                # Upgrade request: allowed only if we are the sole holder.
                if len(holders) == 1:
                    upgraded = LockGrant(key=key, owner=owner, mode=mode, granted_at=grant.granted_at)
                    holders[0] = upgraded
                    return upgraded
                self.stats.conflicts += 1
                other = next(g for g in holders if g.owner != owner)
                raise LockConflict(key, owner, other.owner)
            if not grant.mode.compatible_with(mode):
                self.stats.conflicts += 1
                raise LockConflict(key, owner, grant.owner)
        grant = LockGrant(key=key, owner=owner, mode=mode, granted_at=now)
        holders.append(grant)
        self.stats.grants += 1
        self.stats.held_since[(owner, key)] = now
        return grant

    def try_acquire(
        self, owner: str, key: str, mode: LockMode, *, now: float = 0.0
    ) -> Optional[LockGrant]:
        """Like :meth:`acquire` but returns ``None`` instead of raising."""
        try:
            return self.acquire(owner, key, mode, now=now)
        except LockConflict:
            return None

    def release_all(self, owner: str, *, now: float = 0.0) -> int:
        """Release every lock held by ``owner``; returns the number released."""
        released = 0
        for key in list(self._locks):
            holders = self._locks[key]
            remaining = [grant for grant in holders if grant.owner != owner]
            released += len(holders) - len(remaining)
            if len(remaining) != len(holders):
                since = self.stats.held_since.pop((owner, key), None)
                if since is not None:
                    self.stats.total_hold_time += max(0.0, now - since)
                self.stats.releases += len(holders) - len(remaining)
            if remaining:
                self._locks[key] = remaining
            else:
                del self._locks[key]
        return released

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holders(self, key: str) -> tuple[LockGrant, ...]:
        """Current holders of ``key``."""
        return tuple(self._locks.get(key, ()))

    def holds(self, owner: str, key: str) -> bool:
        """True when ``owner`` holds any lock on ``key``."""
        return any(grant.owner == owner for grant in self._locks.get(key, ()))

    def locked_keys(self) -> list[str]:
        """Keys with at least one holder, sorted."""
        return sorted(self._locks)

    def owners(self) -> set[str]:
        """Transaction ids currently holding at least one lock."""
        return {grant.owner for grants in self._locks.values() for grant in grants}

    def is_available(self, key: str, mode: LockMode, *, owner: Optional[str] = None) -> bool:
        """Could ``owner`` acquire ``key`` in ``mode`` right now?"""
        for grant in self._locks.get(key, ()):
            if owner is not None and grant.owner == owner:
                continue
            if not grant.mode.compatible_with(mode):
                return False
        return True

    def __len__(self) -> int:
        return sum(len(grants) for grants in self._locks.values())
