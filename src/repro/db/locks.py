"""Strict two-phase-locking lock table with FIFO wait queues.

The paper's motivation for non-blocking commit protocols is that a blocked
transaction "cannot relinquish the locks acquired ... rendering those data
inaccessible to other transactions".  The lock manager makes that cost
measurable twice over:

* the availability experiment (bench ``AVAIL``) counts how long keys stay
  locked under each protocol when a partition strikes;
* the concurrent-transaction scheduler (:mod:`repro.txn`) *queues*
  conflicting requests (:meth:`LockManager.request`) instead of failing
  them, so contended workloads measure the queueing delay a blocked lock
  holder inflicts on everyone behind it.

Queueing invariants:

* **FIFO, no barging.**  A request that conflicts with the current holders
  -- or that arrives while *any* request is queued on the key -- waits in
  arrival order.  Compatible requests at the head of the queue are granted
  together (a shared group), so readers batch but can never overtake an
  older writer.
* **Upgrades jump the queue.**  A shared holder upgrading to exclusive
  waits only for the other current holders, never behind queued newcomers
  (queued-first upgrades would deadlock against their own queue position).
* **Release wakes the queue.**  Releasing locks promotes now-grantable
  requests in FIFO order and reports each grant through
  :attr:`LockManager.on_grant`, which is how the transaction scheduler
  resumes waiting transactions.
* **Release-while-queued.**  Releasing an owner also cancels its queued
  requests, and both release and cancel are idempotent (double release is a
  no-op), so an aborting transaction can always be cleaned up blindly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) lock."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def compatible_with(self, other: "LockMode") -> bool:
        """Lock compatibility matrix: only shared/shared is compatible."""
        return self is LockMode.SHARED and other is LockMode.SHARED

    def covers(self, other: "LockMode") -> bool:
        """True when holding this mode already satisfies a request for ``other``."""
        return self is other or self is LockMode.EXCLUSIVE


class LockConflict(RuntimeError):
    """Raised when a lock request conflicts with an existing holder."""

    def __init__(self, key: str, requester: str, holder: str) -> None:
        super().__init__(f"lock on {key!r} requested by {requester} held by {holder}")
        self.key = key
        self.requester = requester
        self.holder = holder


@dataclass
class LockGrant:
    """A granted lock."""

    key: str
    owner: str
    mode: LockMode
    granted_at: float


@dataclass
class LockRequest:
    """A lock request, either granted immediately or waiting in a key's queue."""

    key: str
    owner: str
    mode: LockMode
    enqueued_at: float
    upgrade: bool = False
    granted: Optional[LockGrant] = None
    granted_at: Optional[float] = None
    cancelled: bool = False

    @property
    def pending(self) -> bool:
        """True while the request is queued (neither granted nor cancelled)."""
        return self.granted is None and not self.cancelled

    @property
    def wait_time(self) -> float:
        """Queueing delay this request experienced (0 for immediate grants)."""
        if self.granted_at is None:
            return 0.0
        return max(0.0, self.granted_at - self.enqueued_at)


@dataclass
class LockStats:
    """Aggregate lock-contention statistics for one site."""

    grants: int = 0
    conflicts: int = 0
    releases: int = 0
    queued: int = 0
    wait_time_total: float = 0.0
    total_hold_time: float = 0.0
    held_since: dict[tuple[str, str], float] = field(default_factory=dict)


class LockManager:
    """Per-site lock table with strict 2PL semantics.

    Locks are requested by transaction id and released only when the
    transaction terminates (commit or abort).  Upgrades from shared to
    exclusive by the same owner are allowed when no other owner holds the
    lock.  Two acquisition surfaces share the table:

    * :meth:`acquire` / :meth:`try_acquire` -- the fail-fast API used by the
      single-transaction protocol path (raises :class:`LockConflict`);
    * :meth:`request` -- the queueing API used by the concurrent-transaction
      scheduler (enqueues and later grants via :attr:`on_grant`).
    """

    def __init__(self, site: int) -> None:
        self.site = site
        self._locks: dict[str, list[LockGrant]] = {}
        self._queues: dict[str, list[LockRequest]] = {}
        self.stats = LockStats()
        #: Callback invoked (synchronously) for every queued request that a
        #: release promotes to granted.  Set by the transaction scheduler.
        self.on_grant: Optional[Callable[[LockRequest], None]] = None

    # ------------------------------------------------------------------
    # fail-fast acquisition (single-transaction protocol path)
    # ------------------------------------------------------------------
    def acquire(
        self, owner: str, key: str, mode: LockMode, *, now: float = 0.0
    ) -> LockGrant:
        """Grant ``owner`` a lock on ``key`` or raise :class:`LockConflict`."""
        held = self._grant_of(owner, key)
        if held is not None:
            if held.mode.covers(mode):
                return held
            blockers = self._upgrade_blockers(owner, key)
            if not blockers:
                return self._upgrade(held, now=now)
            self.stats.conflicts += 1
            raise LockConflict(key, owner, blockers[0])
        blockers = self._blockers(owner, key, mode)
        if blockers:
            self.stats.conflicts += 1
            raise LockConflict(key, owner, blockers[0])
        return self._grant(owner, key, mode, now=now)

    def try_acquire(
        self, owner: str, key: str, mode: LockMode, *, now: float = 0.0
    ) -> Optional[LockGrant]:
        """Like :meth:`acquire` but returns ``None`` instead of raising."""
        try:
            return self.acquire(owner, key, mode, now=now)
        except LockConflict:
            return None

    # ------------------------------------------------------------------
    # queueing acquisition (concurrent-transaction scheduler path)
    # ------------------------------------------------------------------
    def request(
        self, owner: str, key: str, mode: LockMode, *, now: float = 0.0
    ) -> LockRequest:
        """Request a lock, queueing FIFO on conflict instead of raising.

        Returns a :class:`LockRequest`; ``request.granted`` is set when the
        lock was granted immediately, otherwise the request waits in the
        key's queue and is granted later by a release (reported through
        :attr:`on_grant`).
        """
        held = self._grant_of(owner, key)
        if held is not None:
            request = LockRequest(key=key, owner=owner, mode=mode, enqueued_at=now)
            if held.mode.covers(mode):
                request.granted = held
                request.granted_at = now
                return request
            request.upgrade = True
            if not self._upgrade_blockers(owner, key):
                request.granted = self._upgrade(held, now=now)
                request.granted_at = now
                return request
            # Upgrades wait only for the other holders: insert ahead of
            # ordinary queued requests, behind earlier pending upgrades.
            # Compact settled entries first -- a cancelled entry between two
            # pending upgrades would otherwise skew the insertion index.
            self.stats.conflicts += 1
            self.stats.queued += 1
            queue = self._queues.setdefault(key, [])
            queue[:] = [r for r in queue if r.pending]
            position = sum(1 for r in queue if r.upgrade)
            queue.insert(position, request)
            return request
        request = LockRequest(key=key, owner=owner, mode=mode, enqueued_at=now)
        if not self._blockers(owner, key, mode):
            request.granted = self._grant(owner, key, mode, now=now)
            request.granted_at = now
            return request
        self.stats.conflicts += 1
        self.stats.queued += 1
        self._queues.setdefault(key, []).append(request)
        return request

    def cancel(self, request: LockRequest, *, now: float = 0.0) -> None:
        """Withdraw a queued request (no-op if already granted or cancelled)."""
        if not request.pending:
            return
        request.cancelled = True
        self._promote(request.key, now=now)

    def cancel_all_pending(self) -> int:
        """Flag every queued request cancelled *without* promoting anyone.

        The crash path: the lock table is about to be discarded, so waking
        waiters on it would grant locks that die with the site.  Waiters
        observe the cancellation through ``request.cancelled``.
        """
        cancelled = 0
        for queue in self._queues.values():
            for request in queue:
                if request.pending:
                    request.cancelled = True
                    cancelled += 1
        self._queues.clear()
        return cancelled

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def release(self, owner: str, key: str, *, now: float = 0.0) -> bool:
        """Release ``owner``'s lock on ``key`` (False if none was held).

        Releasing a key the owner does not hold -- including a second
        release of the same key -- is a safe no-op, so termination paths
        can release blindly.  Queued requests of ``owner`` on the key are
        cancelled (release-while-queued), and the queue is promoted.
        """
        released = False
        holders = self._locks.get(key)
        if holders is not None:
            remaining = [grant for grant in holders if grant.owner != owner]
            if len(remaining) != len(holders):
                released = True
                self._account_release(owner, key, now=now)
                if remaining:
                    self._locks[key] = remaining
                else:
                    del self._locks[key]
        for request in self._queues.get(key, []):
            if request.pending and request.owner == owner:
                request.cancelled = True
        self._promote(key, now=now)
        return released

    def release_all(self, owner: str, *, now: float = 0.0) -> int:
        """Release every lock held by ``owner``; returns the number released.

        Also cancels the owner's queued requests and promotes every
        affected queue, so a terminating transaction frees both the locks
        it held and the queue slots it occupied in one call.
        """
        released = 0
        affected: list[str] = []
        for key in list(self._locks):
            holders = self._locks[key]
            remaining = [grant for grant in holders if grant.owner != owner]
            if len(remaining) == len(holders):
                continue
            released += len(holders) - len(remaining)
            self._account_release(owner, key, now=now)
            if remaining:
                self._locks[key] = remaining
            else:
                del self._locks[key]
            affected.append(key)
        if not self._queues:
            # Nothing queued anywhere (the single-transaction sweep case):
            # no requests to cancel and no promotions possible.
            return released
        for key, queue in list(self._queues.items()):
            dirty = False
            for request in queue:
                if request.pending and request.owner == owner:
                    request.cancelled = True
                    dirty = True
            if dirty and key not in affected:
                affected.append(key)
        for key in affected:
            self._promote(key, now=now)
        return released

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holders(self, key: str) -> tuple[LockGrant, ...]:
        """Current holders of ``key``."""
        return tuple(self._locks.get(key, ()))

    def holds(self, owner: str, key: str) -> bool:
        """True when ``owner`` holds any lock on ``key``."""
        return any(grant.owner == owner for grant in self._locks.get(key, ()))

    def locked_keys(self) -> list[str]:
        """Keys with at least one holder, sorted."""
        return sorted(self._locks)

    def owners(self) -> set[str]:
        """Transaction ids currently holding at least one lock."""
        return {grant.owner for grants in self._locks.values() for grant in grants}

    def held_count(self, owner: str) -> int:
        """Number of locks ``owner`` currently holds at this site."""
        return sum(
            1
            for grants in self._locks.values()
            for grant in grants
            if grant.owner == owner
        )

    def queued(self, key: str) -> tuple[LockRequest, ...]:
        """Pending requests waiting on ``key``, in grant order."""
        return tuple(r for r in self._queues.get(key, ()) if r.pending)

    def queued_keys(self) -> list[str]:
        """Keys with at least one pending queued request, sorted."""
        return sorted(
            key
            for key, queue in self._queues.items()
            if any(request.pending for request in queue)
        )

    def pending_owners(self) -> set[str]:
        """Transaction ids with at least one queued request."""
        return {
            request.owner
            for queue in self._queues.values()
            for request in queue
            if request.pending
        }

    def waits_for(self) -> dict[str, set[str]]:
        """The site's waits-for edges: queued owner -> owners it waits on.

        A queued request waits for every *other* current holder it
        conflicts with and for every *incompatible* owner queued ahead of
        it (FIFO: the earlier request will be granted first, and the later
        one must then outwait it).  Compatible queued neighbours (a shared
        group) promote together, so no edge joins them -- a spurious edge
        there would let the deadlock detector abort an innocent member of
        the group.  Upgrades wait only for the other holders.  The union
        of these maps across sites is the graph the deadlock detector
        searches for cycles.
        """
        edges: dict[str, set[str]] = {}
        for key in sorted(self._queues):
            holders = self._locks.get(key, ())
            ahead: list[LockRequest] = []
            for request in self._queues[key]:
                if not request.pending:
                    continue
                waits = edges.setdefault(request.owner, set())
                for grant in holders:
                    if grant.owner != request.owner and not grant.mode.compatible_with(
                        request.mode
                    ):
                        waits.add(grant.owner)
                if not request.upgrade:
                    for earlier in ahead:
                        if earlier.owner != request.owner and not (
                            earlier.mode.compatible_with(request.mode)
                        ):
                            waits.add(earlier.owner)
                ahead.append(request)
        return edges

    def is_available(self, key: str, mode: LockMode, *, owner: Optional[str] = None) -> bool:
        """Could ``owner`` acquire ``key`` in ``mode`` right now?"""
        for grant in self._locks.get(key, ()):
            if owner is not None and grant.owner == owner:
                continue
            if not grant.mode.compatible_with(mode):
                return False
        return True

    def __len__(self) -> int:
        return sum(len(grants) for grants in self._locks.values())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _grant_of(self, owner: str, key: str) -> Optional[LockGrant]:
        for grant in self._locks.get(key, ()):
            if grant.owner == owner:
                return grant
        return None

    def _blockers(self, owner: str, key: str, mode: LockMode) -> list[str]:
        """Owners preventing an immediate grant: conflicting holders first,
        then anyone already queued (FIFO fairness -- no barging)."""
        blockers = []
        for grant in self._locks.get(key, ()):
            if grant.owner != owner and not grant.mode.compatible_with(mode):
                blockers.append(grant.owner)
        for request in self._queues.get(key, ()):
            if request.pending and request.owner != owner:
                blockers.append(request.owner)
        return blockers

    def _upgrade_blockers(self, owner: str, key: str) -> list[str]:
        """Other holders standing in the way of a shared -> exclusive upgrade."""
        return [g.owner for g in self._locks.get(key, ()) if g.owner != owner]

    def _grant(self, owner: str, key: str, mode: LockMode, *, now: float) -> LockGrant:
        grant = LockGrant(key=key, owner=owner, mode=mode, granted_at=now)
        self._locks.setdefault(key, []).append(grant)
        self.stats.grants += 1
        self.stats.held_since[(owner, key)] = now
        return grant

    def _upgrade(self, held: LockGrant, *, now: float) -> LockGrant:
        """Strengthen a shared grant in place (hold time keeps its origin)."""
        upgraded = LockGrant(
            key=held.key, owner=held.owner, mode=LockMode.EXCLUSIVE,
            granted_at=held.granted_at,
        )
        holders = self._locks[held.key]
        holders[holders.index(held)] = upgraded
        return upgraded

    def _account_release(self, owner: str, key: str, *, now: float) -> None:
        since = self.stats.held_since.pop((owner, key), None)
        if since is not None:
            self.stats.total_hold_time += max(0.0, now - since)
        self.stats.releases += 1

    def _promote(self, key: str, *, now: float) -> None:
        """Grant now-compatible queued requests from the front of the queue."""
        queue = self._queues.get(key)
        if queue is None:
            return
        promoted: list[LockRequest] = []
        while queue:
            request = queue[0]
            if not request.pending:
                queue.pop(0)
                continue
            held = self._grant_of(request.owner, key)
            if held is not None:
                if not self._upgrade_blockers(request.owner, key):
                    queue.pop(0)
                    request.granted = self._upgrade(held, now=now)
                    request.granted_at = now
                    promoted.append(request)
                    continue
                break
            blocked = any(
                grant.owner != request.owner
                and not grant.mode.compatible_with(request.mode)
                for grant in self._locks.get(key, ())
            )
            if blocked:
                break
            queue.pop(0)
            request.granted = self._grant(request.owner, key, request.mode, now=now)
            request.granted_at = now
            promoted.append(request)
        if not queue:
            self._queues.pop(key, None)
        for request in promoted:
            self.stats.wait_time_total += request.wait_time
            if self.on_grant is not None:
                self.on_grant(request)
