"""Write-ahead log.

The paper's single-site recovery argument (Section 2) requires that a commit
log containing the update information reaches *stable storage* before the
updates are applied.  :class:`WriteAheadLog` models that stable storage: log
records survive crashes (the in-memory list is simply not cleared on crash),
and :class:`~repro.db.recovery.RecoveryManager` replays it on restart.

For the three-phase protocols the log also records the *prepare* point so a
recovering site knows whether it had voted / been prepared, mirroring how
real 3PC implementations journal their protocol state.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, Mapping, Optional


class LogRecordKind(enum.Enum):
    """Kinds of log records written by a site."""

    BEGIN = "begin"
    VOTE = "vote"
    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"
    APPLY = "apply"


class LogRecord:
    """One entry in a site's write-ahead log.

    A ``__slots__`` record rather than a dataclass: every prepare/commit/
    abort of every simulated run appends several of these, putting
    construction cost on the sweep hot path.
    """

    __slots__ = ("lsn", "kind", "transaction_id", "time", "payload")

    def __init__(
        self,
        lsn: int,
        kind: LogRecordKind,
        transaction_id: str,
        time: float = 0.0,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.lsn = lsn
        self.kind = kind
        self.transaction_id = transaction_id
        self.time = time
        self.payload = {} if payload is None else payload

    def get(self, key: str, default: Any = None) -> Any:
        """Accessor into the record payload."""
        return self.payload.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogRecord):
            return NotImplemented
        return (
            self.lsn == other.lsn
            and self.kind == other.kind
            and self.transaction_id == other.transaction_id
            and self.time == other.time
            and self.payload == other.payload
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogRecord(lsn={self.lsn}, kind={self.kind}, "
            f"transaction_id={self.transaction_id!r}, time={self.time}, "
            f"payload={self.payload!r})"
        )


class WriteAheadLog:
    """An append-only, crash-surviving log for one site."""

    def __init__(self, site: int) -> None:
        self.site = site
        self._records: list[LogRecord] = []

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def append(
        self,
        kind: LogRecordKind,
        transaction_id: str,
        *,
        time: float = 0.0,
        **payload: Any,
    ) -> LogRecord:
        """Append a record and return it (the new record is durable at once)."""
        # `payload` is this call's own kwargs dict -- no defensive copy needed.
        record = LogRecord(len(self._records) + 1, kind, transaction_id, time, payload)
        self._records.append(record)
        return record

    def log_begin(self, transaction_id: str, *, time: float = 0.0) -> LogRecord:
        """Record that the site started working on a transaction."""
        return self.append(LogRecordKind.BEGIN, transaction_id, time=time)

    def log_vote(self, transaction_id: str, vote: str, *, time: float = 0.0) -> LogRecord:
        """Record the site's yes/no vote."""
        return self.append(LogRecordKind.VOTE, transaction_id, time=time, vote=vote)

    def log_prepare(
        self, transaction_id: str, writes: Mapping[str, Any], *, time: float = 0.0
    ) -> LogRecord:
        """Record the prepared state together with the update information."""
        return self.append(
            LogRecordKind.PREPARE, transaction_id, time=time, writes=dict(writes)
        )

    def log_commit(
        self, transaction_id: str, writes: Mapping[str, Any], *, time: float = 0.0
    ) -> LogRecord:
        """The paper's "commit log": decision + update information, durable."""
        return self.append(
            LogRecordKind.COMMIT, transaction_id, time=time, writes=dict(writes)
        )

    def log_abort(self, transaction_id: str, *, time: float = 0.0) -> LogRecord:
        """Record an abort decision."""
        return self.append(LogRecordKind.ABORT, transaction_id, time=time)

    def log_apply(self, transaction_id: str, *, time: float = 0.0) -> LogRecord:
        """Record that the updates of a committed transaction were applied."""
        return self.append(LogRecordKind.APPLY, transaction_id, time=time)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records(self, transaction_id: Optional[str] = None) -> tuple[LogRecord, ...]:
        """All records, optionally restricted to one transaction."""
        if transaction_id is None:
            return tuple(self._records)
        return tuple(r for r in self._records if r.transaction_id == transaction_id)

    def last_record(self, transaction_id: str) -> Optional[LogRecord]:
        """Most recent record for ``transaction_id``."""
        records = self.records(transaction_id)
        return records[-1] if records else None

    def decision(self, transaction_id: str) -> Optional[str]:
        """``"commit"`` / ``"abort"`` if the decision is on stable storage."""
        for record in reversed(self._records):
            if record.transaction_id != transaction_id:
                continue
            if record.kind is LogRecordKind.COMMIT:
                return "commit"
            if record.kind is LogRecordKind.ABORT:
                return "abort"
        return None

    def was_applied(self, transaction_id: str) -> bool:
        """True when an APPLY record exists for ``transaction_id``."""
        return any(
            r.kind is LogRecordKind.APPLY and r.transaction_id == transaction_id
            for r in self._records
        )

    def prepared_writes(self, transaction_id: str) -> Optional[dict[str, Any]]:
        """The writes journalled at prepare time, if any."""
        for record in reversed(self._records):
            if record.transaction_id != transaction_id:
                continue
            if record.kind in (LogRecordKind.PREPARE, LogRecordKind.COMMIT):
                writes = record.get("writes")
                if writes is not None:
                    return dict(writes)
        return None

    def transactions(self) -> list[str]:
        """Ids of all transactions mentioned in the log, in first-seen order."""
        seen: list[str] = []
        for record in self._records:
            if record.transaction_id not in seen:
                seen.append(record.transaction_id)
        return seen

    def undecided_transactions(self) -> list[str]:
        """Transactions with a BEGIN/VOTE/PREPARE but no decision record."""
        return [txn for txn in self.transactions() if self.decision(txn) is None]
