"""Observability: mergeable metrics, phase spans, progress, reporting.

The layer every execution path reports into, and the first-class answer
to "where does the time go":

* :mod:`repro.obs.metrics` -- counters, high-watermark gauges and
  fixed-bucket histograms in a :class:`MetricsRegistry` whose canonical
  snapshots merge associatively and commutatively (worker snapshots ride
  home in the engine's batched chunk frames, strictly out-of-band from
  summary bytes);
* :mod:`repro.obs.spans` -- nested monotonic-clock phase spans with
  NDJSON export (``--trace-ndjson``);
* :mod:`repro.obs.progress` -- the ``--progress`` live stderr line;
* :mod:`repro.obs.report` -- the ``repro report`` rendering.

The contract inherited from ``NullTrace``: **zero cost when off**
(one ``is None`` check per gated site, scenario-or-coarser granularity)
and **byte-identical results always** (metrics describe a run, they never
participate in it).
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    SIM_TIME_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate,
    get_active,
    set_active,
)
from repro.obs.progress import ProgressLine
from repro.obs.report import render_metrics_document
from repro.obs.spans import NullSpanRecorder, Span, SpanRecorder

__all__ = [
    "COUNT_BUCKETS",
    "SIM_TIME_BUCKETS",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpanRecorder",
    "ProgressLine",
    "Span",
    "SpanRecorder",
    "activate",
    "get_active",
    "render_metrics_document",
    "set_active",
]
