"""Render a ``--metrics-json`` document as human-readable tables.

``repro report METRICS.json`` is the read side of the observability layer:
it takes the canonical-JSON metrics document a run wrote and renders

* a **run header** (command, elapsed, workers, scenarios);
* a **phase breakdown** -- every ``*_seconds`` histogram as a timing row
  (count, total, mean, min/max, share of wall clock), the view that says
  where a sweep's time went;
* a **distributions** table -- the remaining histograms (simulated-time
  waits, per-shard record counts) with raw numbers, since duration
  formatting would misstate their units;
* a **worker breakdown** -- per-worker task counts, busy seconds and
  utilization, plus the dispatch-overhead share: the numbers ROADMAP
  item 1 needs to quantify the workers=4-loses-to-workers=1 gap;
* the remaining **counters and gauges** verbatim.

Rendering goes through :func:`repro.metrics.reporting.format_table`, the
same dependency-free renderer every other CLI table uses.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.metrics.reporting import format_table

#: Prefix of the per-worker instruments the engine emits.
WORKER_PREFIX = "engine.worker."


def _fmt_seconds(seconds: float) -> str:
    """Human scale for durations: us under 1ms, ms under 1s, else s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def phase_rows(
    metrics: Mapping[str, Any], *, elapsed: Optional[float] = None
) -> list[dict[str, Any]]:
    """Timing-histogram rows (one per ``*_seconds`` histogram), largest first."""
    rows = []
    for name, payload in metrics.get("histograms", {}).items():
        if not name.endswith("_seconds") or not payload["count"]:
            continue
        total = payload["total"]
        row = {
            "phase": name[: -len("_seconds")],
            "count": payload["count"],
            "total": _fmt_seconds(total),
            "mean": _fmt_seconds(total / payload["count"]),
            "min": _fmt_seconds(payload["min"] or 0.0),
            "max": _fmt_seconds(payload["max"] or 0.0),
        }
        if elapsed:
            row["share"] = f"{100.0 * total / elapsed:.1f}%"
        rows.append((total, row))
    return [row for _, row in sorted(rows, key=lambda item: -item[0])]


def distribution_rows(metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Rows for the non-wall-clock histograms (sim-time waits, counts).

    Everything :func:`phase_rows` skips -- histograms whose unit is not
    wall-clock seconds, like ``txn.lock_wait_simtime`` (simulated time)
    or ``merge.records_per_shard`` (plain counts) -- rendered with raw
    numbers instead of duration formatting.
    """
    rows = []
    for name in sorted(metrics.get("histograms", {})):
        payload = metrics["histograms"][name]
        if name.endswith("_seconds") or not payload["count"]:
            continue
        total = payload["total"]
        rows.append(
            {
                "distribution": name,
                "count": payload["count"],
                "total": round(total, 6),
                "mean": round(total / payload["count"], 6),
                "min": round(payload["min"] or 0.0, 6),
                "max": round(payload["max"] or 0.0, 6),
            }
        )
    return rows


def worker_rows(metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Per-worker breakdown rows built from the ``engine.worker.*`` names."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    workers: dict[str, dict[str, Any]] = {}
    for source, field in ((counters, None), (gauges, None)):
        for name, value in source.items():
            if not name.startswith(WORKER_PREFIX):
                continue
            label, _, quantity = name[len(WORKER_PREFIX):].partition(".")
            workers.setdefault(label, {})[quantity] = value
    rows = []
    for label in sorted(workers):
        data = workers[label]
        row: dict[str, Any] = {"worker": label}
        if "tasks" in data:
            row["tasks"] = int(data["tasks"])
        if "chunks" in data:
            row["chunks"] = int(data["chunks"])
        if "busy_seconds" in data:
            row["busy"] = _fmt_seconds(data["busy_seconds"])
        if "utilization" in data:
            row["utilization"] = f"{100.0 * data['utilization']:.1f}%"
        rows.append(row)
    return rows


def _scalar_rows(
    table: Mapping[str, Any], *, skip_prefix: str = WORKER_PREFIX
) -> list[dict[str, Any]]:
    rows = []
    for name in sorted(table):
        if name.startswith(skip_prefix):
            continue
        value = table[name]
        if isinstance(value, float):
            value = round(value, 6)
        rows.append({"name": name, "value": value})
    return rows


def render_metrics_document(document: Mapping[str, Any]) -> str:
    """The full ``repro report`` rendering of one metrics document.

    ``document`` is what ``--metrics-json`` wrote: run metadata plus the
    registry snapshot under ``"metrics"``.  A bare registry snapshot (as
    produced by :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) is
    accepted too.
    """
    metrics = document.get("metrics", document)
    elapsed = document.get("elapsed")
    sections: list[str] = []

    header = {
        key: document[key]
        for key in ("command", "total", "workers", "elapsed", "schema_version")
        if key in document
    }
    if header:
        sections.append(format_table([header], title="run"))

    phases = phase_rows(metrics, elapsed=elapsed)
    if phases:
        sections.append(format_table(phases, title="phase breakdown"))

    distributions = distribution_rows(metrics)
    if distributions:
        sections.append(format_table(distributions, title="distributions"))

    workers = worker_rows(metrics)
    if workers:
        rows = list(workers)
        overhead = metrics.get("gauges", {}).get("engine.dispatch_overhead_share")
        title = "worker breakdown"
        if overhead is not None:
            title += f" (dispatch overhead share {100.0 * overhead:.1f}%)"
        sections.append(format_table(rows, title=title))

    counters = _scalar_rows(metrics.get("counters", {}))
    if counters:
        sections.append(format_table(counters, title="counters"))
    gauges = _scalar_rows(metrics.get("gauges", {}))
    if gauges:
        sections.append(format_table(gauges, title="gauges"))

    if not sections:
        return "(empty metrics document)"
    return "\n\n".join(sections)
