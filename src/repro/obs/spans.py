"""Nested phase spans on the monotonic clock, exportable as NDJSON.

Where :mod:`repro.obs.metrics` answers "how much / how many", spans answer
"*when*, and inside *what*": every engine phase -- grid build, dispatch,
worker execute, summary decode, cache store, spill, merge -- opens a span,
and nesting is tracked so a trace viewer (or ``tools/profile_kernel.py
--spans``) can reconstruct the phase tree of a run.

Design constraints, mirroring the metrics layer:

* **monotonic clock** (:func:`time.perf_counter`) -- wall-clock
  adjustments can never produce negative durations;
* **out-of-band** -- spans never touch summary bytes or cache files;
* **zero cost when off** -- the engine holds ``spans=None`` by default
  and every call site is gated on one ``is not None`` check;
  :class:`NullSpanRecorder` exists for call sites that want an
  unconditional recorder object.

Span times are recorded relative to the recorder's creation, so NDJSON
exports from one process share one time base.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from repro.core.canonical import canonical_json_bytes


class Span:
    """One completed (or still-open) phase interval."""

    __slots__ = ("name", "index", "parent", "depth", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        index: int,
        parent: Optional[int],
        depth: int,
        start: float,
        attrs: Optional[dict[str, Any]],
    ) -> None:
        self.name = name
        self.index = index
        self.parent = parent
        self.depth = depth
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds from open to close (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_json_dict(self) -> dict[str, Any]:
        """The span's NDJSON payload."""
        payload: dict[str, Any] = {
            "span": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "duration": round(self.duration, 9),
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


class SpanRecorder:
    """Records a tree of phase spans against the monotonic clock."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._spans: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span named ``name`` for the duration of the ``with`` body.

        Spans opened inside the body become children (``parent`` index,
        ``depth + 1``), so the recorder captures the phase tree, not just
        a flat list of intervals.
        """
        parent = self._stack[-1] if self._stack else None
        entry = Span(
            name,
            index=len(self._spans),
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            start=time.perf_counter() - self._origin,
            attrs=attrs or None,
        )
        self._spans.append(entry)
        self._stack.append(entry)
        try:
            yield entry
        finally:
            entry.end = time.perf_counter() - self._origin
            self._stack.pop()

    def record_interval(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> Span:
        """Record an already-timed interval (absolute perf-counter values).

        Used for work measured elsewhere -- e.g. a worker process's chunk
        execution, whose start/end the parent learns from the result
        frame.  The interval is parented under the currently open span.
        """
        parent = self._stack[-1] if self._stack else None
        entry = Span(
            name,
            index=len(self._spans),
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            start=start - self._origin,
            attrs=attrs or None,
        )
        entry.end = end - self._origin
        self._spans.append(entry)
        return entry

    # ------------------------------------------------------------------
    # queries and export
    # ------------------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Every recorded span, in open order."""
        return tuple(self._spans)

    def totals(self) -> dict[str, float]:
        """Summed duration per span name (open spans count as 0)."""
        totals: dict[str, float] = {}
        for span in self._spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_ndjson_bytes(self) -> bytes:
        """One canonical-JSON line per span, in open order."""
        return b"".join(
            canonical_json_bytes(span.to_json_dict()) + b"\n" for span in self._spans
        )

    def write_ndjson(self, path: Union[str, os.PathLike]) -> None:
        """Write the NDJSON export to ``path`` (parents created)."""
        import pathlib

        target = pathlib.Path(path)
        if target.parent != pathlib.Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(self.to_ndjson_bytes())


class NullSpanRecorder(SpanRecorder):
    """A recorder that records nothing (for unconditional call sites)."""

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:  # type: ignore[override]
        """Do nothing; the body runs unobserved."""
        yield None

    def record_interval(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> None:  # type: ignore[override]
        """Discard the interval."""
        return None
