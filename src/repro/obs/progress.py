"""The live ``--progress`` line: done/total, scenarios/s, hit rate, ETA.

Driven by the engine's streaming path: every in-order delivery ticks
:meth:`ProgressLine.update`, which rewrites one stderr line (throttled to
:attr:`ProgressLine.min_interval` so a fast sweep is not dominated by
terminal writes).  The line is observability-only -- stdout, summaries and
stats payloads are untouched, so piping a sweep's stdout stays clean.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressLine:
    """Rewrites one ``\\r``-terminated status line as a run progresses."""

    #: Seconds between repaints (the final repaint always happens).
    min_interval = 0.1

    def __init__(
        self,
        total: int,
        *,
        label: str = "progress",
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.started = time.perf_counter()
        self._last_paint = 0.0
        self._painted = False

    def update(
        self, done: int, *, executed: int = 0, cache_hits: int = 0, force: bool = False
    ) -> None:
        """Repaint the line for ``done`` completed tasks (throttled)."""
        now = time.perf_counter()
        if not force and done < self.total and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        elapsed = now - self.started
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = self.total - done
        eta = remaining / rate if rate > 0 else 0.0
        looked_up = executed + cache_hits
        hit_rate = cache_hits / looked_up if looked_up else 0.0
        self.stream.write(
            f"\r{self.label}: {done}/{self.total} "
            f"({rate:.0f} scenarios/s, cache {hit_rate:.0%}, "
            f"eta {eta:.1f}s)"
        )
        self.stream.flush()
        self._painted = True

    def close(self) -> None:
        """Finish the line (newline) if anything was painted."""
        if self._painted:
            self.stream.write("\n")
            self.stream.flush()
