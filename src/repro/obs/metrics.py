"""Mergeable run metrics: counters, gauges and fixed-bucket histograms.

The observability layer's data model is built around one requirement: a
sweep's metrics must aggregate across worker processes, shards and re-runs
**without an ordering contract**.  Every instrument therefore folds into a
snapshot whose merge is *associative and commutative*:

* **counters** add -- order-independent by construction;
* **gauges** are high-watermark gauges: ``set`` tracks the latest value
  locally, but snapshots carry (and merges keep) the *maximum*, the only
  gauge semantics that survives reordering;
* **histograms** have fixed bucket bounds declared at creation; merging
  adds per-bucket counts and keeps min/max, so a merged histogram equals
  the histogram of the concatenated observations.

Snapshots are canonical JSON (sorted keys, compact separators -- the
:mod:`repro.core.canonical` contract), so two registries holding the same
data serialize byte-identically regardless of instrument creation order.

Metrics are **strictly out-of-band**: nothing here touches
:class:`~repro.engine.summary.RunSummary` bytes, cache files or golden
tables.  Enabling metrics must never change a result, only describe the
run that produced it.

Deep layers (the sim kernel, the result cache, the transaction scheduler)
are instrumented against the *active registry*: a module-level slot that
is ``None`` unless a caller opted in via :func:`activate`.  The disabled
path is one ``is None`` check at scenario granularity -- the same pattern
as ``NullTrace`` -- which keeps the metrics-off overhead far below the
3% budget enforced by ``tools/check_overhead.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.core.canonical import canonical_json_bytes

#: Snapshot layout version, embedded in every snapshot.
SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds for durations in seconds
#: (exponential: 1us .. ~16s, plus overflow).
TIME_BUCKETS: tuple[float, ...] = tuple(1e-6 * 4**i for i in range(13))

#: Default buckets for simulated-time waits (in T).
SIM_TIME_BUCKETS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

#: Default buckets for counts per run (events, states, queue depths).
COUNT_BUCKETS: tuple[float, ...] = tuple(float(4**i) for i in range(12))


class Counter:
    """A monotonically increasing sum (merge: addition)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0 to keep merges monotone)."""
        self.value += amount


class Gauge:
    """A high-watermark gauge (merge: max).

    ``set`` remembers both the latest value (``value``, for local
    inspection) and the maximum ever set (``high``, the merged quantity).
    Only ``high`` enters snapshots: "latest" has no order-independent
    merge, the maximum does.
    """

    __slots__ = ("value", "high")

    def __init__(self) -> None:
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = value
        if value > self.high:
            self.high = value


class Histogram:
    """A fixed-bucket histogram (merge: per-bucket addition).

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Two histograms merge only
    when their bounds are identical -- the engine guarantees this by
    creating every histogram through the registry's named defaults.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = TIME_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds!r}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and snapshot into one canonical-JSON document.  Snapshots from any
    number of registries -- worker processes, shards, earlier runs --
    merge associatively and commutatively via :meth:`merge_snapshot`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = TIME_BUCKETS
    ) -> Histogram:
        """The histogram under ``name`` (created with ``bounds`` on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        return histogram

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The registry's state as a plain, canonically-orderable dict.

        Key order never matters (serialization sorts keys), so snapshots
        of registries built in different instrument orders are
        byte-identical.
        """
        histograms: dict[str, Any] = {}
        for name, histogram in self._histograms.items():
            histograms[name] = {
                "bounds": list(histogram.bounds),
                "counts": list(histogram.counts),
                "count": histogram.count,
                "total": histogram.total,
                "min": histogram.min,
                "max": histogram.max,
            }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.high for n, g in self._gauges.items()},
            "histograms": histograms,
        }

    def to_json_bytes(self) -> bytes:
        """Canonical JSON bytes of :meth:`snapshot`."""
        return canonical_json_bytes(self.snapshot())

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Addition for counters and histogram buckets, max for gauges:
        associative and commutative, so any merge tree over the same
        snapshots yields the same registry.
        """
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot schema {snapshot.get('schema')!r} "
                f"(this build speaks schema {SNAPSHOT_SCHEMA})"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if value > gauge.high:
                gauge.high = value
        for name, payload in snapshot.get("histograms", {}).items():
            bounds = tuple(payload["bounds"])
            histogram = self.histogram(name, bounds)
            if histogram.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{histogram.bounds} vs {bounds}"
                )
            for index, count in enumerate(payload["counts"]):
                histogram.counts[index] += count
            histogram.count += payload["count"]
            histogram.total += payload["total"]
            for attr, pick in (("min", min), ("max", max)):
                theirs = payload.get(attr)
                if theirs is not None:
                    ours = getattr(histogram, attr)
                    setattr(
                        histogram, attr, theirs if ours is None else pick(ours, theirs)
                    )

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """A fresh registry holding exactly ``snapshot``'s data."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry


# ----------------------------------------------------------------------
# the active registry (deep-instrumentation opt-in)
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def get_active() -> Optional[MetricsRegistry]:
    """The registry deep instrumentation records into (``None`` = off)."""
    return _ACTIVE


def set_active(registry: Optional[MetricsRegistry]) -> None:
    """Install (or clear) the active registry and the kernel's hook."""
    global _ACTIVE
    _ACTIVE = registry
    # The kernel cannot import obs (layering), so obs installs the hook.
    from repro.sim import kernel

    kernel.set_metrics_hook(_kernel_hook if registry is not None else None)


@contextmanager
def activate(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the active registry for the ``with`` body."""
    previous = _ACTIVE
    set_active(registry)
    try:
        yield registry
    finally:
        set_active(previous)


def _kernel_hook(scheduled: int, executed: int, cancelled: int, compactions: int) -> None:
    """Fold one kernel run's deltas into the active registry."""
    registry = _ACTIVE
    if registry is None:  # cleared mid-run; nothing to record
        return
    registry.counter("sim.events_scheduled").inc(scheduled)
    registry.counter("sim.events_executed").inc(executed)
    registry.counter("sim.events_cancelled").inc(cancelled)
    registry.counter("sim.heap_compactions").inc(compactions)
