"""Flat parameter sweeps over named axes, used by benchmarks and workloads.

The predecessor of the engine's typed
:class:`~repro.engine.grid.ScenarioGrid`: a :class:`ParameterSweep` is a
cartesian product over plain parameter dicts, enumerated deterministically
in declaration order.  ``ScenarioGrid.from_parameter_sweep`` lifts one onto
``ScenarioSpec`` fields for execution on the sweep engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence


def cartesian(parameters: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """The cartesian product of named parameter ranges as a list of dicts.

    Parameters enumerate in *declaration order* (first-declared varies
    slowest), so report columns and engine spec-hashes follow the order the
    caller wrote, not an alphabetical resort.
    """
    if not parameters:
        return [{}]
    names = list(parameters)
    combos = itertools.product(*(parameters[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass
class ParameterSweep:
    """A named sweep over protocol / scenario parameters.

    Attributes:
        name: label used in reports.
        parameters: mapping from parameter name to the values to sweep.
    """

    name: str
    parameters: dict[str, Sequence[Any]] = field(default_factory=dict)

    def points(self) -> list[dict[str, Any]]:
        """All combinations of the sweep's parameters."""
        return cartesian(self.parameters)

    def __len__(self) -> int:
        return len(self.points())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.points())
