"""Random partition-schedule generation for stress sweeps."""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.partition import PartitionSchedule, PartitionSpec


def random_simple_split(
    n_sites: int, rng: random.Random, *, master: int = 1
) -> PartitionSpec:
    """A random simple split keeping ``master`` in the first group."""
    slaves = [site for site in range(1, n_sites + 1) if site != master]
    size = rng.randint(1, len(slaves))
    g2 = rng.sample(slaves, size)
    g1 = [site for site in range(1, n_sites + 1) if site not in g2]
    return PartitionSpec.simple(g1, g2)


def random_partition_schedule(
    n_sites: int,
    *,
    seed: int = 0,
    earliest: float = 0.25,
    latest: float = 8.0,
    master: int = 1,
) -> PartitionSchedule:
    """A permanent simple partition at a random onset time and split."""
    rng = random.Random(seed)
    at = rng.uniform(earliest, latest)
    return PartitionSchedule.permanent(at, random_simple_split(n_sites, rng, master=master))


def random_transient_schedule(
    n_sites: int,
    *,
    seed: int = 0,
    earliest: float = 0.25,
    latest: float = 8.0,
    min_duration: float = 0.5,
    max_duration: float = 6.0,
    master: int = 1,
) -> PartitionSchedule:
    """A transient simple partition with random onset, duration and split."""
    rng = random.Random(seed)
    at = rng.uniform(earliest, latest)
    duration = rng.uniform(min_duration, max_duration)
    spec = random_simple_split(n_sites, rng, master=master)
    g1, g2 = spec.groups
    return PartitionSchedule.transient(at, at + duration, g1, g2)
