"""Transaction workload generation.

The paper's motivating setting is a distributed database executing many
concurrent update transactions; the cost of blocking is that other
transactions cannot reach the data a blocked transaction holds locked.  The
generators below build streams of update transactions over a configurable
keyspace so the availability experiment can measure that cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.db.transactions import Operation, Transaction


@dataclass(frozen=True)
class TransactionMix:
    """Shape of generated transactions.

    Attributes:
        read_fraction: fraction of operations that are reads.
        operations_per_site: data operations a transaction performs at each
            participating site.
    """

    read_fraction: float = 0.2
    operations_per_site: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1]: {self.read_fraction}")
        if self.operations_per_site < 1:
            raise ValueError("operations_per_site must be at least 1")


@dataclass
class WorkloadConfig:
    """Configuration of a generated transaction stream.

    Attributes:
        n_sites: sites in the system (site 1 is always a possible master).
        n_transactions: number of transactions to generate.
        keys: keyspace to draw keys from.
        participants_per_transaction: how many sites each transaction touches
            (``None`` means all of them).
        mix: read/write shape of each transaction.
        master: coordinating site for every transaction.
        seed: RNG seed; generation is deterministic given the config.
    """

    n_sites: int = 3
    n_transactions: int = 10
    keys: Sequence[str] = ("account-1", "account-2", "account-3", "account-4")
    participants_per_transaction: Optional[int] = None
    mix: TransactionMix = field(default_factory=TransactionMix)
    master: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1: {self.n_sites}")
        if self.n_transactions < 0:
            raise ValueError(f"n_transactions must be >= 0: {self.n_transactions}")
        if not self.keys:
            raise ValueError("keys must name at least one key")
        if not 1 <= self.master <= self.n_sites:
            raise ValueError(f"master {self.master} outside 1..{self.n_sites}")
        if (
            self.participants_per_transaction is not None
            and self.participants_per_transaction < 2
        ):
            # A distributed transaction needs the master plus at least one
            # slave; 1 would silently be generated as 2, so reject it.
            raise ValueError(
                "participants_per_transaction must be >= 2 (master plus a slave): "
                f"{self.participants_per_transaction}"
            )


def generate_transactions(config: WorkloadConfig) -> list[Transaction]:
    """Generate a deterministic list of transactions for ``config``."""
    rng = random.Random(config.seed)
    transactions = []
    for index in range(config.n_transactions):
        transactions.append(_one_transaction(config, rng, index))
    return transactions


def _one_transaction(config: WorkloadConfig, rng: random.Random, index: int) -> Transaction:
    sites = list(range(1, config.n_sites + 1))
    if config.participants_per_transaction is None or config.participants_per_transaction >= len(sites):
        participants = sites
    else:
        count = config.participants_per_transaction
        others = [site for site in sites if site != config.master]
        participants = [config.master] + sorted(rng.sample(others, count - 1))
    operations: list[Operation] = []
    for site in participants:
        for _ in range(config.mix.operations_per_site):
            key = rng.choice(list(config.keys))
            if rng.random() < config.mix.read_fraction:
                operations.append(Operation.read(site, key))
            else:
                operations.append(Operation.write(site, key, f"value-{index}-{site}"))
    return Transaction.create(
        config.master,
        operations,
        transaction_id=f"workload-txn-{index + 1}",
    )


def transaction_stream(config: WorkloadConfig) -> Iterator[Transaction]:
    """Lazily yield the transactions of :func:`generate_transactions`."""
    yield from generate_transactions(config)
