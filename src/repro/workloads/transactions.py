"""Transaction workload generation.

The paper's motivating setting is a distributed database executing many
concurrent update transactions; the cost of blocking is that other
transactions cannot reach the data a blocked transaction holds locked.  The
generators below build streams of update transactions over a configurable
keyspace -- uniform or hot-spot skewed (zipf-like weights) -- plus the
open-loop arrival processes (:func:`generate_arrivals`) that offer them,
so the availability experiments can measure that cost under realistic
load shapes.  Everything is a pure function of its config and seed.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.db.transactions import Operation, Transaction

#: Supported open-loop arrival processes (see :func:`generate_arrivals`).
ARRIVAL_PROCESSES: tuple[str, ...] = ("uniform", "poisson")


@dataclass(frozen=True)
class TransactionMix:
    """Shape of generated transactions.

    Attributes:
        read_fraction: fraction of operations that are reads.
        operations_per_site: data operations a transaction performs at each
            participating site.
    """

    read_fraction: float = 0.2
    operations_per_site: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1]: {self.read_fraction}")
        if self.operations_per_site < 1:
            raise ValueError("operations_per_site must be at least 1")


@dataclass
class WorkloadConfig:
    """Configuration of a generated transaction stream.

    Attributes:
        n_sites: sites in the system (site 1 is always a possible master).
        n_transactions: number of transactions to generate.
        keys: keyspace to draw keys from.
        participants_per_transaction: how many sites each transaction touches
            (``None`` means all of them).
        mix: read/write shape of each transaction.
        master: coordinating site for every transaction.
        hotspot: zipf-like key-skew exponent.  0 draws keys uniformly (the
            PR 3 behaviour); s > 0 weights the k-th key by ``1/(k+1)**s``,
            concentrating traffic on the front of the keyspace (hot-spot
            contention).
        seed: RNG seed; generation is deterministic given the config.
    """

    n_sites: int = 3
    n_transactions: int = 10
    keys: Sequence[str] = ("account-1", "account-2", "account-3", "account-4")
    participants_per_transaction: Optional[int] = None
    mix: TransactionMix = field(default_factory=TransactionMix)
    master: int = 1
    hotspot: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1: {self.n_sites}")
        if self.n_transactions < 0:
            raise ValueError(f"n_transactions must be >= 0: {self.n_transactions}")
        if not self.keys:
            raise ValueError("keys must name at least one key")
        if self.hotspot < 0:
            raise ValueError(f"hotspot must be >= 0: {self.hotspot}")
        if not 1 <= self.master <= self.n_sites:
            raise ValueError(f"master {self.master} outside 1..{self.n_sites}")
        if (
            self.participants_per_transaction is not None
            and self.participants_per_transaction < 2
        ):
            # A distributed transaction needs the master plus at least one
            # slave; 1 would silently be generated as 2, so reject it.
            raise ValueError(
                "participants_per_transaction must be >= 2 (master plus a slave): "
                f"{self.participants_per_transaction}"
            )


def key_weights(config: WorkloadConfig) -> Optional[list[float]]:
    """Zipf-like selection weights for the keyspace (``None`` = uniform).

    The k-th key (0-based) gets weight ``1/(k+1)**hotspot``; with the
    default ``hotspot=0`` every key weighs 1 and the generator takes the
    unweighted path, preserving PR 3's byte-exact random streams.
    """
    if config.hotspot == 0.0:
        return None
    return [1.0 / (rank + 1) ** config.hotspot for rank in range(len(config.keys))]


def generate_transactions(config: WorkloadConfig) -> list[Transaction]:
    """Generate a deterministic list of transactions for ``config``."""
    rng = random.Random(config.seed)
    # Hoisted out of the per-operation loop: the key list and (on the
    # skewed path) the cumulative weight table are invariant across the
    # whole stream, and rng.choices(cum_weights=...) consumes the RNG
    # identically to the weights= form.
    keys = list(config.keys)
    weights = key_weights(config)
    cum_weights = list(itertools.accumulate(weights)) if weights is not None else None
    transactions = []
    for index in range(config.n_transactions):
        transactions.append(_one_transaction(config, rng, index, keys, cum_weights))
    return transactions


def _one_transaction(
    config: WorkloadConfig,
    rng: random.Random,
    index: int,
    keys: list[str],
    cum_weights: Optional[list[float]] = None,
) -> Transaction:
    sites = list(range(1, config.n_sites + 1))
    if config.participants_per_transaction is None or config.participants_per_transaction >= len(sites):
        participants = sites
    else:
        count = config.participants_per_transaction
        others = [site for site in sites if site != config.master]
        participants = [config.master] + sorted(rng.sample(others, count - 1))
    operations: list[Operation] = []
    for site in participants:
        for _ in range(config.mix.operations_per_site):
            if cum_weights is None:
                key = rng.choice(keys)
            else:
                key = rng.choices(keys, cum_weights=cum_weights, k=1)[0]
            if rng.random() < config.mix.read_fraction:
                operations.append(Operation.read(site, key))
            else:
                operations.append(Operation.write(site, key, f"value-{index}-{site}"))
    return Transaction.create(
        config.master,
        operations,
        transaction_id=f"workload-txn-{index + 1}",
    )


def generate_arrivals(
    n: int, *, mean_gap: float, process: str = "uniform", seed: int = 0
) -> list[float]:
    """Admission instants for an ``n``-transaction stream.

    ``"uniform"`` spaces arrivals exactly ``mean_gap`` apart (the closed
    deterministic schedule PR 3 used); ``"poisson"`` draws exponential
    inter-arrival gaps with the same mean from a string-seeded RNG --
    open-loop load whose bursts are a pure function of ``seed``, so the
    schedule is part of the spec hash and byte-identical across workers
    and shards.  Both processes start at t=0.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean_gap <= 0:
        raise ValueError(f"mean_gap must be > 0, got {mean_gap}")
    if process == "uniform":
        return [index * mean_gap for index in range(n)]
    if process == "poisson":
        rng = random.Random(f"arrivals:{seed}")
        arrivals: list[float] = []
        now = 0.0
        for _ in range(n):
            arrivals.append(now)
            now += rng.expovariate(1.0 / mean_gap)
        return arrivals
    raise ValueError(
        f"unknown arrival process {process!r} (expected one of {ARRIVAL_PROCESSES})"
    )


def transaction_stream(config: WorkloadConfig) -> Iterator[Transaction]:
    """Lazily yield the transactions of :func:`generate_transactions`."""
    yield from generate_transactions(config)
