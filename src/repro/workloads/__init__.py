"""Workload generation: transactions, partition schedules and sweeps."""

from repro.workloads.partitions import (
    random_partition_schedule,
    random_simple_split,
    random_transient_schedule,
)
from repro.workloads.sweeps import ParameterSweep, cartesian
from repro.workloads.transactions import (
    TransactionMix,
    WorkloadConfig,
    generate_transactions,
)

__all__ = [
    "ParameterSweep",
    "TransactionMix",
    "WorkloadConfig",
    "cartesian",
    "generate_transactions",
    "random_partition_schedule",
    "random_simple_split",
    "random_transient_schedule",
]
