"""Concurrency sets, sender sets and committable-state classification.

These are the three notions Section 2-3 of the paper builds on:

* the **concurrency set** ``C(s)`` of a local state ``s`` is the set of local
  states potentially concurrent with it in some execution;
* the **sender set** ``S(s)`` is the set of local states that send messages
  receivable in ``s``;
* a local state is **committable** if its occupancy by any site implies that
  all sites have voted yes on committing the transaction.

All three are computed from the reachable global-state graph produced by
:mod:`repro.core.reachability`, for a given number of participating sites.
Local states are identified by ``(role, state-name)`` pairs because all
slaves run the same automaton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.fsa import CommitProtocolSpec, MASTER_ROLE, SLAVE_ROLE
from repro.core.reachability import ReachabilityResult, explore

LocalStateId = tuple[str, str]  # (role, state name)


@dataclass
class ConcurrencyAnalysis:
    """The derived sets for one protocol instantiated with ``n_sites`` sites."""

    spec: CommitProtocolSpec
    n_sites: int
    concurrency: dict[LocalStateId, set[LocalStateId]] = field(default_factory=dict)
    senders: dict[LocalStateId, set[LocalStateId]] = field(default_factory=dict)
    committable: dict[LocalStateId, bool] = field(default_factory=dict)
    occupied: set[LocalStateId] = field(default_factory=set)
    global_state_count: int = 0

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    def is_commit_state(self, local: LocalStateId) -> bool:
        """True when ``local`` is a commit state of its role."""
        role, state = local
        return state in self.spec.automaton(role).commit_states

    def is_abort_state(self, local: LocalStateId) -> bool:
        """True when ``local`` is an abort state of its role."""
        role, state = local
        return state in self.spec.automaton(role).abort_states

    def concurrency_set(self, role: str, state: str) -> set[LocalStateId]:
        """The paper's ``C(s)`` for the local state ``state`` of ``role``."""
        return set(self.concurrency.get((role, state), set()))

    def sender_set(self, role: str, state: str) -> set[LocalStateId]:
        """The paper's ``S(s)``."""
        return set(self.senders.get((role, state), set()))

    def is_committable(self, role: str, state: str) -> bool:
        """True when ``(role, state)`` is committable (Section 3's definition)."""
        return self.committable.get((role, state), False)

    def has_commit_in_concurrency_set(self, role: str, state: str) -> bool:
        """True when ``C((role, state))`` contains some commit state."""
        return any(self.is_commit_state(other) for other in self.concurrency_set(role, state))

    def has_abort_in_concurrency_set(self, role: str, state: str) -> bool:
        """True when ``C((role, state))`` contains some abort state."""
        return any(self.is_abort_state(other) for other in self.concurrency_set(role, state))

    def local_states(self) -> tuple[LocalStateId, ...]:
        """Every (role, state) of the protocol, reachable or not."""
        return self.spec.local_states()


def analyze(
    spec: CommitProtocolSpec,
    n_sites: int,
    *,
    reachability: Optional[ReachabilityResult] = None,
) -> ConcurrencyAnalysis:
    """Compute concurrency sets, sender sets and committability for ``spec``.

    Args:
        spec: the commit protocol.
        n_sites: number of participating sites used for the instantiation.
        reachability: a pre-computed reachability result (computed afresh
            when omitted).
    """
    result = reachability if reachability is not None else explore(spec, n_sites)
    analysis = ConcurrencyAnalysis(
        spec=spec, n_sites=n_sites, global_state_count=result.state_count
    )

    # Concurrency sets and committability come straight from occupancies.
    committable_so_far: dict[LocalStateId, bool] = {}
    for state in result.states:
        for site in range(1, n_sites + 1):
            role = result.role_of(site)
            local: LocalStateId = (role, state.local(site))
            analysis.occupied.add(local)
            cell = analysis.concurrency.setdefault(local, set())
            for other_site in range(1, n_sites + 1):
                if other_site == site:
                    continue
                other: LocalStateId = (result.role_of(other_site), state.local(other_site))
                cell.add(other)
            # Committable: every occupancy must have all sites voted yes.
            previous = committable_so_far.get(local, True)
            committable_so_far[local] = previous and state.all_voted()
    # States never occupied are not committable by (vacuous) convention;
    # callers should check `occupied` when it matters.
    for local in spec.local_states():
        analysis.concurrency.setdefault(local, set())
        analysis.senders.setdefault(local, set())
        analysis.committable[local] = committable_so_far.get(local, False)

    # Sender sets come from the reception relation recorded during exploration.
    for receiver, senders in result.receptions.items():
        analysis.senders.setdefault(receiver, set()).update(senders)

    return analysis


def format_analysis(analysis: ConcurrencyAnalysis) -> str:
    """Human-readable summary of the analysis (used by examples and docs)."""
    lines = [
        f"protocol: {analysis.spec.name} (n={analysis.n_sites}, "
        f"{analysis.global_state_count} reachable global states)",
    ]
    for role in (MASTER_ROLE, SLAVE_ROLE):
        automaton = analysis.spec.automaton(role)
        for state in sorted(automaton.states):
            local = (role, state)
            if local not in analysis.occupied:
                continue
            concurrency = ", ".join(
                f"{r}:{s}" for r, s in sorted(analysis.concurrency_set(role, state))
            )
            senders = ", ".join(
                f"{r}:{s}" for r, s in sorted(analysis.sender_set(role, state))
            )
            committable = "committable" if analysis.is_committable(role, state) else "noncommittable"
            lines.append(
                f"  {role}:{state:<3} [{committable}]  C(s) = {{{concurrency}}}  S(s) = {{{senders}}}"
            )
    return "\n".join(lines)
