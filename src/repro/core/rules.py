"""Rule (a) and Rule (b): timeout and undeliverable-message augmentation.

Section 2 of the paper quotes the two rules Skeen & Stonebraker proved
necessary and sufficient for two-site simple partitioning with return of
undeliverable messages:

* **Rule (a)** -- for a state ``si``: if its concurrency set ``C(si)``
  contains a commit state, assign a timeout transition from ``si`` to a
  commit state; else assign a timeout transition to an abort state.
* **Rule (b)** -- for a state ``sj``: if ``ti`` is in ``S(sj)`` and ``ti``
  has a timeout transition to a commit (abort) state, assign an
  undeliverable-message transition from ``sj`` to a commit (abort) state.

Applying them to the two-phase commit protocol mechanically regenerates the
extended protocol of Fig. 2; applying them to the three-phase commit protocol
produces the "naive" extension whose inconsistency Section 3 demonstrates
(and our simulator reproduces).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.concurrency import ConcurrencyAnalysis, LocalStateId, analyze
from repro.core.fsa import CommitProtocolSpec, MASTER_ROLE, SLAVE_ROLE


class FinalAction(enum.Enum):
    """The terminal decision a timeout / undeliverable transition leads to."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass
class AugmentedProtocol:
    """A commit protocol plus Rule (a)/(b) timeout and UD transitions.

    Attributes:
        spec: the underlying commit protocol.
        n_sites: instantiation size used when deriving the sets.
        timeout_action: Rule (a)'s target per (role, state); final states and
            unoccupied states carry no entry.
        undeliverable_action: Rule (b)'s target per (role, state); states
            whose sender set is empty (they never receive messages) carry no
            entry, and states whose sender set mixes commit- and
            abort-timeouts are recorded in :attr:`ambiguous`.
        ambiguous: (role, state) pairs for which Rule (b) is not well defined.
    """

    spec: CommitProtocolSpec
    n_sites: int
    timeout_action: dict[LocalStateId, FinalAction] = field(default_factory=dict)
    undeliverable_action: dict[LocalStateId, FinalAction] = field(default_factory=dict)
    ambiguous: set[LocalStateId] = field(default_factory=set)

    def timeout_target(self, role: str, state: str) -> Optional[FinalAction]:
        """Rule (a) action for ``(role, state)`` or ``None``."""
        return self.timeout_action.get((role, state))

    def undeliverable_target(self, role: str, state: str) -> Optional[FinalAction]:
        """Rule (b) action for ``(role, state)`` or ``None``."""
        return self.undeliverable_action.get((role, state))

    def describe(self) -> str:
        """Readable table of the augmentation (mirrors Fig. 2's annotations)."""
        lines = [f"augmentation of {self.spec.name} (n={self.n_sites})"]
        for role in (MASTER_ROLE, SLAVE_ROLE):
            automaton = self.spec.automaton(role)
            for state in sorted(automaton.states):
                timeout = self.timeout_action.get((role, state))
                undeliverable = self.undeliverable_action.get((role, state))
                if timeout is None and undeliverable is None:
                    continue
                parts = []
                if timeout is not None:
                    parts.append(f"timeout -> {timeout.value}")
                if undeliverable is not None:
                    parts.append(f"undeliverable -> {undeliverable.value}")
                lines.append(f"  {role}:{state:<3} {'; '.join(parts)}")
        return "\n".join(lines)


def rule_a(analysis: ConcurrencyAnalysis) -> dict[LocalStateId, FinalAction]:
    """Apply Rule (a) to every occupied, non-final local state."""
    actions: dict[LocalStateId, FinalAction] = {}
    for local in sorted(analysis.occupied):
        role, state = local
        automaton = analysis.spec.automaton(role)
        if automaton.is_final(state):
            continue
        if analysis.has_commit_in_concurrency_set(role, state):
            actions[local] = FinalAction.COMMIT
        else:
            actions[local] = FinalAction.ABORT
    return actions


def rule_b(
    analysis: ConcurrencyAnalysis,
    timeout_action: dict[LocalStateId, FinalAction],
) -> tuple[dict[LocalStateId, FinalAction], set[LocalStateId]]:
    """Apply Rule (b) given Rule (a)'s timeout assignments.

    Returns the undeliverable-message action map and the set of states for
    which the rule is ambiguous (sender set mixes commit and abort
    timeouts).
    """
    actions: dict[LocalStateId, FinalAction] = {}
    ambiguous: set[LocalStateId] = set()
    for local in sorted(analysis.occupied):
        role, state = local
        automaton = analysis.spec.automaton(role)
        if automaton.is_final(state):
            continue
        senders = analysis.sender_set(role, state)
        if not senders:
            continue
        sender_actions = {
            timeout_action[sender]
            for sender in senders
            if sender in timeout_action
        }
        if not sender_actions:
            continue
        if len(sender_actions) > 1:
            ambiguous.add(local)
            continue
        actions[local] = next(iter(sender_actions))
    return actions, ambiguous


def augment_with_rules(
    spec: CommitProtocolSpec,
    n_sites: int,
    *,
    analysis: Optional[ConcurrencyAnalysis] = None,
) -> AugmentedProtocol:
    """Derive the Rule (a)/(b) extension of ``spec`` for ``n_sites`` sites."""
    analysis = analysis if analysis is not None else analyze(spec, n_sites)
    timeout_action = rule_a(analysis)
    undeliverable_action, ambiguous = rule_b(analysis, timeout_action)
    return AugmentedProtocol(
        spec=spec,
        n_sites=n_sites,
        timeout_action=timeout_action,
        undeliverable_action=undeliverable_action,
        ambiguous=ambiguous,
    )
