"""Lemma 1, Lemma 2 and the structural non-blocking conditions.

Section 3 of the paper establishes two necessary conditions for a commit
protocol to be (potentially) resilient to optimistic multisite simple
network partitioning:

* **Lemma 1** -- no local state may have both a commit and an abort state in
  its concurrency set;
* **Lemma 2** -- no *noncommittable* local state may have a commit state in
  its concurrency set.

They mirror Skeen's Fundamental Nonblocking Theorem (which handles site
failures instead of partitions).  The checks below evaluate the conditions
against the exhaustively computed concurrency sets, so "the three-phase
commit protocol satisfies both lemmas while the two-phase commit protocol
violates them" is a verified fact of the reproduction rather than a quote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.concurrency import ConcurrencyAnalysis, LocalStateId, analyze
from repro.core.fsa import CommitProtocolSpec


@dataclass
class LemmaReport:
    """Outcome of the structural checks for one protocol instantiation."""

    spec_name: str
    n_sites: int
    lemma1_violations: list[LocalStateId] = field(default_factory=list)
    lemma2_violations: list[LocalStateId] = field(default_factory=list)

    @property
    def satisfies_lemma1(self) -> bool:
        """True when no state has both a commit and an abort in its concurrency set."""
        return not self.lemma1_violations

    @property
    def satisfies_lemma2(self) -> bool:
        """True when no noncommittable state has a commit in its concurrency set."""
        return not self.lemma2_violations

    @property
    def satisfies_both(self) -> bool:
        """True when the protocol can potentially be made resilient (Lemmas 1-2)."""
        return self.satisfies_lemma1 and self.satisfies_lemma2

    def summary(self) -> str:
        """One-line verdict, matching the wording used in EXPERIMENTS.md."""
        verdict = "satisfies" if self.satisfies_both else "violates"
        return (
            f"{self.spec_name} (n={self.n_sites}) {verdict} the Lemma 1/2 conditions "
            f"(lemma1 violations: {len(self.lemma1_violations)}, "
            f"lemma2 violations: {len(self.lemma2_violations)})"
        )


def check_lemma1(analysis: ConcurrencyAnalysis) -> list[LocalStateId]:
    """Local states whose concurrency set contains both a commit and an abort."""
    violations: list[LocalStateId] = []
    for local in sorted(analysis.occupied):
        role, state = local
        if analysis.has_commit_in_concurrency_set(role, state) and analysis.has_abort_in_concurrency_set(
            role, state
        ):
            violations.append(local)
    return violations


def check_lemma2(analysis: ConcurrencyAnalysis) -> list[LocalStateId]:
    """Noncommittable local states whose concurrency set contains a commit."""
    violations: list[LocalStateId] = []
    for local in sorted(analysis.occupied):
        role, state = local
        if analysis.is_committable(role, state):
            continue
        if analysis.has_commit_in_concurrency_set(role, state):
            violations.append(local)
    return violations


def check_nonblocking_conditions(
    spec: CommitProtocolSpec,
    n_sites: int,
    *,
    analysis: Optional[ConcurrencyAnalysis] = None,
) -> LemmaReport:
    """Evaluate Lemma 1 and Lemma 2 for ``spec`` instantiated with ``n_sites``."""
    analysis = analysis if analysis is not None else analyze(spec, n_sites)
    return LemmaReport(
        spec_name=spec.name,
        n_sites=n_sites,
        lemma1_violations=check_lemma1(analysis),
        lemma2_violations=check_lemma2(analysis),
    )
