"""The paper's formal machinery and its primary contribution.

This package contains everything in the paper that is *protocol-independent
reasoning* rather than a timed execution:

* :mod:`repro.core.fsa` -- the Skeen & Stonebraker finite-state-automaton
  model of commit protocols (local states, read/send specifications,
  role automata, protocol specifications);
* :mod:`repro.core.catalog` -- the protocols of Figs. 1, 3 and 8 (two-phase
  commit, three-phase commit, modified three-phase commit) expressed in that
  model;
* :mod:`repro.core.reachability` -- exhaustive failure-free global-state
  exploration;
* :mod:`repro.core.concurrency` -- concurrency sets ``C(s)``, sender sets
  ``S(s)`` and committable-state classification;
* :mod:`repro.core.rules` -- Rule (a) and Rule (b) augmentation with timeout
  and undeliverable-message transitions (reproducing Fig. 2 mechanically);
* :mod:`repro.core.lemmas` -- the structural checks of Lemma 1 and Lemma 2;
* :mod:`repro.core.termination` -- the decision logic of the termination
  protocol of Section 5.3 (the paper's contribution);
* :mod:`repro.core.transient` -- the Section 6 extension to transient
  partitioning (the 5T rule) and its case taxonomy;
* :mod:`repro.core.generalize` -- Theorem 10's generic construction.
"""

from repro.core import messages
from repro.core.catalog import (
    four_phase_commit,
    modified_three_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.concurrency import ConcurrencyAnalysis, analyze
from repro.core.fsa import (
    CommitProtocolSpec,
    ReadSpec,
    RoleAutomaton,
    SendSpec,
    Transition,
)
from repro.core.lemmas import LemmaReport, check_lemma1, check_lemma2, check_nonblocking_conditions
from repro.core.reachability import GlobalState, ReachabilityResult, explore
from repro.core.rules import AugmentedProtocol, FinalAction, augment_with_rules
from repro.core.termination import (
    MasterTerminationDecision,
    MasterTerminationTracker,
    TerminationTimers,
    master_decision,
)
from repro.core.transient import PartitionCase, TransientPolicy, worst_case_wait
from repro.core.generalize import GeneralizationReport, check_theorem10_conditions, derive_termination_plan

__all__ = [
    "AugmentedProtocol",
    "CommitProtocolSpec",
    "ConcurrencyAnalysis",
    "FinalAction",
    "GeneralizationReport",
    "GlobalState",
    "LemmaReport",
    "MasterTerminationDecision",
    "MasterTerminationTracker",
    "PartitionCase",
    "ReachabilityResult",
    "ReadSpec",
    "RoleAutomaton",
    "SendSpec",
    "TerminationTimers",
    "Transition",
    "TransientPolicy",
    "analyze",
    "augment_with_rules",
    "check_lemma1",
    "check_lemma2",
    "check_nonblocking_conditions",
    "check_theorem10_conditions",
    "derive_termination_plan",
    "explore",
    "four_phase_commit",
    "master_decision",
    "messages",
    "modified_three_phase_commit",
    "quorum_commit",
    "three_phase_commit",
    "two_phase_commit",
    "worst_case_wait",
]
