"""Canonical message kind names used throughout the reproduction.

The paper's protocols exchange a small vocabulary of messages; keeping the
names in one module avoids stringly-typed drift between the formal model
(:mod:`repro.core`), the timed protocol roles (:mod:`repro.protocols`) and
the analysis layer.
"""

from __future__ import annotations

# --- two-phase / three-phase commit protocol messages (Figs. 1 and 3) -----
REQUEST = "request"  # the external transaction request arriving at the master
XACT = "xact"        # master -> slaves: the transaction itself
YES = "yes"          # slave -> master: willing to commit
NO = "no"            # slave -> master: unilateral abort
PREPARE = "prepare"  # master -> slaves: everyone voted yes (3PC only)
ACK = "ack"          # slave -> master: prepare acknowledged (3PC only)
COMMIT = "commit"    # decision broadcast
ABORT = "abort"      # decision broadcast

# --- termination protocol messages (Section 5.3) ---------------------------
PROBE = "probe"      # slave -> master: probe(trans_id, slave_id) after timing out in p

# --- quorum commit baseline -------------------------------------------------
PRE_COMMIT = "pre-commit"
PRE_ABORT = "pre-abort"

ALL_KINDS = frozenset(
    {
        REQUEST,
        XACT,
        YES,
        NO,
        PREPARE,
        ACK,
        COMMIT,
        ABORT,
        PROBE,
        PRE_COMMIT,
        PRE_ABORT,
    }
)

# --- canonical local state names (the paper's q / w / p / c / a) -----------
INITIAL = "q"
WAIT = "w"
PREPARED = "p"
COMMITTED = "c"
ABORTED = "a"
PRE_COMMITTED = "pc"  # quorum commit's buffered-commit state
PRE_ABORTED = "pa"    # quorum commit's buffered-abort state
