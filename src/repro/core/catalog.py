"""The commit protocols of the paper's figures, as formal specifications.

* :func:`two_phase_commit` -- Fig. 1, the centralized two-phase commit
  protocol;
* :func:`three_phase_commit` -- Fig. 3, Skeen's three-phase commit protocol;
* :func:`modified_three_phase_commit` -- Fig. 8, the three-phase commit
  protocol with the extra ``w -> c`` slave transition the termination
  protocol requires (so a slave still waiting in ``w`` accepts a commit
  relayed by another slave in ``G2``);
* :func:`quorum_commit` -- the quorum-based commit protocol of Skeen's 1982
  Berkeley Workshop paper (reference [5]), used as the Theorem 10 baseline.

The specifications are *data*: the reachability and rules modules derive the
extended protocols (Fig. 2 and the naive extended 3PC of Section 3) from
them instead of hard-coding the figures.
"""

from __future__ import annotations

from repro.core import messages as m
from repro.core.fsa import (
    ALL_SLAVES,
    ANY_SLAVE,
    CommitProtocolSpec,
    EACH_SLAVE,
    MASTER,
    MASTER_ROLE,
    OPERATOR,
    ReadSpec,
    SendSpec,
    SLAVE_ROLE,
    Transition,
    role_automaton,
)


def _t(source: str, read: ReadSpec, sends: tuple[SendSpec, ...], target: str) -> Transition:
    return Transition(source=source, read=read, sends=sends, target=target)


def two_phase_commit() -> CommitProtocolSpec:
    """Fig. 1: the centralized two-phase commit protocol.

    The master forwards the transaction to the slaves, collects votes and
    broadcasts the decision.  The slave's wait state ``w`` has both a commit
    and an abort in its concurrency set, which is why (Lemma 1) the protocol
    cannot be made resilient to multisite partitioning.
    """
    master = role_automaton(
        MASTER_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(
                m.INITIAL,
                ReadSpec(m.REQUEST, OPERATOR),
                (SendSpec(m.XACT, ALL_SLAVES),),
                m.WAIT,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.YES, EACH_SLAVE),
                (SendSpec(m.COMMIT, ALL_SLAVES),),
                m.COMMITTED,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.NO, ANY_SLAVE),
                (SendSpec(m.ABORT, ALL_SLAVES),),
                m.ABORTED,
            ),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.COMMITTED],
    )
    slave = role_automaton(
        SLAVE_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.YES, MASTER),), m.WAIT),
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.NO, MASTER),), m.ABORTED),
            _t(m.WAIT, ReadSpec(m.COMMIT, MASTER), (), m.COMMITTED),
            _t(m.WAIT, ReadSpec(m.ABORT, MASTER), (), m.ABORTED),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.WAIT, m.COMMITTED],
    )
    return CommitProtocolSpec(
        name="two-phase-commit",
        master=master,
        slave=slave,
        description="Centralized 2PC (Gray / Lampson-Sturgis), Fig. 1 of the paper.",
    )


def three_phase_commit() -> CommitProtocolSpec:
    """Fig. 3: Skeen's three-phase commit protocol.

    A buffering ``prepare`` phase is inserted between the vote collection and
    the commit broadcast so that no local state has both a commit and an
    abort in its concurrency set (Lemma 1) and no noncommittable state has a
    commit in its concurrency set (Lemma 2).
    """
    master = role_automaton(
        MASTER_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(
                m.INITIAL,
                ReadSpec(m.REQUEST, OPERATOR),
                (SendSpec(m.XACT, ALL_SLAVES),),
                m.WAIT,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.YES, EACH_SLAVE),
                (SendSpec(m.PREPARE, ALL_SLAVES),),
                m.PREPARED,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.NO, ANY_SLAVE),
                (SendSpec(m.ABORT, ALL_SLAVES),),
                m.ABORTED,
            ),
            _t(
                m.PREPARED,
                ReadSpec(m.ACK, EACH_SLAVE),
                (SendSpec(m.COMMIT, ALL_SLAVES),),
                m.COMMITTED,
            ),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.PREPARED, m.COMMITTED],
    )
    slave = role_automaton(
        SLAVE_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.YES, MASTER),), m.WAIT),
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.NO, MASTER),), m.ABORTED),
            _t(m.WAIT, ReadSpec(m.PREPARE, MASTER), (SendSpec(m.ACK, MASTER),), m.PREPARED),
            _t(m.WAIT, ReadSpec(m.ABORT, MASTER), (), m.ABORTED),
            _t(m.PREPARED, ReadSpec(m.COMMIT, MASTER), (), m.COMMITTED),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.WAIT, m.PREPARED, m.COMMITTED],
    )
    return CommitProtocolSpec(
        name="three-phase-commit",
        master=master,
        slave=slave,
        description="Skeen's non-blocking 3PC, Fig. 3 of the paper.",
    )


def modified_three_phase_commit() -> CommitProtocolSpec:
    """Fig. 8: 3PC with the extra slave transition ``w -> c`` on a commit.

    Section 5.3 observes that a slave in ``G2`` that never received a prepare
    message may be handed a commit by *another slave* acting for the master;
    without the ``w -> c`` transition it would ignore that (possibly unique)
    commit and later abort.  The termination protocol therefore runs on this
    modified automaton.
    """
    base = three_phase_commit()
    slave_transitions = list(base.slave.transitions)
    slave_transitions.append(
        _t(m.WAIT, ReadSpec(m.COMMIT, MASTER), (), m.COMMITTED)
    )
    slave = role_automaton(
        SLAVE_ROLE,
        initial=base.slave.initial,
        transitions=slave_transitions,
        commit_states=base.slave.commit_states,
        abort_states=base.slave.abort_states,
        yes_vote_states=base.slave.yes_vote_states,
    )
    return CommitProtocolSpec(
        name="modified-three-phase-commit",
        master=base.master,
        slave=slave,
        description="3PC with the w->c slave transition of Fig. 8.",
    )


def quorum_commit() -> CommitProtocolSpec:
    """Skeen's quorum-based commit protocol (reference [5]), failure-free skeleton.

    The quorum protocol's failure-free execution buffers the decision in a
    ``pre-commit`` state before finalising it (the quorum machinery proper
    only matters during recovery), so its skeleton is structurally a 3PC with
    a differently named promotion message.  It satisfies the Lemma 1 /
    Lemma 2 conditions and is the Theorem 10 demonstration target: the
    generic construction must discover ``pre-commit`` (not ``prepare``) as
    the promotion message ``m``.
    """
    master = role_automaton(
        MASTER_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(
                m.INITIAL,
                ReadSpec(m.REQUEST, OPERATOR),
                (SendSpec(m.XACT, ALL_SLAVES),),
                m.WAIT,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.YES, EACH_SLAVE),
                (SendSpec(m.PRE_COMMIT, ALL_SLAVES),),
                m.PRE_COMMITTED,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.NO, ANY_SLAVE),
                (SendSpec(m.ABORT, ALL_SLAVES),),
                m.ABORTED,
            ),
            _t(
                m.PRE_COMMITTED,
                ReadSpec(m.ACK, EACH_SLAVE),
                (SendSpec(m.COMMIT, ALL_SLAVES),),
                m.COMMITTED,
            ),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.PRE_COMMITTED, m.COMMITTED],
    )
    slave = role_automaton(
        SLAVE_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.YES, MASTER),), m.WAIT),
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.NO, MASTER),), m.ABORTED),
            _t(
                m.WAIT,
                ReadSpec(m.PRE_COMMIT, MASTER),
                (SendSpec(m.ACK, MASTER),),
                m.PRE_COMMITTED,
            ),
            _t(m.WAIT, ReadSpec(m.ABORT, MASTER), (), m.ABORTED),
            _t(m.PRE_COMMITTED, ReadSpec(m.COMMIT, MASTER), (), m.COMMITTED),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.WAIT, m.PRE_COMMITTED, m.COMMITTED],
    )
    return CommitProtocolSpec(
        name="quorum-commit",
        master=master,
        slave=slave,
        description="Quorum-based commit (Skeen 1982), failure-free master/slave skeleton.",
    )


def four_phase_commit() -> CommitProtocolSpec:
    """A four-phase commit protocol (extra buffering round before prepare).

    Not in the paper; included as a second, structurally different Theorem 10
    target.  The master inserts a ``pre-commit`` round before the
    ``prepare`` round, so the slave crosses from noncommittable to
    committable when it receives ``pre-commit`` -- the generic construction
    must select that message (and not ``prepare``) as ``m``.
    """
    master = role_automaton(
        MASTER_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(
                m.INITIAL,
                ReadSpec(m.REQUEST, OPERATOR),
                (SendSpec(m.XACT, ALL_SLAVES),),
                m.WAIT,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.YES, EACH_SLAVE),
                (SendSpec(m.PRE_COMMIT, ALL_SLAVES),),
                m.PRE_COMMITTED,
            ),
            _t(
                m.WAIT,
                ReadSpec(m.NO, ANY_SLAVE),
                (SendSpec(m.ABORT, ALL_SLAVES),),
                m.ABORTED,
            ),
            _t(
                m.PRE_COMMITTED,
                ReadSpec(m.ACK, EACH_SLAVE),
                (SendSpec(m.PREPARE, ALL_SLAVES),),
                m.PREPARED,
            ),
            _t(
                m.PREPARED,
                ReadSpec(m.ACK, EACH_SLAVE),
                (SendSpec(m.COMMIT, ALL_SLAVES),),
                m.COMMITTED,
            ),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.PRE_COMMITTED, m.PREPARED, m.COMMITTED],
    )
    slave = role_automaton(
        SLAVE_ROLE,
        initial=m.INITIAL,
        transitions=[
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.YES, MASTER),), m.WAIT),
            _t(m.INITIAL, ReadSpec(m.XACT, MASTER), (SendSpec(m.NO, MASTER),), m.ABORTED),
            _t(
                m.WAIT,
                ReadSpec(m.PRE_COMMIT, MASTER),
                (SendSpec(m.ACK, MASTER),),
                m.PRE_COMMITTED,
            ),
            _t(m.WAIT, ReadSpec(m.ABORT, MASTER), (), m.ABORTED),
            _t(
                m.PRE_COMMITTED,
                ReadSpec(m.PREPARE, MASTER),
                (SendSpec(m.ACK, MASTER),),
                m.PREPARED,
            ),
            _t(m.PREPARED, ReadSpec(m.COMMIT, MASTER), (), m.COMMITTED),
        ],
        commit_states=[m.COMMITTED],
        abort_states=[m.ABORTED],
        yes_vote_states=[m.WAIT, m.PRE_COMMITTED, m.PREPARED, m.COMMITTED],
    )
    return CommitProtocolSpec(
        name="four-phase-commit",
        master=master,
        slave=slave,
        description="Four-phase commit with an extra buffering round (Theorem 10 target).",
    )


CATALOG = {
    "two-phase-commit": two_phase_commit,
    "three-phase-commit": three_phase_commit,
    "modified-three-phase-commit": modified_three_phase_commit,
    "quorum-commit": quorum_commit,
    "four-phase-commit": four_phase_commit,
}


def by_name(name: str) -> CommitProtocolSpec:
    """Look up a catalogued protocol specification by name."""
    try:
        factory = CATALOG[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown protocol {name!r}; available: {sorted(CATALOG)}"
        ) from exc
    return factory()
