"""Finite-state-automaton model of commit protocols.

Section 2 of the paper recalls Skeen & Stonebraker's formal model:
"Transaction execution at each site is modelled as a finite state automaton
(FSA), with the network serving as a common input/output tape to all sites."
A global state consists of the vector of local states plus the outstanding
messages; a global transition is exactly one local transition, in which a
site reads a non-empty string of messages addressed to it, writes a string of
messages, and moves to its next local state.

The classes below describe a commit protocol in that model.  Because the
protocols studied in the paper are *master/slave* protocols in which all
slaves run the same automaton, a protocol is specified by two role automata
(master, slave); the reachability layer instantiates them for ``n`` sites.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional

# Sources / targets used by read and send specifications.
OPERATOR = "operator"      # the external user submitting / being asked about the txn
MASTER = "master"          # the coordinating site (site 1 in the paper)
ANY_SLAVE = "any_slave"    # one message from some slave suffices
EACH_SLAVE = "each_slave"  # one message from every slave is required
ALL_SLAVES = "all_slaves"  # sends: one copy to every slave

MASTER_ROLE = "master"
SLAVE_ROLE = "slave"


class ProtocolSpecError(ValueError):
    """Raised for structurally invalid protocol specifications."""


@dataclass(frozen=True)
class ReadSpec:
    """What a transition consumes from the network tape.

    Attributes:
        kind: message kind (see :mod:`repro.core.messages`).
        source: ``"operator"``, ``"master"``, ``"any_slave"`` or
            ``"each_slave"``.
    """

    kind: str
    source: str

    def __post_init__(self) -> None:
        if self.source not in (OPERATOR, MASTER, ANY_SLAVE, EACH_SLAVE):
            raise ProtocolSpecError(f"unknown read source: {self.source!r}")
        # Interned kinds make the simulator's received-message dict lookups
        # and kind comparisons pointer-identity checks.
        object.__setattr__(self, "kind", sys.intern(self.kind))

    def __str__(self) -> str:
        return f"{self.kind}<-{self.source}"


@dataclass(frozen=True)
class SendSpec:
    """What a transition writes onto the network tape.

    Attributes:
        kind: message kind.
        target: ``"master"``, ``"all_slaves"`` or ``"operator"``.
    """

    kind: str
    target: str

    def __post_init__(self) -> None:
        if self.target not in (OPERATOR, MASTER, ALL_SLAVES):
            raise ProtocolSpecError(f"unknown send target: {self.target!r}")
        object.__setattr__(self, "kind", sys.intern(self.kind))

    def __str__(self) -> str:
        return f"{self.kind}->{self.target}"


@dataclass(frozen=True)
class Transition:
    """One local state transition of a role automaton."""

    source: str
    read: ReadSpec
    sends: tuple[SendSpec, ...]
    target: str

    def __post_init__(self) -> None:
        # State names are compared and used as dict keys on every delivery;
        # interning makes those comparisons pointer-identity checks.
        object.__setattr__(self, "source", sys.intern(self.source))
        object.__setattr__(self, "target", sys.intern(self.target))

    def __str__(self) -> str:
        sends = ", ".join(str(send) for send in self.sends) or "-"
        return f"{self.source} --[{self.read} / {sends}]--> {self.target}"


@dataclass(frozen=True)
class RoleAutomaton:
    """The automaton run by either the master or every slave.

    Attributes:
        role: ``"master"`` or ``"slave"``.
        initial: initial local state.
        states: every local state of the role.
        transitions: the protocol's transitions for this role.
        commit_states: final states meaning the transaction committed here.
        abort_states: final states meaning the transaction aborted here.
        yes_vote_states: states whose occupancy implies this site has voted
            yes on committing the transaction (used to *verify* the
            committable-state classification of Section 3 against the
            reachable global states).
    """

    role: str
    initial: str
    states: frozenset[str]
    transitions: tuple[Transition, ...]
    commit_states: frozenset[str]
    abort_states: frozenset[str]
    yes_vote_states: frozenset[str]

    def __post_init__(self) -> None:
        if self.role not in (MASTER_ROLE, SLAVE_ROLE):
            raise ProtocolSpecError(f"unknown role: {self.role!r}")
        if self.initial not in self.states:
            raise ProtocolSpecError(f"initial state {self.initial!r} not in states")
        for named in (self.commit_states, self.abort_states, self.yes_vote_states):
            unknown = named - self.states
            if unknown:
                raise ProtocolSpecError(f"unknown states referenced: {sorted(unknown)}")
        if self.commit_states & self.abort_states:
            raise ProtocolSpecError("a state cannot be both a commit and an abort state")
        for transition in self.transitions:
            if transition.source not in self.states or transition.target not in self.states:
                raise ProtocolSpecError(f"transition uses unknown state: {transition}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def final_states(self) -> frozenset[str]:
        """Commit and abort states together."""
        return self.commit_states | self.abort_states

    def is_final(self, state: str) -> bool:
        """True when ``state`` is a commit or abort state."""
        return state in self.final_states

    def transitions_from(self, state: str) -> tuple[Transition, ...]:
        """All transitions leaving ``state``."""
        return tuple(t for t in self.transitions if t.source == state)

    def transitions_reading(self, kind: str) -> tuple[Transition, ...]:
        """All transitions that read a message of ``kind``."""
        return tuple(t for t in self.transitions if t.read.kind == kind)

    def transitions_sending(self, kind: str) -> tuple[Transition, ...]:
        """All transitions that send a message of ``kind``."""
        return tuple(t for t in self.transitions if any(s.kind == kind for s in t.sends))

    def successors(self, state: str) -> frozenset[str]:
        """States reachable from ``state`` in one transition."""
        return frozenset(t.target for t in self.transitions_from(state))

    def adjacent_to_commit(self) -> frozenset[str]:
        """States with a direct transition into a commit state."""
        return frozenset(
            t.source for t in self.transitions if t.target in self.commit_states
        )


@dataclass(frozen=True)
class CommitProtocolSpec:
    """A complete master/slave commit protocol in the formal model."""

    name: str
    master: RoleAutomaton
    slave: RoleAutomaton
    description: str = ""

    def __post_init__(self) -> None:
        if self.master.role != MASTER_ROLE:
            raise ProtocolSpecError("master automaton must have role 'master'")
        if self.slave.role != SLAVE_ROLE:
            raise ProtocolSpecError("slave automaton must have role 'slave'")

    def automaton(self, role: str) -> RoleAutomaton:
        """The automaton for ``role`` (``"master"`` or ``"slave"``)."""
        if role == MASTER_ROLE:
            return self.master
        if role == SLAVE_ROLE:
            return self.slave
        raise ProtocolSpecError(f"unknown role: {role!r}")

    def local_states(self) -> tuple[tuple[str, str], ...]:
        """Every (role, state) pair of the protocol."""
        pairs = [(MASTER_ROLE, state) for state in sorted(self.master.states)]
        pairs.extend((SLAVE_ROLE, state) for state in sorted(self.slave.states))
        return tuple(pairs)

    def message_kinds(self) -> frozenset[str]:
        """Every message kind read or written by either role."""
        kinds: set[str] = set()
        for automaton in (self.master, self.slave):
            for transition in automaton.transitions:
                kinds.add(transition.read.kind)
                kinds.update(send.kind for send in transition.sends)
        return frozenset(kinds)

    def __str__(self) -> str:
        return f"CommitProtocolSpec({self.name})"


def role_automaton(
    role: str,
    initial: str,
    transitions: Iterable[Transition],
    *,
    commit_states: Iterable[str],
    abort_states: Iterable[str],
    yes_vote_states: Iterable[str],
    extra_states: Iterable[str] = (),
) -> RoleAutomaton:
    """Build a :class:`RoleAutomaton`, inferring the state set from transitions."""
    transitions = tuple(transitions)
    states: set[str] = set(extra_states)
    states.add(initial)
    for transition in transitions:
        states.add(transition.source)
        states.add(transition.target)
    states.update(commit_states)
    states.update(abort_states)
    return RoleAutomaton(
        role=role,
        initial=initial,
        states=frozenset(states),
        transitions=transitions,
        commit_states=frozenset(commit_states),
        abort_states=frozenset(abort_states),
        yes_vote_states=frozenset(yes_vote_states),
    )
