"""Theorem 10: generalizing the termination protocol.

Theorem 10 states that *any* master/slave commit protocol can be made
resilient to multisite simple network partitioning provided

1. no local state has both a commit and an abort in its concurrency set
   (Lemma 1's condition),
2. no noncommittable local state has a commit in its concurrency set
   (Lemma 2's condition),
3. undeliverable messages are returned to the senders,
4. network partitioning and site failures never happen concurrently, and
5. masters never fail,

by substituting, for 3PC's ``prepare``, the message ``m`` that moves a slave
from a noncommittable state into a committable state.

:func:`check_theorem10_conditions` verifies the two structural conditions
against the computed concurrency sets (conditions 3-5 are environment
assumptions supplied by the caller), and :func:`derive_termination_plan`
extracts the protocol-specific ingredients -- the promotion message ``m``,
the acknowledgement the slave returns, and the states involved -- that the
generic terminating role in :mod:`repro.protocols.generic_terminating`
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.concurrency import ConcurrencyAnalysis, analyze
from repro.core.fsa import CommitProtocolSpec, MASTER, MASTER_ROLE, SLAVE_ROLE, Transition
from repro.core.lemmas import LemmaReport, check_nonblocking_conditions


class GeneralizationError(ValueError):
    """Raised when Theorem 10's construction does not apply to a protocol."""


@dataclass(frozen=True)
class TerminationPlan:
    """The protocol-specific ingredients of the generic termination protocol.

    Attributes:
        promotion_message: the paper's ``m`` -- the master-to-slave message
            whose receipt moves a slave from a noncommittable to a
            committable state (``prepare`` for 3PC, ``pre-commit`` for the
            quorum protocol).
        acknowledgement: the message the slave sends back in that transition
            (``ack`` in both catalogued protocols), used by the master to
            detect that it is still connected to those slaves.
        noncommittable_state: the slave state the promotion leaves.
        committable_state: the slave state the promotion enters.
        commit_message: the final commit broadcast.
        abort_message: the final abort broadcast.
    """

    promotion_message: str
    acknowledgement: Optional[str]
    noncommittable_state: str
    committable_state: str
    commit_message: str = "commit"
    abort_message: str = "abort"


@dataclass
class GeneralizationReport:
    """Outcome of checking Theorem 10's five conditions for a protocol."""

    spec_name: str
    n_sites: int
    lemma_report: LemmaReport
    messages_returned: bool
    no_concurrent_failures: bool
    master_never_fails: bool
    plan: Optional[TerminationPlan] = None
    commit_adjacency_violations: list[str] = field(default_factory=list)

    @property
    def structural_conditions_hold(self) -> bool:
        """Conditions 1-2 (the Lemma 1/2 conditions)."""
        return self.lemma_report.satisfies_both

    @property
    def environment_conditions_hold(self) -> bool:
        """Conditions 3-5 (modelling assumptions supplied by the caller)."""
        return self.messages_returned and self.no_concurrent_failures and self.master_never_fails

    @property
    def applicable(self) -> bool:
        """True when the generic termination construction applies."""
        return (
            self.structural_conditions_hold
            and self.environment_conditions_hold
            and self.plan is not None
            and not self.commit_adjacency_violations
        )


def _promotion_transitions(
    spec: CommitProtocolSpec, analysis: ConcurrencyAnalysis
) -> list[Transition]:
    """Slave transitions from a noncommittable state into a committable state
    triggered by a master message."""
    promotions = []
    for transition in spec.slave.transitions:
        if transition.read.source != MASTER:
            continue
        # The promotion lands in a *buffering* committable state: a final
        # commit state is not a candidate (the direct w->c transition added
        # by Fig. 8 exists only so the termination protocol can relay
        # commits, it is not the message m of Theorem 10's proof).
        if spec.slave.is_final(transition.target):
            continue
        source_committable = analysis.is_committable(SLAVE_ROLE, transition.source)
        target_committable = analysis.is_committable(SLAVE_ROLE, transition.target)
        if not source_committable and target_committable:
            promotions.append(transition)
    return promotions


def _commit_adjacency_violations(
    spec: CommitProtocolSpec, analysis: ConcurrencyAnalysis
) -> list[str]:
    """Check Theorem 10's proof obligation on states adjacent to commit states.

    "The only adjacent states of a commit state must be committable states
    and these committable states cannot be adjacent to an abort state."
    """
    violations: list[str] = []
    for role in (MASTER_ROLE, SLAVE_ROLE):
        automaton = spec.automaton(role)
        for commit_state in automaton.commit_states:
            for transition in automaton.transitions:
                if transition.target != commit_state:
                    continue
                predecessor = transition.source
                if not analysis.is_committable(role, predecessor):
                    violations.append(
                        f"{role}:{predecessor} precedes commit state {commit_state} "
                        "but is not committable"
                    )
                    continue
                for follow_on in automaton.transitions_from(predecessor):
                    if follow_on.target in automaton.abort_states:
                        violations.append(
                            f"{role}:{predecessor} is committable but can still abort "
                            f"via {follow_on}"
                        )
    return violations


def derive_termination_plan(
    spec: CommitProtocolSpec,
    n_sites: int = 3,
    *,
    analysis: Optional[ConcurrencyAnalysis] = None,
) -> TerminationPlan:
    """Extract the promotion message ``m`` and friends for ``spec``.

    Raises :class:`GeneralizationError` when no unique promotion message
    exists (which also means Theorem 10's construction does not apply).
    """
    analysis = analysis if analysis is not None else analyze(spec, n_sites)
    promotions = _promotion_transitions(spec, analysis)
    if not promotions:
        raise GeneralizationError(
            f"{spec.name} has no master message moving a slave from a noncommittable "
            "state to a committable state; Theorem 10's construction does not apply"
        )
    kinds = {transition.read.kind for transition in promotions}
    if len(kinds) > 1:
        raise GeneralizationError(
            f"{spec.name} has several candidate promotion messages {sorted(kinds)}; "
            "the construction requires a single message m"
        )
    promotion = promotions[0]
    acknowledgement = promotion.sends[0].kind if promotion.sends else None
    return TerminationPlan(
        promotion_message=promotion.read.kind,
        acknowledgement=acknowledgement,
        noncommittable_state=promotion.source,
        committable_state=promotion.target,
    )


def check_theorem10_conditions(
    spec: CommitProtocolSpec,
    n_sites: int = 3,
    *,
    messages_returned: bool = True,
    no_concurrent_failures: bool = True,
    master_never_fails: bool = True,
    analysis: Optional[ConcurrencyAnalysis] = None,
) -> GeneralizationReport:
    """Evaluate all five Theorem 10 conditions for ``spec``.

    The structural conditions (1-2) and the commit-adjacency obligation are
    computed from the protocol's reachable global states; the environment
    conditions (3-5) are passed in by the caller because they describe the
    deployment, not the protocol.
    """
    analysis = analysis if analysis is not None else analyze(spec, n_sites)
    lemma_report = check_nonblocking_conditions(spec, n_sites, analysis=analysis)
    report = GeneralizationReport(
        spec_name=spec.name,
        n_sites=n_sites,
        lemma_report=lemma_report,
        messages_returned=messages_returned,
        no_concurrent_failures=no_concurrent_failures,
        master_never_fails=master_never_fails,
        commit_adjacency_violations=_commit_adjacency_violations(spec, analysis),
    )
    if lemma_report.satisfies_both:
        try:
            report.plan = derive_termination_plan(spec, n_sites, analysis=analysis)
        except GeneralizationError:
            report.plan = None
    return report
