"""Transient network partitioning (Section 6).

A partition is *transient* when the network recovers before all transactions
affected by the partition have terminated.  Section 6 enumerates every way a
simple partition can interleave with the three-phase commit protocol,
derives the worst-case time a slave that timed out in state ``p`` may have
to wait for an UD(probe) / commit / abort in each case, and observes that
only case (3.2.2.2) is unbounded -- which justifies the fix: a slave that
has waited ``5T`` in state ``p`` without hearing anything commits.

This module provides the case taxonomy, the paper's bound table, and the
policy object the timed slave role consults.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.termination import TerminationTimers


class PartitionCase(enum.Enum):
    """Section 6's enumeration of partition/protocol interleavings.

    The member values are the paper's case labels.
    """

    NO_PREPARE_CROSSES = "1"
    SOME_PREPARE_SOME_NOT_ACK_LOST = "2.1"
    SOME_PREPARE_PROBE_LOST = "2.2.1"
    SOME_PREPARE_PROBES_PASS = "2.2.2"
    ALL_PREPARE_ACK_LOST = "3.1"
    ALL_PREPARE_ALL_COMMIT_PASS = "3.2.1"
    ALL_PREPARE_COMMIT_LOST_PROBE_LOST = "3.2.2.1"
    ALL_PREPARE_COMMIT_LOST_PROBES_PASS = "3.2.2.2"

    @property
    def label(self) -> str:
        """The paper's case label, e.g. ``"3.2.2.2"``."""
        return self.value


#: The paper's Section 6 table: worst-case wait (in multiples of T) for a
#: slave to receive an UD(probe), a commit or an abort after timing out in
#: state ``p``.  Cases 1 and 3.2.1 never leave a slave waiting in ``p``
#: (either no prepare was received, or the commit arrives), so the paper
#: does not list them.
WORST_CASE_WAIT_MULTIPLES: dict[PartitionCase, float] = {
    PartitionCase.SOME_PREPARE_SOME_NOT_ACK_LOST: 1.0,
    PartitionCase.SOME_PREPARE_PROBE_LOST: 4.0,
    PartitionCase.SOME_PREPARE_PROBES_PASS: 5.0,
    PartitionCase.ALL_PREPARE_ACK_LOST: 1.0,
    PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBE_LOST: 4.0,
    PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS: math.inf,
}


def worst_case_wait(case: PartitionCase, max_delay: float = 1.0) -> float:
    """The paper's bound for ``case`` in absolute time units.

    Returns ``math.inf`` for case (3.2.2.2), the case only the transient
    extension (commit after waiting ``5T``) terminates, and ``0`` for the
    two cases in which no slave ever waits in state ``p``.
    """
    multiple = WORST_CASE_WAIT_MULTIPLES.get(case)
    if multiple is None:
        return 0.0
    if math.isinf(multiple):
        return math.inf
    return multiple * max_delay


def bounded_cases() -> tuple[PartitionCase, ...]:
    """Cases with a finite paper bound (everything except 3.2.2.2)."""
    return tuple(
        case
        for case, multiple in WORST_CASE_WAIT_MULTIPLES.items()
        if not math.isinf(multiple)
    )


@dataclass(frozen=True)
class TransientPolicy:
    """What a slave does after its post-timeout wait in state ``p`` expires.

    Attributes:
        enabled: when ``True`` (Section 6's modified action) the slave
            commits after waiting ``wait_in_p`` without receiving an
            UD(probe), a commit or an abort; when ``False`` (the Section 5
            protocol, valid only for permanent partitions) it keeps waiting.
        timers: the timeout structure in force.
    """

    enabled: bool
    timers: TerminationTimers

    @property
    def wait_in_p(self) -> float:
        """How long the slave waits in ``p`` after its timeout (``5T``)."""
        return self.timers.wait_in_p

    def expiry_action(self) -> str:
        """``"commit"`` under the transient rule, ``"wait"`` otherwise.

        Only case (3.2.2.2) ever reaches this point, and in that case every
        other site of the transaction has already committed, so committing
        is the consistent choice (Section 6).
        """
        return "commit" if self.enabled else "wait"


def classify_interleaving(
    *,
    prepares_crossed: int,
    prepares_blocked: int,
    acks_blocked: int,
    commits_blocked: int,
    probes_blocked: int,
) -> PartitionCase:
    """Classify a concrete partition interleaving into Section 6's taxonomy.

    Args:
        prepares_crossed: prepare messages that reached slaves across the
            boundary ``B`` (i.e. slaves in ``G2`` that got a prepare).
        prepares_blocked: prepare messages addressed to ``G2`` that bounced.
        acks_blocked: ack messages from ``G2`` slaves that bounced.
        commits_blocked: commit messages addressed to ``G2`` that bounced.
        probes_blocked: probe messages from ``G2`` slaves that bounced.
    """
    if prepares_crossed == 0:
        return PartitionCase.NO_PREPARE_CROSSES
    if prepares_blocked > 0:
        # Case 2: some prepare messages crossed B, some did not.
        if acks_blocked > 0:
            return PartitionCase.SOME_PREPARE_SOME_NOT_ACK_LOST
        if probes_blocked > 0:
            return PartitionCase.SOME_PREPARE_PROBE_LOST
        return PartitionCase.SOME_PREPARE_PROBES_PASS
    # Case 3: every prepare message crossed B.
    if acks_blocked > 0:
        return PartitionCase.ALL_PREPARE_ACK_LOST
    if commits_blocked == 0:
        return PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS
    if probes_blocked > 0:
        return PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBE_LOST
    return PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS
