"""Exhaustive exploration of a commit protocol's global state graph.

The concurrency set, sender set and committable-state definitions of
Sections 2-3 all quantify over the *reachable global states* of the
protocol.  This module enumerates them for a protocol instantiated with
``n`` participating sites (site 1 is the master).

A global state is, exactly as in the paper's model, the vector of local
states plus the set of outstanding messages; we additionally carry a
"has voted yes" flag per site so that the committable-state classification
("occupancy ... implies that all sites have voted yes") can be verified
mechanically rather than trusted.

Two exploration surfaces share one engine:

* :func:`explore` -- the original failure-free enumeration consumed by the
  concurrency analysis (:mod:`repro.core.concurrency`).
* :func:`explore_model` -- the model checker's generalization: a *fault
  envelope* (:data:`FAILURE_FREE`, :data:`SINGLE_CRASH`,
  :data:`PARTITION`, :data:`LOSSY`, :data:`LOSSY_RETRANSMIT`) adds
  crash / partition-onset / message-loss pseudo-transitions, and
  an optional Rule (a)/(b) augmentation adds the timeout and
  undeliverable-message decisions of
  :class:`~repro.core.rules.AugmentedProtocol`, mirroring the timed
  semantics of :mod:`repro.protocols.fsa_role` (timeouts decide and, at
  the master, broadcast; bounced messages decide per Rule (b)).  Budgets
  (``max_states``, ``max_depth``), deterministic visit order, parent
  pointers and breadth-first minimal counterexample paths come with it.

Everything about the exploration is deterministic: site order, transition
declaration order and an explicit total order over outstanding messages fix
the successor enumeration, so two runs (in different processes, with
different ``PYTHONHASHSEED``) produce identical visit orders, edge lists
and counterexample traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

from repro.core import messages as msg
from repro.core.fsa import (
    ANY_SLAVE,
    CommitProtocolSpec,
    EACH_SLAVE,
    MASTER,
    MASTER_ROLE,
    OPERATOR,
    RoleAutomaton,
    SLAVE_ROLE,
    Transition,
)

OPERATOR_SITE = 0  # pseudo-site the external "request" message comes from

# --- fault envelopes of the model checker ----------------------------------
FAILURE_FREE = "failure-free"    # no faults: the original Sections 2-3 graph
SINGLE_CRASH = "single-crash"    # at most one site crash, at any global state
PARTITION = "partition"          # one simple partition onset, at any global state
LOSSY = "lossy"                  # one silent message loss, at any global state
# Loss behind the at-least-once retransmission layer: every message is
# eventually delivered exactly once within the stretched delivery bound, so
# the reachable graph is *identical* to the failure-free one -- that identity
# is the model-level statement that retransmission restores assumption 1.
LOSSY_RETRANSMIT = "lossy-retransmit"

#: The classic trio (the default MODELCHECK sweep; golden tables pin it).
FAULT_ENVELOPES = (FAILURE_FREE, SINGLE_CRASH, PARTITION)
#: The message-fault envelopes added by the FaultPlan API.
MESSAGE_FAULT_ENVELOPES = (LOSSY, LOSSY_RETRANSMIT)
#: Every envelope the explorer accepts.
ALL_FAULT_ENVELOPES = FAULT_ENVELOPES + MESSAGE_FAULT_ENVELOPES

# BFS explores shortest-first, so counterexample paths are minimal; DFS
# exists to property-test order-independence of the reachable state set.
BFS = "bfs"
DFS = "dfs"


class ExplorationError(RuntimeError):
    """Raised when exploration would exceed its state budget.

    Raised *before* the over-budget state is recorded, so a graph with
    exactly ``max_states`` reachable states completes and the partial
    result's visit order is a prefix of an unbudgeted run's.  The partial
    :class:`ReachabilityResult` is attached as :attr:`partial`.
    """

    def __init__(self, message: str, partial: Optional["ReachabilityResult"] = None):
        super().__init__(message)
        self.partial = partial


@dataclass(frozen=True)
class TaggedMessage:
    """An outstanding message, tagged with the sender's state when it was sent.

    The tag is what makes sender sets ``S(s)`` computable: when a site in
    local state ``s`` consumes the message, the tagged state is by definition
    a member of ``S(s)``.

    ``returned`` marks an undeliverable-message notification: the optimistic
    network model (the paper's assumption 1) bounced the original message
    back to its sender, where a Rule (b) transition may consume it.  For a
    returned message ``sender`` is the site that could not be reached and
    ``receiver`` is the original sender; the role/state tag still describes
    the original send.
    """

    kind: str
    sender: int
    receiver: int
    sender_role: str
    sender_state: str
    returned: bool = False

    def sort_key(self) -> tuple:
        """Total order used everywhere a message set is iterated."""
        return (self.kind, self.sender, self.receiver, self.sender_state, self.returned)

    def __str__(self) -> str:
        mark = "!" if self.returned else ""
        return f"{mark}{self.kind}[{self.sender}->{self.receiver}]"


@dataclass(frozen=True)
class FaultEvent:
    """A pseudo-transition of the fault envelope (not a protocol transition).

    Attributes:
        action: ``"crash"``, ``"partition"``, ``"loss"``, ``"timeout"`` or
            ``"undeliverable"``.
        site: the acting / affected site (0 for a partition onset, which
            belongs to the network).
        target: resulting local state of ``site`` (empty when the local
            state is unchanged, e.g. a crash).
        detail: human-readable annotation for counterexample traces.
    """

    action: str
    site: int
    target: str = ""
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" -> {self.target}" if self.target else ""
        return f"{self.action}({self.detail}){suffix}"


@dataclass(frozen=True)
class GlobalState:
    """One global state: local-state vector + outstanding messages + vote flags.

    The model checker's fault envelopes add two (defaulted, so failure-free
    exploration is unchanged) components: the set of crashed sites (a
    crashed site keeps its last local state as decision evidence but takes
    no further transitions) and the active simple partition, canonically
    encoded as a tuple of sorted site-tuples (``None`` = fully connected).
    """

    locals: tuple[str, ...]
    outstanding: frozenset[TaggedMessage]
    voted: tuple[bool, ...]
    crashed: frozenset[int] = frozenset()
    partition: Optional[tuple[tuple[int, ...], ...]] = None
    #: True once the lossy envelope silently dropped a message (defaulted,
    #: so every pre-lossy state encoding is unchanged).
    lost: bool = False

    @property
    def n_sites(self) -> int:
        """Number of participating sites."""
        return len(self.locals)

    @property
    def fault_fired(self) -> bool:
        """True once the envelope's crash, partition or message loss struck."""
        return bool(self.crashed) or self.partition is not None or self.lost

    def local(self, site: int) -> str:
        """Local state of ``site`` (1-based)."""
        return self.locals[site - 1]

    def alive(self, site: int) -> bool:
        """True when ``site`` has not crashed."""
        return site not in self.crashed

    def separated(self, a: int, b: int) -> bool:
        """True when the active partition cuts sites ``a`` and ``b`` apart.

        The operator pseudo-site is treated as co-located with the master
        (its only message is the initial request to site 1).
        """
        if self.partition is None or a == b:
            return False

        def group_of(site: int) -> int:
            if site == OPERATOR_SITE:
                site = 1
            for index, group in enumerate(self.partition):
                if site in group:
                    return index
            return 0

        return group_of(a) != group_of(b)

    def messages_to(self, site: int, kind: Optional[str] = None) -> tuple[TaggedMessage, ...]:
        """Outstanding messages addressed to ``site``, in canonical order."""
        return tuple(
            sorted(
                (
                    message
                    for message in self.outstanding
                    if message.receiver == site and (kind is None or message.kind == kind)
                ),
                key=TaggedMessage.sort_key,
            )
        )

    def returned_messages(self) -> tuple[TaggedMessage, ...]:
        """Outstanding undeliverable notifications, in canonical order."""
        return tuple(
            sorted(
                (message for message in self.outstanding if message.returned),
                key=TaggedMessage.sort_key,
            )
        )

    def all_voted(self) -> bool:
        """True when every participating site has voted yes."""
        return all(self.voted)

    def __str__(self) -> str:
        vector = ", ".join(self.locals)
        pending = ", ".join(sorted(str(m) for m in self.outstanding)) or "-"
        marks = []
        if self.crashed:
            marks.append("x" + ",".join(map(str, sorted(self.crashed))))
        if self.partition is not None:
            marks.append("|".join("{" + ",".join(map(str, g)) + "}" for g in self.partition))
        if self.lost:
            marks.append("~loss")
        suffix = f" [{' '.join(marks)}]" if marks else ""
        return f"<({vector}) | {pending}>{suffix}"


@dataclass(frozen=True)
class GlobalTransition:
    """An edge of the global state graph.

    ``transition`` is either a protocol :class:`~repro.core.fsa.Transition`
    (a site consumed messages and moved) or a :class:`FaultEvent` (a crash,
    partition onset, timeout decision or undeliverable-message decision).
    """

    source: GlobalState
    site: int
    transition: Union[Transition, FaultEvent]
    target: GlobalState

    @property
    def is_fault(self) -> bool:
        """True when the edge is a fault-envelope pseudo-transition."""
        return isinstance(self.transition, FaultEvent)

    def describe(self) -> str:
        """One-line rendering used in counterexample traces."""
        actor = "network" if self.site == OPERATOR_SITE else f"site {self.site}"
        return f"{actor}: {self.transition}"


@dataclass
class ReachabilityResult:
    """Everything the concurrency analysis and the model checker need.

    Attributes:
        spec: the explored protocol.
        n_sites: instantiation size (site 1 is the master).
        initial: the initial global state.
        states: every visited global state.
        edges: every explored edge, in deterministic discovery order.
        receptions: (receiver_role, receiver_state) -> set of
            (sender_role, sender_state) pairs, for sender sets.
        visit_order: states in first-discovery order (the deterministic
            frontier order; a budgeted run's ``visit_order`` is a prefix of
            the unbudgeted one).
        depth: discovery depth per state (edges from the initial state).
        parents: first-discovery edge per non-initial state -- the spanning
            tree that :meth:`path_to` walks to extract (under BFS, minimal)
            counterexample paths.
        unexpanded: states whose outgoing edges were skipped because the
            ``max_depth`` budget truncated the exploration there.
        complete: False when ``max_depth`` truncation skipped any successor.
    """

    spec: CommitProtocolSpec
    n_sites: int
    initial: GlobalState
    states: set[GlobalState] = field(default_factory=set)
    edges: list[GlobalTransition] = field(default_factory=list)
    # (receiver_role, receiver_state) -> set of (sender_role, sender_state)
    receptions: dict[tuple[str, str], set[tuple[str, str]]] = field(default_factory=dict)
    visit_order: list[GlobalState] = field(default_factory=list)
    depth: dict[GlobalState, int] = field(default_factory=dict)
    parents: dict[GlobalState, GlobalTransition] = field(default_factory=dict)
    unexpanded: set[GlobalState] = field(default_factory=set)
    complete: bool = True

    def role_of(self, site: int) -> str:
        """Role played by ``site`` (site 1 is the master)."""
        return MASTER_ROLE if site == 1 else SLAVE_ROLE

    def automaton_of(self, site: int) -> RoleAutomaton:
        """The role automaton executed by ``site``."""
        return _automaton_for(self.spec, site)

    def occupancies(self) -> dict[tuple[str, str], list[GlobalState]]:
        """Map (role, local state) -> global states in which some site occupies it."""
        result: dict[tuple[str, str], list[GlobalState]] = {}
        for state in self.states:
            for site in range(1, self.n_sites + 1):
                key = (self.role_of(site), state.local(site))
                result.setdefault(key, []).append(state)
        return result

    def final_states(self) -> list[GlobalState]:
        """Global states with no outgoing edges, in visit order.

        States whose expansion the ``max_depth`` budget skipped are
        excluded: without their successors, "no outgoing edges" would be an
        artifact of the truncation rather than a property of the graph.
        """
        sources = {edge.source for edge in self.edges}
        ordered = self.visit_order if self.visit_order else sorted(self.states, key=str)
        return [
            state
            for state in ordered
            if state not in sources and state not in self.unexpanded
        ]

    def path_to(self, state: GlobalState) -> list[GlobalTransition]:
        """The first-discovery path from the initial state to ``state``.

        Under BFS exploration this is a shortest path, which is what makes
        the checker's counterexamples minimal.
        """
        path: list[GlobalTransition] = []
        current = state
        while current != self.initial:
            edge = self.parents.get(current)
            if edge is None:
                raise KeyError(f"state {current} was not discovered by this exploration")
            path.append(edge)
            current = edge.source
        path.reverse()
        return path

    @property
    def state_count(self) -> int:
        """Number of distinct reachable global states."""
        return len(self.states)

    @property
    def frontier_depth(self) -> int:
        """Largest discovery depth reached by the exploration."""
        return max(self.depth.values(), default=0)


def _automaton_for(spec: CommitProtocolSpec, site: int) -> RoleAutomaton:
    return spec.master if site == 1 else spec.slave


def _initial_state(spec: CommitProtocolSpec, n_sites: int) -> GlobalState:
    locals_vector = tuple(
        _automaton_for(spec, site).initial for site in range(1, n_sites + 1)
    )
    request = TaggedMessage(
        kind=msg.REQUEST,
        sender=OPERATOR_SITE,
        receiver=1,
        sender_role=OPERATOR,
        sender_state=OPERATOR,
    )
    return GlobalState(
        locals=locals_vector,
        outstanding=frozenset({request}),
        voted=tuple(False for _ in range(n_sites)),
    )


def _sends_for(
    transition: Transition, site: int, role: str, n_sites: int
) -> list[TaggedMessage]:
    """Messages written by ``transition`` when taken by ``site``."""
    produced: list[TaggedMessage] = []
    slaves = [s for s in range(2, n_sites + 1)]
    for send in transition.sends:
        if send.target == MASTER:
            produced.append(
                TaggedMessage(
                    kind=send.kind,
                    sender=site,
                    receiver=1,
                    sender_role=role,
                    sender_state=transition.source,
                )
            )
        elif send.target == OPERATOR:
            continue
        else:  # all_slaves
            for slave in slaves:
                if slave == site:
                    continue
                produced.append(
                    TaggedMessage(
                        kind=send.kind,
                        sender=site,
                        receiver=slave,
                        sender_role=role,
                        sender_state=transition.source,
                    )
                )
    return produced


def _enabled_consumptions(
    state: GlobalState, site: int, transition: Transition, n_sites: int
) -> list[frozenset[TaggedMessage]]:
    """Sets of outstanding messages that would satisfy the transition's read.

    Returns an empty list when the read cannot be satisfied; several entries
    when the read is satisfiable in more than one way (``any_slave`` with
    messages from multiple slaves outstanding).  Returned (bounced) messages
    never satisfy a protocol read -- only the Rule (b) pseudo-transitions of
    the model checker consume them.
    """
    read = transition.read
    if read.source == OPERATOR:
        candidates = [
            message
            for message in state.messages_to(site, read.kind)
            if message.sender == OPERATOR_SITE and not message.returned
        ]
        return [frozenset({candidate}) for candidate in candidates]
    if read.source == MASTER:
        candidates = [
            message
            for message in state.messages_to(site, read.kind)
            if message.sender == 1 and not message.returned
        ]
        return [frozenset({candidate}) for candidate in candidates]
    if read.source == ANY_SLAVE:
        candidates = [
            message
            for message in state.messages_to(site, read.kind)
            if message.sender != 1
            and message.sender != OPERATOR_SITE
            and not message.returned
        ]
        return [frozenset({candidate}) for candidate in candidates]
    if read.source == EACH_SLAVE:
        slaves = [s for s in range(2, n_sites + 1) if s != site]
        needed: set[TaggedMessage] = set()
        for slave in slaves:
            matches = [
                message
                for message in state.messages_to(site, read.kind)
                if message.sender == slave and not message.returned
            ]
            if not matches:
                return []
            needed.add(matches[0])
        return [frozenset(needed)]
    raise ValueError(f"unknown read source {read.source!r}")


def simple_splits(n_sites: int) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Every simple partition split as canonical ``(G1, G2)`` tuples.

    ``G1`` always contains the master; ``G2`` ranges over the non-empty
    proper subsets of the slaves, enumerated smallest-first so the partition
    pseudo-transitions have a fixed order.  Mirrors
    :func:`repro.analysis.scenarios.split_choices` without importing the
    simulator layer into ``core``.
    """
    sites = list(range(1, n_sites + 1))
    slaves = sites[1:]
    splits: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for size in range(1, len(slaves) + 1):
        from itertools import combinations

        for combo in combinations(slaves, size):
            g2 = tuple(sorted(combo))
            g1 = tuple(sorted(set(sites) - set(combo)))
            splits.append((g1, g2))
    return splits


class _ModelExplorer:
    """Deterministic successor enumeration for one exploration setup.

    ``augmentation`` is duck-typed (anything exposing ``timeout_action`` and
    ``undeliverable_action`` dicts keyed by ``(role, state)``) so this
    module never imports :mod:`repro.core.rules`, which sits above the
    concurrency analysis that imports us.
    """

    def __init__(
        self,
        spec: CommitProtocolSpec,
        n_sites: int,
        *,
        augmentation: Optional[Any] = None,
        fault: str = FAILURE_FREE,
        no_voters: Optional[frozenset[int]] = None,
    ) -> None:
        if n_sites < 2:
            raise ValueError(
                f"a distributed transaction needs at least 2 sites, got {n_sites}"
            )
        if fault not in ALL_FAULT_ENVELOPES:
            raise ValueError(
                f"unknown fault envelope {fault!r}; "
                f"expected one of {ALL_FAULT_ENVELOPES}"
            )
        self.spec = spec
        self.n_sites = n_sites
        self.augmentation = augmentation
        self.fault = fault
        self.no_voters = no_voters
        self._splits = simple_splits(n_sites)

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def role_of(self, site: int) -> str:
        """Role of ``site`` (site 1 is the master)."""
        return MASTER_ROLE if site == 1 else SLAVE_ROLE

    def automaton(self, site: int) -> RoleAutomaton:
        """Automaton of ``site``."""
        return _automaton_for(self.spec, site)

    def _vote_allowed(self, site: int, transition: Transition) -> bool:
        """Apply the scripted vote pattern (``no_voters``) to a slave transition.

        With ``no_voters=None`` both vote branches are explored (the
        exhaustive envelope); with a set, slaves in it must take the
        no-vote transition and everyone else the yes-vote one, matching one
        scripted simulator scenario exactly.
        """
        if self.no_voters is None or site == 1:
            return True
        sends_yes = any(send.kind == msg.YES for send in transition.sends)
        sends_no = any(send.kind == msg.NO for send in transition.sends)
        if sends_yes and site in self.no_voters:
            return False
        if sends_no and site not in self.no_voters:
            return False
        return True

    def _route(
        self, produced: list[TaggedMessage], state: GlobalState
    ) -> list[TaggedMessage]:
        """Deliverability filter for freshly sent messages.

        Messages to crashed or partition-separated receivers bounce: under
        an augmentation they come back as returned notifications to the
        sender (the optimistic network model), otherwise they are dropped.
        """
        routed: list[TaggedMessage] = []
        for message in produced:
            unreachable = (
                message.receiver in state.crashed
                or state.separated(message.sender, message.receiver)
            )
            if not unreachable:
                routed.append(message)
            elif self.augmentation is not None:
                routed.append(
                    TaggedMessage(
                        kind=message.kind,
                        sender=message.receiver,
                        receiver=message.sender,
                        sender_role=message.sender_role,
                        sender_state=message.sender_state,
                        returned=True,
                    )
                )
        return routed

    def _canonical_final(self, automaton: RoleAutomaton, action: Any) -> str:
        """The final state a Rule (a)/(b) decision moves a role into."""
        states = (
            automaton.commit_states
            if getattr(action, "value", action) == "commit"
            else automaton.abort_states
        )
        return min(states)

    def _decision_broadcast(
        self, site: int, action: Any, source_state: str, state: GlobalState
    ) -> list[TaggedMessage]:
        """The master's decision broadcast after a timeout / Rule (b) decision.

        Mirrors :meth:`repro.protocols.fsa_role.FSARole.on_timeout`: a
        deciding master broadcasts commit/abort to every slave; slaves
        decide silently.
        """
        if site != 1:
            return []
        kind = msg.COMMIT if getattr(action, "value", action) == "commit" else msg.ABORT
        produced = [
            TaggedMessage(
                kind=kind,
                sender=1,
                receiver=slave,
                sender_role=MASTER_ROLE,
                sender_state=source_state,
            )
            for slave in range(2, self.n_sites + 1)
        ]
        return self._route(produced, state)

    def _decide(
        self,
        state: GlobalState,
        site: int,
        action: Any,
        *,
        consumed: frozenset[TaggedMessage] = frozenset(),
    ) -> tuple[str, GlobalState]:
        """Apply a Rule (a)/(b) decision at ``site``; returns (target, successor)."""
        automaton = self.automaton(site)
        target = self._canonical_final(automaton, action)
        new_locals = list(state.locals)
        new_locals[site - 1] = target
        new_voted = list(state.voted)
        if target in automaton.yes_vote_states:
            new_voted[site - 1] = True
        produced = self._decision_broadcast(site, action, state.local(site), state)
        successor = GlobalState(
            locals=tuple(new_locals),
            outstanding=(state.outstanding - consumed) | frozenset(produced),
            voted=tuple(new_voted),
            crashed=state.crashed,
            partition=state.partition,
            lost=state.lost,
        )
        return target, successor

    def _all_final(self, state: GlobalState) -> bool:
        return all(
            self.automaton(site).is_final(state.local(site))
            for site in range(1, self.n_sites + 1)
            if state.alive(site)
        )

    # ------------------------------------------------------------------
    # successor enumeration (deterministic order)
    # ------------------------------------------------------------------
    def successors(
        self, state: GlobalState
    ) -> Iterator[tuple[GlobalTransition, frozenset[TaggedMessage]]]:
        """Yield every outgoing edge of ``state`` with its consumed messages.

        Order: protocol transitions (sites ascending, transitions in
        declaration order, consumption choices in message order), then
        undeliverable-message decisions, then timeout decisions, then fault
        onsets (crashes by site, partitions by split) -- fixed, so the
        exploration is reproducible across processes.

        Timeouts are *last-resort* edges: a site with an enabled protocol
        transition or an enabled Rule (b) decision cannot time out in this
        state.  This mirrors the timed simulator exactly -- timers run
        ``2T``/``3T`` from state entry while any deliverable message (or
        bounce) arrives within ``T``/``2T``, and the kernel delivers
        messages before timers at equal timestamps (the paper's bounds are
        inclusive) -- so a simulator timeout can only ever fire at a site
        the network has nothing left to offer.
        """
        protocol_edges = list(self._protocol_successors(state))
        undeliverable_edges = list(self._undeliverable_successors(state))
        busy_sites = {edge.site for edge, _ in protocol_edges}
        busy_sites.update(edge.site for edge, _ in undeliverable_edges)
        yield from protocol_edges
        yield from undeliverable_edges
        yield from self._timeout_successors(state, busy_sites)
        yield from self._fault_onset_successors(state)

    def _protocol_successors(self, state: GlobalState):
        for site in range(1, self.n_sites + 1):
            if not state.alive(site):
                continue
            role = self.role_of(site)
            automaton = self.automaton(site)
            local = state.local(site)
            for transition in automaton.transitions_from(local):
                if not self._vote_allowed(site, transition):
                    continue
                for consumed in _enabled_consumptions(state, site, transition, self.n_sites):
                    produced = self._route(
                        _sends_for(transition, site, role, self.n_sites), state
                    )
                    new_locals = list(state.locals)
                    new_locals[site - 1] = transition.target
                    new_voted = list(state.voted)
                    if transition.target in automaton.yes_vote_states:
                        new_voted[site - 1] = True
                    successor = GlobalState(
                        locals=tuple(new_locals),
                        outstanding=(state.outstanding - consumed) | frozenset(produced),
                        voted=tuple(new_voted),
                        crashed=state.crashed,
                        partition=state.partition,
                        lost=state.lost,
                    )
                    yield (
                        GlobalTransition(
                            source=state, site=site, transition=transition, target=successor
                        ),
                        consumed,
                    )

    def _timeout_successors(self, state: GlobalState, busy_sites: set[int]):
        if self.augmentation is None or not state.fault_fired:
            return
        for site in range(1, self.n_sites + 1):
            if not state.alive(site) or site in busy_sites:
                continue
            automaton = self.automaton(site)
            local = state.local(site)
            if automaton.is_final(local):
                continue
            action = self.augmentation.timeout_action.get((self.role_of(site), local))
            if action is None:
                continue
            target, successor = self._decide(state, site, action)
            event = FaultEvent(
                action="timeout",
                site=site,
                target=target,
                detail=f"timeout in {local}",
            )
            yield (
                GlobalTransition(source=state, site=site, transition=event, target=successor),
                frozenset(),
            )

    def _undeliverable_successors(self, state: GlobalState):
        if self.augmentation is None:
            return
        for message in state.returned_messages():
            site = message.receiver
            if not state.alive(site):
                continue
            automaton = self.automaton(site)
            local = state.local(site)
            if automaton.is_final(local):
                continue
            action = self.augmentation.undeliverable_action.get(
                (self.role_of(site), local)
            )
            if action is None:
                continue
            consumed = frozenset({message})
            target, successor = self._decide(state, site, action, consumed=consumed)
            event = FaultEvent(
                action="undeliverable",
                site=site,
                target=target,
                detail=f"returned {message.kind} in {local}",
            )
            yield (
                GlobalTransition(source=state, site=site, transition=event, target=successor),
                consumed,
            )

    def _fault_onset_successors(self, state: GlobalState):
        if self._all_final(state):
            return
        if self.fault == SINGLE_CRASH and not state.crashed:
            for site in range(1, self.n_sites + 1):
                yield self._crash_edge(state, site)
        elif self.fault == PARTITION and state.partition is None:
            for g1, g2 in self._splits:
                yield self._partition_edge(state, (g1, g2))
        elif self.fault == LOSSY and not state.lost:
            # One silent loss of any droppable outstanding message.  The
            # operator's request is local to the master and returned
            # notifications already model a delivery failure, so neither is
            # a loss candidate.  LOSSY_RETRANSMIT deliberately contributes
            # no edges here: behind the at-least-once layer every message
            # lands exactly once within the stretched bound, so its graph
            # is the failure-free one.
            for message in sorted(state.outstanding, key=TaggedMessage.sort_key):
                if message.returned or message.sender == OPERATOR_SITE:
                    continue
                yield self._loss_edge(state, message)

    def _crash_edge(self, state: GlobalState, site: int):
        outstanding: set[TaggedMessage] = set()
        for message in state.outstanding:
            if message.receiver != site:
                outstanding.add(message)
                continue
            # In-flight messages to the crashed site bounce (optimistic
            # model) when the protocol listens for bounces; returned
            # notifications and the operator's request are simply lost.
            if (
                self.augmentation is not None
                and not message.returned
                and message.sender != OPERATOR_SITE
            ):
                outstanding.add(
                    TaggedMessage(
                        kind=message.kind,
                        sender=site,
                        receiver=message.sender,
                        sender_role=message.sender_role,
                        sender_state=message.sender_state,
                        returned=True,
                    )
                )
        successor = GlobalState(
            locals=state.locals,
            outstanding=frozenset(outstanding),
            voted=state.voted,
            crashed=frozenset({site}),
            partition=state.partition,
            lost=state.lost,
        )
        event = FaultEvent(action="crash", site=site, detail=f"site {site} crashes")
        return (
            GlobalTransition(source=state, site=site, transition=event, target=successor),
            frozenset(),
        )

    def _loss_edge(self, state: GlobalState, message: TaggedMessage):
        """Silently drop one outstanding message (the lossy envelope).

        Unlike a crash or partition bounce, a loss leaves *no* evidence: no
        returned notification reaches the sender, the receiver simply never
        hears the message -- precisely the violation of assumption 1 the
        simulator's ``LinkFault`` loss models.
        """
        successor = GlobalState(
            locals=state.locals,
            outstanding=state.outstanding - {message},
            voted=state.voted,
            crashed=state.crashed,
            partition=state.partition,
            lost=True,
        )
        event = FaultEvent(
            action="loss",
            site=OPERATOR_SITE,
            detail=f"{message} lost",
        )
        return (
            GlobalTransition(
                source=state, site=OPERATOR_SITE, transition=event, target=successor
            ),
            frozenset(),
        )

    def _partition_edge(
        self, state: GlobalState, groups: tuple[tuple[int, ...], tuple[int, ...]]
    ):
        def cut(a: int, b: int) -> bool:
            if a == OPERATOR_SITE:
                a = 1
            if b == OPERATOR_SITE:
                b = 1
            return (a in groups[1]) != (b in groups[1])

        outstanding: set[TaggedMessage] = set()
        for message in state.outstanding:
            if not cut(message.sender, message.receiver):
                outstanding.add(message)
            elif self.augmentation is not None and not message.returned:
                outstanding.add(
                    TaggedMessage(
                        kind=message.kind,
                        sender=message.receiver,
                        receiver=message.sender,
                        sender_role=message.sender_role,
                        sender_state=message.sender_state,
                        returned=True,
                    )
                )
        successor = GlobalState(
            locals=state.locals,
            outstanding=frozenset(outstanding),
            voted=state.voted,
            crashed=state.crashed,
            partition=groups,
            lost=state.lost,
        )
        detail = "|".join("{" + ",".join(map(str, g)) + "}" for g in groups)
        event = FaultEvent(action="partition", site=OPERATOR_SITE, detail=detail)
        return (
            GlobalTransition(
                source=state, site=OPERATOR_SITE, transition=event, target=successor
            ),
            frozenset(),
        )


def enumerate_successors(
    spec: CommitProtocolSpec,
    n_sites: int,
    state: GlobalState,
    *,
    augmentation: Optional[Any] = None,
    fault: str = FAILURE_FREE,
    no_voters: Optional[frozenset[int]] = None,
) -> list[GlobalTransition]:
    """Every legal outgoing edge of ``state`` under the given setup.

    Public so counterexample traces can be *replayed*: a trace is valid iff
    each of its edges is among the legal successors of its source state (the
    explorer property tests assert exactly this).
    """
    explorer = _ModelExplorer(
        spec, n_sites, augmentation=augmentation, fault=fault, no_voters=no_voters
    )
    return [edge for edge, _ in explorer.successors(state)]


def explore_model(
    spec: CommitProtocolSpec,
    n_sites: int,
    *,
    augmentation: Optional[Any] = None,
    fault: str = FAILURE_FREE,
    no_voters: Optional[frozenset[int]] = None,
    max_states: int = 200_000,
    max_depth: Optional[int] = None,
    order: str = BFS,
) -> ReachabilityResult:
    """Exhaustively explore ``spec`` under a fault envelope, within budgets.

    Args:
        spec: the commit protocol.
        n_sites: number of participating sites (>= 2; site 1 is the master).
        augmentation: optional Rule (a)/(b) tables
            (:class:`~repro.core.rules.AugmentedProtocol` or anything with
            ``timeout_action`` / ``undeliverable_action`` dicts); enables
            the timeout and undeliverable-message pseudo-transitions.
        fault: one of :data:`ALL_FAULT_ENVELOPES`.
        no_voters: ``None`` explores both vote branches of every slave;
            a set scripts the vote pattern (members vote no, the rest yes).
        max_states: state budget; exceeding it raises
            :class:`ExplorationError` (with the partial result attached)
            *before* the over-budget state is recorded, so a graph with
            exactly ``max_states`` states completes.
        max_depth: optional depth budget; states at this depth are not
            expanded and the result is marked ``complete=False`` when that
            truncates anything.
        order: :data:`BFS` (canonical; minimal counterexamples) or
            :data:`DFS` (same reachable set, different discovery order).

    Returns:
        A :class:`ReachabilityResult` with the full graph, visit order,
        depths and parent pointers.
    """
    if order not in (BFS, DFS):
        raise ValueError(f"unknown exploration order {order!r}")
    explorer = _ModelExplorer(
        spec, n_sites, augmentation=augmentation, fault=fault, no_voters=no_voters
    )
    initial = _initial_state(spec, n_sites)
    result = ReachabilityResult(spec=spec, n_sites=n_sites, initial=initial)
    result.states.add(initial)
    result.visit_order.append(initial)
    result.depth[initial] = 0
    frontier: deque[GlobalState] = deque([initial])
    pop = frontier.popleft if order == BFS else frontier.pop
    while frontier:
        current = pop()
        current_depth = result.depth[current]
        if max_depth is not None and current_depth >= max_depth:
            if next(explorer.successors(current), None) is not None:
                result.unexpanded.add(current)
                result.complete = False
            continue
        for edge, consumed in explorer.successors(current):
            if not edge.is_fault:
                reception_key = (explorer.role_of(edge.site), current.local(edge.site))
                senders = result.receptions.setdefault(reception_key, set())
                for message in consumed:
                    if message.sender_role != OPERATOR:
                        senders.add((message.sender_role, message.sender_state))
            result.edges.append(edge)
            successor = edge.target
            if successor not in result.states:
                if len(result.states) >= max_states:
                    result.complete = False
                    raise ExplorationError(
                        f"exceeded {max_states} global states exploring {spec.name}",
                        partial=result,
                    )
                result.states.add(successor)
                result.visit_order.append(successor)
                result.depth[successor] = current_depth + 1
                result.parents[successor] = edge
                frontier.append(successor)
    return result


def explore(
    spec: CommitProtocolSpec,
    n_sites: int,
    *,
    max_states: int = 200_000,
) -> ReachabilityResult:
    """Enumerate every reachable failure-free global state of ``spec``.

    The original Sections 2-3 exploration surface (no faults, both vote
    branches), kept as the entry point of the concurrency analysis; it is
    :func:`explore_model` with the failure-free envelope.

    Args:
        spec: the commit protocol.
        n_sites: number of participating sites (>= 2; site 1 is the master).
        max_states: safety limit on the size of the explored graph.

    Returns:
        A :class:`ReachabilityResult` with the full state graph, plus the
        reception relation used to compute sender sets.
    """
    return explore_model(spec, n_sites, max_states=max_states)
