"""Exhaustive exploration of a commit protocol's failure-free executions.

The concurrency set, sender set and committable-state definitions of
Sections 2-3 all quantify over the *reachable global states* of the
protocol.  This module enumerates them for a protocol instantiated with
``n`` participating sites (site 1 is the master).

A global state is, exactly as in the paper's model, the vector of local
states plus the set of outstanding messages; we additionally carry a
"has voted yes" flag per site so that the committable-state classification
("occupancy ... implies that all sites have voted yes") can be verified
mechanically rather than trusted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core import messages as msg
from repro.core.fsa import (
    ANY_SLAVE,
    CommitProtocolSpec,
    EACH_SLAVE,
    MASTER,
    MASTER_ROLE,
    OPERATOR,
    RoleAutomaton,
    SLAVE_ROLE,
    Transition,
)

OPERATOR_SITE = 0  # pseudo-site the external "request" message comes from


class ExplorationError(RuntimeError):
    """Raised when exploration exceeds its safety limits."""


@dataclass(frozen=True)
class TaggedMessage:
    """An outstanding message, tagged with the sender's state when it was sent.

    The tag is what makes sender sets ``S(s)`` computable: when a site in
    local state ``s`` consumes the message, the tagged state is by definition
    a member of ``S(s)``.
    """

    kind: str
    sender: int
    receiver: int
    sender_role: str
    sender_state: str

    def __str__(self) -> str:
        return f"{self.kind}[{self.sender}->{self.receiver}]"


@dataclass(frozen=True)
class GlobalState:
    """One global state: local-state vector + outstanding messages + vote flags."""

    locals: tuple[str, ...]
    outstanding: frozenset[TaggedMessage]
    voted: tuple[bool, ...]

    @property
    def n_sites(self) -> int:
        """Number of participating sites."""
        return len(self.locals)

    def local(self, site: int) -> str:
        """Local state of ``site`` (1-based)."""
        return self.locals[site - 1]

    def messages_to(self, site: int, kind: Optional[str] = None) -> tuple[TaggedMessage, ...]:
        """Outstanding messages addressed to ``site`` (optionally of one kind)."""
        return tuple(
            message
            for message in self.outstanding
            if message.receiver == site and (kind is None or message.kind == kind)
        )

    def all_voted(self) -> bool:
        """True when every participating site has voted yes."""
        return all(self.voted)

    def __str__(self) -> str:
        vector = ", ".join(self.locals)
        pending = ", ".join(sorted(str(m) for m in self.outstanding)) or "-"
        return f"<({vector}) | {pending}>"


@dataclass(frozen=True)
class GlobalTransition:
    """An edge of the global state graph."""

    source: GlobalState
    site: int
    transition: Transition
    target: GlobalState


@dataclass
class ReachabilityResult:
    """Everything the concurrency analysis needs about a protocol instance."""

    spec: CommitProtocolSpec
    n_sites: int
    initial: GlobalState
    states: set[GlobalState] = field(default_factory=set)
    edges: list[GlobalTransition] = field(default_factory=list)
    # (receiver_role, receiver_state) -> set of (sender_role, sender_state)
    receptions: dict[tuple[str, str], set[tuple[str, str]]] = field(default_factory=dict)

    def role_of(self, site: int) -> str:
        """Role played by ``site`` (site 1 is the master)."""
        return MASTER_ROLE if site == 1 else SLAVE_ROLE

    def occupancies(self) -> dict[tuple[str, str], list[GlobalState]]:
        """Map (role, local state) -> global states in which some site occupies it."""
        result: dict[tuple[str, str], list[GlobalState]] = {}
        for state in self.states:
            for site in range(1, self.n_sites + 1):
                key = (self.role_of(site), state.local(site))
                result.setdefault(key, []).append(state)
        return result

    def final_states(self) -> list[GlobalState]:
        """Global states with no outgoing edges."""
        sources = {edge.source for edge in self.edges}
        return [state for state in self.states if state not in sources]

    @property
    def state_count(self) -> int:
        """Number of distinct reachable global states."""
        return len(self.states)


def _automaton_for(spec: CommitProtocolSpec, site: int) -> RoleAutomaton:
    return spec.master if site == 1 else spec.slave


def _initial_state(spec: CommitProtocolSpec, n_sites: int) -> GlobalState:
    locals_vector = tuple(
        _automaton_for(spec, site).initial for site in range(1, n_sites + 1)
    )
    request = TaggedMessage(
        kind=msg.REQUEST,
        sender=OPERATOR_SITE,
        receiver=1,
        sender_role=OPERATOR,
        sender_state=OPERATOR,
    )
    return GlobalState(
        locals=locals_vector,
        outstanding=frozenset({request}),
        voted=tuple(False for _ in range(n_sites)),
    )


def _sends_for(
    transition: Transition, site: int, role: str, n_sites: int
) -> frozenset[TaggedMessage]:
    """Messages written by ``transition`` when taken by ``site``."""
    produced: set[TaggedMessage] = set()
    slaves = [s for s in range(2, n_sites + 1)]
    for send in transition.sends:
        if send.target == MASTER:
            produced.add(
                TaggedMessage(
                    kind=send.kind,
                    sender=site,
                    receiver=1,
                    sender_role=role,
                    sender_state=transition.source,
                )
            )
        elif send.target == OPERATOR:
            continue
        else:  # all_slaves
            for slave in slaves:
                if slave == site:
                    continue
                produced.add(
                    TaggedMessage(
                        kind=send.kind,
                        sender=site,
                        receiver=slave,
                        sender_role=role,
                        sender_state=transition.source,
                    )
                )
    return frozenset(produced)


def _enabled_consumptions(
    state: GlobalState, site: int, transition: Transition, n_sites: int
) -> list[frozenset[TaggedMessage]]:
    """Sets of outstanding messages that would satisfy the transition's read.

    Returns an empty list when the read cannot be satisfied; several entries
    when the read is satisfiable in more than one way (``any_slave`` with
    messages from multiple slaves outstanding).
    """
    read = transition.read
    if read.source == OPERATOR:
        candidates = [
            message
            for message in state.messages_to(site, read.kind)
            if message.sender == OPERATOR_SITE
        ]
        return [frozenset({candidate}) for candidate in candidates]
    if read.source == MASTER:
        candidates = [
            message
            for message in state.messages_to(site, read.kind)
            if message.sender == 1
        ]
        return [frozenset({candidate}) for candidate in candidates]
    if read.source == ANY_SLAVE:
        candidates = [
            message
            for message in state.messages_to(site, read.kind)
            if message.sender != 1 and message.sender != OPERATOR_SITE
        ]
        return [frozenset({candidate}) for candidate in candidates]
    if read.source == EACH_SLAVE:
        slaves = [s for s in range(2, n_sites + 1) if s != site]
        needed: set[TaggedMessage] = set()
        for slave in slaves:
            matches = [
                message
                for message in state.messages_to(site, read.kind)
                if message.sender == slave
            ]
            if not matches:
                return []
            needed.add(matches[0])
        return [frozenset(needed)]
    raise ValueError(f"unknown read source {read.source!r}")


def explore(
    spec: CommitProtocolSpec,
    n_sites: int,
    *,
    max_states: int = 200_000,
) -> ReachabilityResult:
    """Enumerate every reachable global state of ``spec`` with ``n_sites`` sites.

    Args:
        spec: the commit protocol.
        n_sites: number of participating sites (>= 2; site 1 is the master).
        max_states: safety limit on the size of the explored graph.

    Returns:
        A :class:`ReachabilityResult` with the full state graph, plus the
        reception relation used to compute sender sets.
    """
    if n_sites < 2:
        raise ValueError(f"a distributed transaction needs at least 2 sites, got {n_sites}")
    initial = _initial_state(spec, n_sites)
    result = ReachabilityResult(spec=spec, n_sites=n_sites, initial=initial)
    result.states.add(initial)
    frontier: deque[GlobalState] = deque([initial])
    while frontier:
        current = frontier.popleft()
        for site in range(1, n_sites + 1):
            role = result.role_of(site)
            automaton = _automaton_for(spec, site)
            local = current.local(site)
            for transition in automaton.transitions_from(local):
                for consumed in _enabled_consumptions(current, site, transition, n_sites):
                    produced = _sends_for(transition, site, role, n_sites)
                    new_locals = list(current.locals)
                    new_locals[site - 1] = transition.target
                    new_voted = list(current.voted)
                    if transition.target in automaton.yes_vote_states:
                        new_voted[site - 1] = True
                    successor = GlobalState(
                        locals=tuple(new_locals),
                        outstanding=(current.outstanding - consumed) | produced,
                        voted=tuple(new_voted),
                    )
                    # Record the reception relation for sender sets.
                    reception_key = (role, local)
                    senders = result.receptions.setdefault(reception_key, set())
                    for message in consumed:
                        if message.sender_role != OPERATOR:
                            senders.add((message.sender_role, message.sender_state))
                    result.edges.append(
                        GlobalTransition(
                            source=current, site=site, transition=transition, target=successor
                        )
                    )
                    if successor not in result.states:
                        result.states.add(successor)
                        frontier.append(successor)
                        if len(result.states) > max_states:
                            raise ExplorationError(
                                f"exceeded {max_states} global states exploring {spec.name}"
                            )
    return result
