"""Canonical JSON encoding shared by the engine's summary records.

The result cache and the JSONL spill format promise *byte-identical*
records across processes, worker counts and re-runs, which requires one
encoding contract: sorted keys, compact separators, UTF-8.  Both
:class:`~repro.engine.summary.RunSummary` and
:class:`~repro.txn.summary.ThroughputSummary` encode through this helper
(the txn package must not import the engine, so the contract lives here,
below both).
"""

from __future__ import annotations

import json
from typing import Any, Mapping


def canonical_json_bytes(payload: Mapping[str, Any]) -> bytes:
    """Encode ``payload`` as canonical JSON bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
