"""Decision logic of the termination protocol (Section 5.3).

This module contains the *pure* logic of the paper's contribution, kept free
of any simulation concerns so that it can be unit-tested and property-tested
directly:

* :class:`TerminationTimers` -- the timeout structure of Figs. 5-7 and 9,
  expressed as multiples of ``T`` (the longest end-to-end propagation
  delay);
* :class:`MasterTerminationTracker` -- the master's bookkeeping of the sets
  ``UD`` (slaves whose prepare message bounced) and ``PB`` (slaves that
  probed the master), and the ``N - UD = PB`` decision rule;
* :func:`master_decision` -- the same rule as a standalone function.

The timed protocol role in
:mod:`repro.protocols.three_phase_terminating` wires this logic to the
simulator; the exhaustive Theorem 9 sweep drives it through every partition
placement.

Note on the paper's notation: the paper defines ``N`` as the set of *sites*
``{1, ..., n}`` but its Lemma 4 uses ``N - UD = PB`` to compare *slave*
sets ("N - UD = PS = set of all slaves in G1"), and neither ``UD`` nor
``PB`` can ever contain the master.  We therefore implement the rule over
slave sets, which is the only reading under which the protocol and its
correctness proof are consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class TerminationOutcome(enum.Enum):
    """The decision the termination protocol reaches for a partition group."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class TerminationTimers:
    """All timeout intervals of the paper, in simulated time units.

    Args:
        max_delay: the paper's ``T``.

    The defaults encode Fig. 5 (commit-protocol timeouts), Fig. 6 (master's
    probe-collection window), Fig. 7 (slave's wait after timing out in
    ``w``) and Fig. 9 / Section 6 (slave's wait after timing out in ``p``).
    """

    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_delay <= 0:
            raise ValueError(f"T must be positive, got {self.max_delay}")

    @property
    def master_vote_timeout(self) -> float:
        """Fig. 5: the master waits up to ``2T`` for votes (or acks)."""
        return 2.0 * self.max_delay

    @property
    def slave_timeout(self) -> float:
        """Fig. 5: a slave waits up to ``3T`` for the master's next message."""
        return 3.0 * self.max_delay

    @property
    def probe_window(self) -> float:
        """Fig. 6: the master collects probes for ``5T`` after an UD(prepare)."""
        return 5.0 * self.max_delay

    @property
    def wait_in_w(self) -> float:
        """Fig. 7: a slave that timed out in ``w`` waits ``6T`` for a commit."""
        return 6.0 * self.max_delay

    @property
    def wait_in_p(self) -> float:
        """Fig. 9 / Section 6: a slave that timed out in ``p`` waits ``5T``."""
        return 5.0 * self.max_delay

    def as_dict(self) -> dict[str, float]:
        """All timeouts keyed by name (used in reports)."""
        return {
            "T": self.max_delay,
            "master_vote_timeout": self.master_vote_timeout,
            "slave_timeout": self.slave_timeout,
            "probe_window": self.probe_window,
            "wait_in_w": self.wait_in_w,
            "wait_in_p": self.wait_in_p,
        }


@dataclass(frozen=True)
class MasterTerminationDecision:
    """The master's decision for its partition ``G1``, with its justification."""

    outcome: TerminationOutcome
    undeliverable: frozenset[int]
    probed: frozenset[int]
    expected_probers: frozenset[int]
    reason: str

    @property
    def commits(self) -> bool:
        """True when the decision is to commit ``G1``."""
        return self.outcome is TerminationOutcome.COMMIT


def master_decision(
    slaves: Iterable[int],
    undeliverable: Iterable[int],
    probed: Iterable[int],
) -> MasterTerminationDecision:
    """The Section 5.3 master rule.

    "If the probe messages that the master received are sent by exactly
    those slaves that do not have an undeliverable prepare message returned
    to the master, then there is no prepare message flowing through boundary
    B and the master can safely abort all the slaves in G1; else there is at
    least one prepare message flowing through boundary B and the master can
    safely commit all the slaves in G1."

    Args:
        slaves: all slaves of the transaction (the paper's ``N`` minus the
            master).
        undeliverable: the paper's ``UD`` -- slaves whose prepare bounced.
        probed: the paper's ``PB`` -- slaves whose probe the master received.
    """
    slave_set = frozenset(slaves)
    ud_set = frozenset(undeliverable) & slave_set
    pb_set = frozenset(probed) & slave_set
    expected = slave_set - ud_set
    if expected == pb_set:
        outcome = TerminationOutcome.ABORT
        reason = (
            "probes received from exactly the slaves whose prepare was delivered; "
            "no prepare crossed the boundary, G2 will abort, so G1 aborts"
        )
    else:
        outcome = TerminationOutcome.COMMIT
        reason = (
            "probe set differs from the reachable-slave set; some slave in G2 "
            "received a prepare and will commit G2, so G1 commits"
        )
    return MasterTerminationDecision(
        outcome=outcome,
        undeliverable=ud_set,
        probed=pb_set,
        expected_probers=expected,
        reason=reason,
    )


@dataclass
class MasterTerminationTracker:
    """Mutable ``UD`` / ``PB`` bookkeeping used by the master's timed role.

    The tracker is started when the master (in state ``p1``) receives its
    first undeliverable prepare message; it then accumulates further
    UD(prepare) notifications and probe messages until the ``5T`` probe
    window closes, at which point :meth:`decide` applies the rule.
    """

    slaves: frozenset[int]
    undeliverable: set[int] = field(default_factory=set)
    probed: set[int] = field(default_factory=set)
    window_open: bool = False

    def open_window(self, first_undeliverable: int) -> None:
        """Start collecting (called on the first UD(prepare))."""
        self.window_open = True
        self.record_undeliverable(first_undeliverable)

    def record_undeliverable(self, slave: int) -> None:
        """Record that the prepare message to ``slave`` bounced."""
        self._validate(slave)
        self.undeliverable.add(slave)

    def record_probe(self, slave: int) -> None:
        """Record a ``probe(trans_id, slave_id)`` message from ``slave``."""
        self._validate(slave)
        self.probed.add(slave)

    def decide(self) -> MasterTerminationDecision:
        """Close the window and apply the ``N - UD = PB`` rule."""
        self.window_open = False
        return master_decision(self.slaves, self.undeliverable, self.probed)

    def _validate(self, slave: int) -> None:
        if slave not in self.slaves:
            raise ValueError(f"site {slave} is not a slave of this transaction")
