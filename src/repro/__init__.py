"""Reproduction of Huang & Li (ICDE 1987).

``repro`` implements, end to end, the system described in *"A Termination
Protocol for Simple Network Partitioning in Distributed Database Systems"*
(Ching-Liang Huang and Victor O.K. Li, Proc. 3rd IEEE International
Conference on Data Engineering, 1987, pp. 455-465):

* a deterministic discrete-event simulator of a partitionable network
  (:mod:`repro.sim`),
* a small distributed-database substrate with write-ahead logging, locks and
  recovery (:mod:`repro.db`),
* the formal finite-state-automaton model of commit protocols with
  concurrency sets, sender sets, Rules (a)/(b) and the paper's lemmas
  (:mod:`repro.core`),
* executable commit protocols -- 2PC, extended 2PC, 3PC, the broken
  timeout-only 3PC, the paper's termination protocol, and a quorum baseline
  (:mod:`repro.protocols`),
* analysis tools for atomicity, blocking and worst-case timing
  (:mod:`repro.analysis`),
* workload generators, metrics and the experiment harness that regenerates
  every figure and case table in the paper (:mod:`repro.workloads`,
  :mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro.experiments import run_termination_sweep

    report = run_termination_sweep(n_sites=4)
    assert report.atomicity_violations == 0
    assert report.blocked_runs == 0
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
