"""Scenario runner: one transaction, one protocol, one failure scenario.

The runner wires a protocol's roles onto a simulated cluster with database
sites, installs the partition / crash schedules, runs the simulation to
quiescence (or a horizon for blocking protocols) and summarizes the outcome:
per-site decisions, decision times, votes, blocking, lock retention and
message counts.  Every experiment, benchmark and example in the repository
goes through :func:`run_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.db.transactions import Transaction
from repro.protocols.base import ProtocolContext, ProtocolDefinition, RoleBase
from repro.sim.cluster import Cluster
from repro.sim.failures import CrashSchedule, FaultPlan, normalize_fault_plan
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import OPTIMISTIC
from repro.sim.partition import PartitionSchedule
from repro.sim.trace import NullTrace, Trace

#: Shared default latency model (stateless, so one instance serves every
#: spec); building one per effective_latency() call showed up in sweeps.
_DEFAULT_LATENCY = ConstantLatency(1.0)


@dataclass
class ScenarioSpec:
    """Everything needed to run one transaction through one failure scenario.

    Attributes:
        n_sites: number of participating sites (site 1 is the master).
        partition: partition / heal schedule (default: none).
        crashes: site crash schedule (default: none).
        no_voters: sites scripted to vote "no".
        latency: network latency model; its upper bound is the paper's ``T``.
        model: ``"optimistic"`` (return undeliverable messages, the paper's
            assumption 1) or ``"pessimistic"`` (lose them).
        horizon: simulated-time limit.  Blocking protocols never quiesce under
            partitions, so every run is bounded; the default of ``40 T`` is
            far beyond every bound in the paper.
        seed: random seed (only relevant for stochastic latency models).
        initial_data: initial key/value contents installed at every site.
        write_key / write_value: the update the transaction installs.
        faults: unified fault plan (message loss / duplication / reordering,
            omission and Byzantine sites, retransmission).  Hash-optional:
            ``None`` (or ``FaultPlan.none()``, normalized to ``None``) keeps
            the spec hash byte-identical to the pre-FaultPlan format.
    """

    n_sites: int = 3
    partition: Optional[PartitionSchedule] = None
    crashes: Optional[CrashSchedule] = None
    no_voters: frozenset[int] = frozenset()
    latency: Optional[LatencyModel] = None
    model: str = OPTIMISTIC
    horizon: Optional[float] = None
    seed: int = 0
    initial_data: Optional[Mapping[str, Any]] = None
    write_key: str = "balance"
    write_value: Any = 100
    faults: Optional[FaultPlan] = field(
        default=None, metadata={"hash_optional": True}
    )

    def __post_init__(self) -> None:
        self.faults = normalize_fault_plan(self.faults)
        if self.faults is not None:
            self.faults.validate(self.n_sites)

    def effective_latency(self) -> LatencyModel:
        """The latency model, defaulting to a constant delay of 1 (= T)."""
        return self.latency or _DEFAULT_LATENCY

    def effective_max_delay(self) -> float:
        """The delivery bound the protocol timers are built from.

        Without retransmission this is the latency model's ``T``.  With the
        at-least-once layer enabled, a message may only land after several
        retransmit rounds, so the timers (and the paper's timeout structure
        with them) stretch to the plan's effective bound -- that stretching
        is precisely how the layer restores assumption 1.
        """
        max_delay = self.effective_latency().upper_bound
        if self.faults is not None and self.faults.retransmit is not None:
            return self.faults.effective_max_delay(max_delay)
        return max_delay

    def effective_horizon(self) -> float:
        """The run horizon, defaulting to ``40 T`` (of the effective bound)."""
        if self.horizon is not None:
            return self.horizon
        return 40.0 * self.effective_max_delay()


@dataclass
class TransactionRunResult:
    """Outcome of one scenario run."""

    protocol: str
    spec: ScenarioSpec
    transaction: Transaction
    decisions: dict[int, Optional[str]] = field(default_factory=dict)
    decision_times: dict[int, Optional[float]] = field(default_factory=dict)
    votes: dict[int, Optional[str]] = field(default_factory=dict)
    states: dict[int, str] = field(default_factory=dict)
    conflicting_decisions: dict[int, int] = field(default_factory=dict)
    locks_held_at_end: dict[int, bool] = field(default_factory=dict)
    values_at_end: dict[int, Any] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_bounced: int = 0
    messages_dropped: int = 0
    messages_retransmitted: int = 0
    messages_deduplicated: int = 0
    finished_at: float = 0.0
    trace: Trace = field(default_factory=Trace)
    db_sites: dict[int, DatabaseSite] = field(default_factory=dict)
    byzantine_sites: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    # derived verdicts
    #
    # All verdicts range over *honest* sites: a Byzantine site's own
    # "decision" carries no meaning, so it can neither violate atomicity nor
    # count as blocked.  Fault-free runs have no Byzantine sites and behave
    # exactly as before.
    # ------------------------------------------------------------------
    @property
    def participants(self) -> tuple[int, ...]:
        """The sites that took part in the transaction."""
        return self.transaction.participants

    @property
    def honest_participants(self) -> tuple[int, ...]:
        """Participants that are not scripted to misbehave."""
        if not self.byzantine_sites:
            return self.transaction.participants
        return tuple(
            s for s in self.transaction.participants if s not in self.byzantine_sites
        )

    def _honest_decisions(self):
        items = sorted(self.decisions.items())
        if not self.byzantine_sites:
            return items
        return [(s, d) for s, d in items if s not in self.byzantine_sites]

    @property
    def committed_sites(self) -> tuple[int, ...]:
        """Honest sites whose local decision was commit."""
        return tuple(s for s, d in self._honest_decisions() if d == "commit")

    @property
    def aborted_sites(self) -> tuple[int, ...]:
        """Honest sites whose local decision was abort."""
        return tuple(s for s, d in self._honest_decisions() if d == "abort")

    @property
    def undecided_sites(self) -> tuple[int, ...]:
        """Honest sites with no decision when the run ended (blocked sites)."""
        return tuple(s for s, d in self._honest_decisions() if d is None)

    @property
    def blocked_sites(self) -> tuple[int, ...]:
        """Alias for :attr:`undecided_sites` (the paper's notion of blocking)."""
        return self.undecided_sites

    @property
    def atomicity_violated(self) -> bool:
        """True when some site committed while another aborted."""
        return bool(self.committed_sites) and bool(self.aborted_sites)

    @property
    def blocked(self) -> bool:
        """True when at least one site never terminated the transaction."""
        return bool(self.undecided_sites)

    @property
    def all_committed(self) -> bool:
        """True when every honest participant committed."""
        return len(self.committed_sites) == len(self.honest_participants)

    @property
    def all_aborted(self) -> bool:
        """True when every honest participant aborted."""
        return len(self.aborted_sites) == len(self.honest_participants)

    @property
    def consistent(self) -> bool:
        """Atomicity holds and nobody is blocked (Theorem 9's property)."""
        return not self.atomicity_violated and not self.blocked

    @property
    def stores_agree(self) -> bool:
        """True when the committed sites all installed the same value."""
        values = {self.values_at_end[s] for s in self.committed_sites}
        return len(values) <= 1

    def decision_latency(self, site: int) -> Optional[float]:
        """Time from submission (t = 0) to the site's decision."""
        return self.decision_times.get(site)

    def max_decision_latency(self) -> Optional[float]:
        """Largest decision latency among decided sites (``None`` if nobody decided)."""
        times = [t for t in self.decision_times.values() if t is not None]
        return max(times) if times else None

    def summary(self) -> str:
        """One-line human-readable outcome."""
        verdict = "ATOMICITY VIOLATED" if self.atomicity_violated else (
            "blocked" if self.blocked else "consistent"
        )
        return (
            f"{self.protocol}: commit={list(self.committed_sites)} "
            f"abort={list(self.aborted_sites)} undecided={list(self.undecided_sites)} "
            f"[{verdict}]"
        )


def run_scenario(
    protocol: ProtocolDefinition,
    spec: Optional[ScenarioSpec] = None,
    *,
    collect_trace: bool = True,
    **overrides: Any,
) -> TransactionRunResult:
    """Run one transaction under ``protocol`` in the scenario ``spec``.

    Keyword overrides are applied on top of ``spec`` (or on a default spec),
    so callers can write ``run_scenario(protocol, n_sites=4, partition=...)``.

    ``collect_trace=False`` substitutes a :class:`~repro.sim.trace.NullTrace`
    so no per-event records are built.  Scheduling is unaffected -- the run's
    outcome (decisions, timings, message counts, lock stats) is identical --
    but ``result.trace`` stays empty, so only callers that never read the
    trace (e.g. the sweep engine when no measure is requested) may use it.
    """
    if spec is None:
        spec = ScenarioSpec()
    if overrides:
        spec = ScenarioSpec(**{**spec.__dict__, **overrides})

    latency = spec.effective_latency()
    # With retransmission in force the timeout structure stretches to the
    # plan's effective delivery bound (see ScenarioSpec.effective_max_delay).
    timers = TerminationTimers(max_delay=spec.effective_max_delay())
    cluster = Cluster(
        spec.n_sites,
        latency=latency,
        model=spec.model,
        seed=spec.seed,
        trace=None if collect_trace else NullTrace(),
    )
    participants = tuple(cluster.site_ids())
    transaction = Transaction.simple_update(
        1, participants, spec.write_key, spec.write_value
    )
    db_sites = {
        site: DatabaseSite(site, initial_data=spec.initial_data)
        for site in participants
    }

    roles: dict[int, RoleBase] = {}
    for site in participants:
        ctx = ProtocolContext(
            node=cluster.node(site),
            db=db_sites[site],
            transaction=transaction,
            participants=participants,
            master=1,
            timers=timers,
            no_voters=frozenset(spec.no_voters),
        )
        if site == 1:
            roles[site] = protocol.coordinator(ctx)
        else:
            roles[site] = protocol.participant(ctx)

    if spec.partition is not None:
        cluster.apply_partition_schedule(spec.partition)
    if spec.crashes is not None:
        cluster.apply_crash_schedule(spec.crashes)
    byzantine_sites: frozenset[int] = frozenset()
    if spec.faults is not None:
        cluster.apply_fault_plan(spec.faults)
        if spec.faults.byzantine:
            from repro.protocols.byzantine import install_byzantine_interceptors

            install_byzantine_interceptors(cluster, spec.faults)
            byzantine_sites = spec.faults.byzantine_sites()

    cluster.start_all()
    cluster.run(until=spec.effective_horizon())

    result = TransactionRunResult(
        protocol=getattr(protocol, "name", type(protocol).__name__),
        spec=spec,
        transaction=transaction,
        trace=cluster.trace,
        db_sites=db_sites,
        messages_sent=cluster.network.messages_sent,
        messages_delivered=cluster.network.messages_delivered,
        messages_bounced=cluster.network.messages_bounced,
        messages_dropped=cluster.network.messages_dropped,
        messages_retransmitted=cluster.network.messages_retransmitted,
        messages_deduplicated=cluster.network.messages_deduplicated,
        finished_at=cluster.sim.now,
        byzantine_sites=byzantine_sites,
    )
    for site in participants:
        role = roles[site]
        result.decisions[site] = role.decision.value if role.decision else None
        result.decision_times[site] = role.decided_at
        result.votes[site] = role.vote
        result.states[site] = role.state
        result.conflicting_decisions[site] = role.conflicting_decisions
        result.locks_held_at_end[site] = db_sites[site].holds_locks(
            transaction.transaction_id
        )
        result.values_at_end[site] = db_sites[site].value(spec.write_key)
    return result


def run_many(
    protocol_factory,
    specs: Iterable[ScenarioSpec],
) -> list[TransactionRunResult]:
    """Run a batch of scenarios, constructing a fresh protocol per run."""
    return [run_scenario(protocol_factory(), spec) for spec in specs]
