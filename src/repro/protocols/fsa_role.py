"""Generic roles that execute a formal protocol specification.

The baseline protocols (2PC, extended 2PC, 3PC, the naive extended 3PC and
the quorum skeleton) differ only in their finite-state automata and in the
timeout / undeliverable-message augmentation applied to them, so they share
one implementation: a coordinator role and a participant role that *execute*
a :class:`~repro.core.fsa.CommitProtocolSpec`, optionally consulting an
:class:`~repro.core.rules.AugmentedProtocol` when a timer fires or a bounced
message arrives.

The paper's own termination protocol is deliberately *not* expressed this
way -- it needs probe messages, the UD/PB bookkeeping and slave-to-slave
commits, which go beyond the augmentation rules; see
:mod:`repro.protocols.three_phase_terminating`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core import messages as m
from repro.core.fsa import (
    ANY_SLAVE,
    CommitProtocolSpec,
    EACH_SLAVE,
    MASTER,
    MASTER_ROLE,
    OPERATOR,
    RoleAutomaton,
    SLAVE_ROLE,
    Transition,
)
from repro.core.rules import AugmentedProtocol, FinalAction
from repro.protocols.base import Decision, ProtocolContext, ProtocolMessage, RoleBase

#: Message kinds whose receipt corresponds to journalling the prepared state.
_PROMOTION_KINDS = frozenset({m.PREPARE, m.PRE_COMMIT})

_STATE_TIMER = "state-timeout"

#: Shared empty sender set used as the miss default in `_satisfied`, so the
#: (very common) "no messages of this kind yet" path allocates nothing.
_NO_SENDERS: frozenset[int] = frozenset()


def _final_action_to_decision(action: FinalAction) -> Decision:
    return Decision.COMMIT if action is FinalAction.COMMIT else Decision.ABORT


class FSARole(RoleBase):
    """Executes one role automaton of a commit protocol specification."""

    def __init__(
        self,
        ctx: ProtocolContext,
        spec: CommitProtocolSpec,
        role: str,
        *,
        augmentation: Optional[AugmentedProtocol] = None,
    ) -> None:
        self.spec = spec
        self.role = role
        self.automaton: RoleAutomaton = spec.automaton(role)
        self.augmentation = augmentation
        self.received: dict[str, set[int]] = {}
        # The automaton is immutable, so index its transitions by source
        # state once: `transitions_from` rescans every transition per call,
        # and `_try_fire` runs on every delivery.
        automaton = self.automaton
        self._transitions_from: dict[str, tuple[Transition, ...]] = {
            state: automaton.transitions_from(state) for state in automaton.states
        }
        self._final_states = automaton.commit_states | automaton.abort_states
        super().__init__(ctx, initial_state=automaton.initial)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if self.role == MASTER_ROLE:
            self._start_master()
        else:
            self._start_participant()

    def _start_master(self) -> None:
        vote = self.cast_vote()
        if vote == "no":
            # The master aborts unilaterally before involving anyone else.
            self.decide(Decision.ABORT, reason="master voted no")
            self.broadcast_decision(Decision.ABORT)
            return
        # Consume the external "request": take the operator transition.
        for transition in self._transitions_from[self.state]:
            if transition.read.source == OPERATOR:
                self._fire(transition, reason="request received")
                return

    def _start_participant(self) -> None:
        self._arm_state_timer()

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def on_message(self, payload: Any, envelope: Any) -> None:
        message, undeliverable = self.unwrap(payload)
        if message is None:
            return
        if undeliverable:
            self._handle_undeliverable(message)
            return
        if message.kind == m.XACT and self.role == SLAVE_ROLE:
            self._handle_xact(message)
            return
        self.received.setdefault(message.kind, set()).add(message.sender)
        self._try_fire()

    def _handle_xact(self, message: ProtocolMessage) -> None:
        if self.state != self.automaton.initial:
            return
        vote = self.cast_vote()
        wanted = m.YES if vote == "yes" else m.NO
        for transition in self._transitions_from[self.state]:
            if transition.read.kind != m.XACT:
                continue
            if any(send.kind == wanted for send in transition.sends):
                self._fire(transition, reason=f"voted {vote}")
                return

    def _handle_undeliverable(self, message: ProtocolMessage) -> None:
        self.node.note(
            "undeliverable-received",
            transaction=self.transaction_id,
            kind=message.kind,
            state=self.state,
        )
        if self.augmentation is None or self.decided:
            return
        action = self.augmentation.undeliverable_action.get((self.role, self.state))
        if action is None:
            return
        decision = _final_action_to_decision(action)
        self.decide(decision, reason=f"undeliverable {message.kind} in {self.state}")
        if self.role == MASTER_ROLE:
            self.broadcast_decision(decision)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _arm_state_timer(self) -> None:
        if self.augmentation is None or self.decided:
            return
        if self.state in self._final_states:
            return
        duration = (
            self.ctx.timers.master_vote_timeout
            if self.role == MASTER_ROLE
            else self.ctx.timers.slave_timeout
        )
        self.node.set_timer(_STATE_TIMER, duration)

    def on_timeout(self, timer: Any) -> None:
        if timer.name != _STATE_TIMER or self.augmentation is None or self.decided:
            return
        action = self.augmentation.timeout_action.get((self.role, self.state))
        if action is None:
            return
        decision = _final_action_to_decision(action)
        self.decide(decision, reason=f"timeout in {self.state}")
        if self.role == MASTER_ROLE:
            self.broadcast_decision(decision)

    # ------------------------------------------------------------------
    # FSA execution
    # ------------------------------------------------------------------
    def _try_fire(self) -> None:
        if self.decided:
            return
        progressed = True
        while progressed and not self.decided:
            progressed = False
            for transition in self._transitions_from[self.state]:
                if self._satisfied(transition):
                    self._consume(transition)
                    self._fire(transition, reason=f"received {transition.read.kind}")
                    progressed = True
                    break

    def _satisfied(self, transition: Transition) -> bool:
        read = transition.read
        senders = self.received.get(read.kind, _NO_SENDERS)
        if read.source == MASTER:
            return self.ctx.master in senders
        if read.source == ANY_SLAVE:
            return any(sender != self.ctx.master for sender in senders)
        if read.source == EACH_SLAVE:
            expected = {s for s in self.ctx.slaves if s != self.site}
            return expected.issubset(senders)
        return False

    def _consume(self, transition: Transition) -> None:
        read = transition.read
        senders = self.received.get(read.kind, set())
        if read.source == MASTER:
            senders.discard(self.ctx.master)
        elif read.source == ANY_SLAVE:
            for sender in sorted(senders):
                if sender != self.ctx.master:
                    senders.discard(sender)
                    break
        elif read.source == EACH_SLAVE:
            for slave in self.ctx.slaves:
                senders.discard(slave)

    def _fire(self, transition: Transition, *, reason: str) -> None:
        if transition.read.kind in _PROMOTION_KINDS and self.role == SLAVE_ROLE:
            self.db.prepare(self.transaction_id, now=self.now)
        self._emit(transition)
        self.transition(transition.target, reason=reason)
        if transition.target in self.automaton.commit_states:
            self.decide(Decision.COMMIT, reason=reason)
        elif transition.target in self.automaton.abort_states:
            self.decide(Decision.ABORT, reason=reason)
        else:
            self._arm_state_timer()

    def _emit(self, transition: Transition) -> None:
        for send in transition.sends:
            payload = self.transaction if send.kind == m.XACT else None
            if send.target == MASTER:
                self.send(self.ctx.master, send.kind, payload)
            elif send.target == OPERATOR:
                continue
            else:  # all slaves
                self.broadcast(
                    [s for s in self.ctx.slaves if s != self.site], send.kind, payload
                )


class FSAProtocolDefinition:
    """A protocol definition backed by a formal spec (plus optional rules)."""

    def __init__(
        self,
        name: str,
        spec_factory,
        *,
        augment: bool = False,
    ) -> None:
        self.name = name
        self._spec_factory = spec_factory
        self._augment = augment
        self._augmentation_cache: dict[int, AugmentedProtocol] = {}
        self._spec: Optional[CommitProtocolSpec] = None

    @property
    def spec(self) -> CommitProtocolSpec:
        """The underlying formal specification."""
        if self._spec is None:
            self._spec = self._spec_factory()
        return self._spec

    def _augmentation_for(self, n_sites: int) -> Optional[AugmentedProtocol]:
        if not self._augment:
            return None
        if n_sites not in self._augmentation_cache:
            from repro.core.rules import augment_with_rules

            self._augmentation_cache[n_sites] = augment_with_rules(self.spec, n_sites)
        return self._augmentation_cache[n_sites]

    def coordinator(self, ctx: ProtocolContext) -> FSARole:
        """Build the master role for ``ctx``."""
        augmentation = self._augmentation_for(len(ctx.participants))
        return FSARole(ctx, self.spec, MASTER_ROLE, augmentation=augmentation)

    def participant(self, ctx: ProtocolContext) -> FSARole:
        """Build a slave role for ``ctx``."""
        augmentation = self._augmentation_for(len(ctx.participants))
        return FSARole(ctx, self.spec, SLAVE_ROLE, augmentation=augmentation)
