"""Name-based lookup of the executable protocols.

The registry is the pickling boundary of the sweep engine: tasks carry a
protocol *name*, never a protocol object, so chunks ship to worker
processes (and other machines) as plain data and each worker instantiates
its own roles via :func:`create_protocol`.

Invariants:

* Names are stable identifiers -- they key the result cache's spec hashes
  (renaming a protocol invalidates its cached sweeps, by design).
* :func:`available_protocols` enumerates in sorted name order, which fixes
  the protocol axis order of every ``--protocol all`` sweep.
* Every entry constructs a fresh, stateless-between-runs
  :class:`~repro.protocols.base.ProtocolDefinition`; registry lookups never
  share role state across scenarios.

The names cover the paper's protocol cast: 2PC (Fig. 1), extended 2PC
(Fig. 2), 3PC (Fig. 3), the naive extended 3PC of Section 3, the
terminating 3PC of Sections 5-6 (with and without the transient rule), and
quorum commit plain plus its Theorem 10 termination construction.
"""

from __future__ import annotations

from typing import Callable

from repro.protocols.base import ProtocolDefinition
from repro.protocols.extended_two_phase import ExtendedTwoPhaseCommit
from repro.protocols.quorum import QuorumCommit, TerminatingQuorumCommit
from repro.protocols.three_phase import ThreePhaseCommit
from repro.protocols.three_phase_naive import NaiveExtendedThreePhaseCommit
from repro.protocols.three_phase_terminating import TerminatingThreePhaseCommit
from repro.protocols.two_phase import TwoPhaseCommit

_REGISTRY: dict[str, Callable[[], ProtocolDefinition]] = {
    "two-phase-commit": TwoPhaseCommit,
    "extended-two-phase-commit": ExtendedTwoPhaseCommit,
    "three-phase-commit": ThreePhaseCommit,
    "naive-extended-three-phase-commit": NaiveExtendedThreePhaseCommit,
    "terminating-three-phase-commit": TerminatingThreePhaseCommit,
    "terminating-three-phase-commit-no-transient": lambda: TerminatingThreePhaseCommit(
        transient_rule=False, name="terminating-three-phase-commit-no-transient"
    ),
    "quorum-commit": QuorumCommit,
    "terminating-quorum-commit": TerminatingQuorumCommit,
}


def available_protocols() -> list[str]:
    """Names of every registered protocol."""
    return sorted(_REGISTRY)


def create_protocol(name: str) -> ProtocolDefinition:
    """Instantiate the protocol registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from exc
    return factory()
