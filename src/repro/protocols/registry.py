"""Name-based lookup of the executable protocols."""

from __future__ import annotations

from typing import Callable

from repro.protocols.base import ProtocolDefinition
from repro.protocols.extended_two_phase import ExtendedTwoPhaseCommit
from repro.protocols.quorum import QuorumCommit, TerminatingQuorumCommit
from repro.protocols.three_phase import ThreePhaseCommit
from repro.protocols.three_phase_naive import NaiveExtendedThreePhaseCommit
from repro.protocols.three_phase_terminating import TerminatingThreePhaseCommit
from repro.protocols.two_phase import TwoPhaseCommit

_REGISTRY: dict[str, Callable[[], ProtocolDefinition]] = {
    "two-phase-commit": TwoPhaseCommit,
    "extended-two-phase-commit": ExtendedTwoPhaseCommit,
    "three-phase-commit": ThreePhaseCommit,
    "naive-extended-three-phase-commit": NaiveExtendedThreePhaseCommit,
    "terminating-three-phase-commit": TerminatingThreePhaseCommit,
    "terminating-three-phase-commit-no-transient": lambda: TerminatingThreePhaseCommit(
        transient_rule=False, name="terminating-three-phase-commit-no-transient"
    ),
    "quorum-commit": QuorumCommit,
    "terminating-quorum-commit": TerminatingQuorumCommit,
}


def available_protocols() -> list[str]:
    """Names of every registered protocol."""
    return sorted(_REGISTRY)


def create_protocol(name: str) -> ProtocolDefinition:
    """Instantiate the protocol registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from exc
    return factory()
