"""The quorum-commit skeleton and its Theorem 10 termination construction.

:class:`QuorumCommit` runs the failure-free skeleton of Skeen's quorum-based
commit protocol (reference [5] of the paper) on the simulator; like plain
3PC it blocks under partitions.

:class:`TerminatingQuorumCommit` applies Theorem 10: because the protocol
satisfies the Lemma 1/2 conditions, the Section 5.3 termination protocol
carries over by substituting the protocol's own promotion message
(``pre-commit``) for 3PC's ``prepare``.  The promotion message is not
hard-coded -- it is discovered by
:func:`repro.core.generalize.derive_termination_plan`, which is the point of
the Theorem 10 experiment.
"""

from __future__ import annotations

from repro.core.catalog import quorum_commit
from repro.core.generalize import derive_termination_plan
from repro.protocols.base import ProtocolContext
from repro.protocols.fsa_role import FSAProtocolDefinition
from repro.protocols.three_phase_terminating import (
    TerminatingMasterRole,
    TerminatingSlaveRole,
)


class QuorumCommit(FSAProtocolDefinition):
    """Plain quorum-commit skeleton (no timeouts, blocks under partitions)."""

    def __init__(self) -> None:
        super().__init__("quorum-commit", quorum_commit, augment=False)


class TerminatingQuorumCommit:
    """Quorum-commit made partition-resilient via Theorem 10's construction."""

    def __init__(self, *, transient_rule: bool = True) -> None:
        self.name = "terminating-quorum-commit"
        self.transient_rule = transient_rule
        self._plan = derive_termination_plan(quorum_commit(), 3)

    @property
    def promotion_kind(self) -> str:
        """The message m selected by the generic construction (``pre-commit``)."""
        return self._plan.promotion_message

    def coordinator(self, ctx: ProtocolContext) -> TerminatingMasterRole:
        """Build the master role."""
        ctx.transient_rule = self.transient_rule
        return TerminatingMasterRole(ctx, promotion_kind=self.promotion_kind)

    def participant(self, ctx: ProtocolContext) -> TerminatingSlaveRole:
        """Build a slave role."""
        ctx.transient_rule = self.transient_rule
        return TerminatingSlaveRole(ctx, promotion_kind=self.promotion_kind)
