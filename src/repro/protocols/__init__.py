"""Executable commit protocols running on the simulator and database substrate.

Each protocol provides a coordinator (master) role and a participant (slave)
role that the scenario runner attaches to simulated sites:

* :mod:`repro.protocols.two_phase` -- plain 2PC (Fig. 1), blocking;
* :mod:`repro.protocols.extended_two_phase` -- 2PC augmented with the
  Rule (a)/(b) timeout and undeliverable-message transitions (Fig. 2);
* :mod:`repro.protocols.three_phase` -- plain 3PC (Fig. 3), blocking under
  partitions;
* :mod:`repro.protocols.three_phase_naive` -- 3PC augmented with Rule (a)/(b)
  only (the Section 3 negative result);
* :mod:`repro.protocols.three_phase_terminating` -- the paper's contribution:
  the modified 3PC (Fig. 8) plus the Section 5.3 termination protocol, with
  the optional Section 6 transient-partitioning rule;
* :mod:`repro.protocols.quorum` -- the quorum-commit skeleton, plain and with
  the Theorem 10 generic termination construction;
* :mod:`repro.protocols.runner` -- the scenario runner shared by tests,
  examples and benchmarks;
* :mod:`repro.protocols.registry` -- name-based protocol lookup.
"""

from repro.protocols.base import (
    Decision,
    ProtocolContext,
    ProtocolDefinition,
    ProtocolMessage,
    RoleBase,
)
from repro.protocols.extended_two_phase import ExtendedTwoPhaseCommit
from repro.protocols.quorum import QuorumCommit, TerminatingQuorumCommit
from repro.protocols.registry import available_protocols, create_protocol
from repro.protocols.runner import ScenarioSpec, TransactionRunResult, run_scenario
from repro.protocols.three_phase import ThreePhaseCommit
from repro.protocols.three_phase_naive import NaiveExtendedThreePhaseCommit
from repro.protocols.three_phase_terminating import TerminatingThreePhaseCommit
from repro.protocols.two_phase import TwoPhaseCommit

__all__ = [
    "Decision",
    "ExtendedTwoPhaseCommit",
    "NaiveExtendedThreePhaseCommit",
    "ProtocolContext",
    "ProtocolDefinition",
    "ProtocolMessage",
    "QuorumCommit",
    "RoleBase",
    "ScenarioSpec",
    "TerminatingQuorumCommit",
    "TerminatingThreePhaseCommit",
    "ThreePhaseCommit",
    "TransactionRunResult",
    "TwoPhaseCommit",
    "available_protocols",
    "create_protocol",
    "run_scenario",
]
