"""The two-phase commit protocol (Fig. 1), plain and blocking.

The master forwards the transaction, collects votes and broadcasts the
decision.  There are no timeout or undeliverable-message transitions: when a
partition (or master silence) strikes while the slaves are in their wait
state, they simply block, holding their locks -- the behaviour the paper's
introduction identifies as the reason to look for non-blocking protocols.
"""

from __future__ import annotations

from repro.core.catalog import two_phase_commit
from repro.protocols.fsa_role import FSAProtocolDefinition


class TwoPhaseCommit(FSAProtocolDefinition):
    """Plain centralized 2PC (no timeouts, no undeliverable handling)."""

    def __init__(self) -> None:
        super().__init__("two-phase-commit", two_phase_commit, augment=False)
