"""The three-phase commit protocol (Fig. 3), plain.

Skeen's non-blocking commit protocol: a buffering prepare phase between the
vote collection and the commit broadcast.  Without a termination protocol it
still blocks when the network partitions (the sites cannot tell what the
other side decided), which is the gap the paper fills.
"""

from __future__ import annotations

from repro.core.catalog import three_phase_commit
from repro.protocols.fsa_role import FSAProtocolDefinition


class ThreePhaseCommit(FSAProtocolDefinition):
    """Plain 3PC (no timeouts, no undeliverable handling)."""

    def __init__(self) -> None:
        super().__init__("three-phase-commit", three_phase_commit, augment=False)
