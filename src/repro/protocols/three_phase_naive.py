"""3PC augmented with Rule (a)/(b) only -- the Section 3 negative result.

Applying the two rules to the three-phase commit protocol assigns, in
particular, ``timeout(w_slave) -> abort`` and ``timeout(p_slave) -> commit``.
Section 3 exhibits a partition under which one slave times out in ``w`` and
aborts while another times out in ``p`` and commits; Lemma 3 then shows that
*no* augmentation by timeout and undeliverable-message transitions alone can
work.  This protocol exists so the experiments can reproduce that failure.
"""

from __future__ import annotations

from repro.core.catalog import three_phase_commit
from repro.protocols.fsa_role import FSAProtocolDefinition


class NaiveExtendedThreePhaseCommit(FSAProtocolDefinition):
    """3PC plus Rule (a)/(b) transitions (known-broken for multisite partitions)."""

    def __init__(self) -> None:
        super().__init__(
            "naive-extended-three-phase-commit", three_phase_commit, augment=True
        )
