"""Shared machinery for the timed commit-protocol roles.

A *role* is the protocol logic attached to one simulated site for one
transaction.  Roles are built from a :class:`ProtocolContext` (node, database
site, transaction, timers, scenario knobs) by a :class:`ProtocolDefinition`.
The :class:`RoleBase` class provides the behaviour every role shares:
recording state transitions, reaching (at most one) local decision, applying
it to the database site, and broadcasting decisions when asked to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterable, Optional, Protocol as TypingProtocol

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.db.transactions import Transaction
from repro.sim.network import Undeliverable
from repro.sim.node import Node


class Decision(enum.Enum):
    """A site's local termination decision."""

    COMMIT = "commit"
    ABORT = "abort"


class ProtocolMessage:
    """A commit-protocol message exchanged between sites.

    A ``__slots__`` record (one is allocated per send, which makes this the
    most-constructed protocol object in a sweep).

    Attributes:
        kind: message kind (see :mod:`repro.core.messages`).
        transaction_id: the transaction this message belongs to.
        sender: sending site.
        payload: optional extra content (the transaction for ``xact``
            messages, the probing slave's id for ``probe`` messages, ...).
    """

    __slots__ = ("kind", "transaction_id", "sender", "payload")

    def __init__(
        self,
        kind: str,
        transaction_id: str,
        sender: int,
        payload: Any = None,
    ) -> None:
        self.kind = kind
        self.transaction_id = transaction_id
        self.sender = sender
        self.payload = payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProtocolMessage):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.transaction_id == other.transaction_id
            and self.sender == other.sender
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.transaction_id, self.sender))

    def __str__(self) -> str:
        return f"{self.kind}({self.transaction_id})@{self.sender}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProtocolMessage(kind={self.kind!r}, "
            f"transaction_id={self.transaction_id!r}, sender={self.sender}, "
            f"payload={self.payload!r})"
        )


@dataclass
class ProtocolContext:
    """Everything a role needs about its environment.

    Attributes:
        node: the simulated site the role runs on.
        db: the site's database machinery.
        transaction: the transaction being committed.
        participants: all participating sites (master included).
        master: the coordinating site.
        timers: the timeout structure (multiples of ``T``).
        no_voters: sites scripted to vote "no" (scenario knob).
        transient_rule: whether the Section 6 transient-partitioning rule is
            active for terminating protocols.
    """

    node: Node
    db: DatabaseSite
    transaction: Transaction
    participants: tuple[int, ...]
    master: int
    timers: TerminationTimers
    no_voters: frozenset[int] = frozenset()
    transient_rule: bool = True

    @property
    def site(self) -> int:
        """The site this context belongs to."""
        return self.node.node_id

    @cached_property
    def slaves(self) -> tuple[int, ...]:
        """Participants other than the master (cached; both are immutable)."""
        return tuple(s for s in self.participants if s != self.master)

    @cached_property
    def others(self) -> tuple[int, ...]:
        """Participants other than this site (cached; both are immutable)."""
        return tuple(s for s in self.participants if s != self.site)

    @property
    def max_delay(self) -> float:
        """The paper's ``T``."""
        return self.timers.max_delay

    @property
    def is_master(self) -> bool:
        """True when this context belongs to the coordinating site."""
        return self.site == self.master


class RoleBase:
    """Common behaviour of all coordinator / participant roles."""

    def __init__(self, ctx: ProtocolContext, *, initial_state: str) -> None:
        self.ctx = ctx
        self.node = ctx.node
        self.db = ctx.db
        # Hot identity lookups, resolved once: the property chains
        # (ctx.node.node_id, ctx.transaction.transaction_id, node.sim) are
        # walked on every message/transition otherwise.
        self.site = ctx.node.node_id
        self.transaction_id = ctx.transaction.transaction_id
        self._sim = ctx.node.sim
        # Mirrors Node._tracing: skips building the note() kwargs entirely
        # on the engine's trace-free path.
        self._tracing = ctx.node._tracing
        self.state = initial_state
        self.decision: Optional[Decision] = None
        self.decided_at: Optional[float] = None
        self.vote: Optional[str] = None
        self.conflicting_decisions = 0
        #: Observers called once, with (role, decision), when the role
        #: reaches its first (and only effective) local decision.  The
        #: concurrent-transaction scheduler uses this to track completion
        #: without polling; single-transaction runs leave it empty.
        self.decision_listeners: list[Any] = []
        self.node.attach(self)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def transaction(self) -> Transaction:
        """The transaction being terminated."""
        return self.ctx.transaction

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._sim.clock._now

    @property
    def decided(self) -> bool:
        """True once this site has reached its local decision."""
        return self.decision is not None

    # ------------------------------------------------------------------
    # state transitions and decisions
    # ------------------------------------------------------------------
    def transition(self, new_state: str, *, reason: str = "") -> None:
        """Move to ``new_state`` and record it in the trace."""
        previous = self.state
        self.state = new_state
        if self._tracing:
            self.node.note(
                "transition",
                transaction=self.transaction_id,
                source=previous,
                target=new_state,
                reason=reason,
            )

    def decide(self, decision: Decision, *, reason: str = "") -> None:
        """Reach the local decision ``decision`` (idempotent, first one wins).

        A second, *different* decision is recorded as a conflicting-decision
        trace event and otherwise ignored; the atomicity checker works from
        each site's first decision, and the cross-site inconsistency is what
        the negative experiments measure.
        """
        if self.decision is not None:
            if self.decision is not decision:
                self.conflicting_decisions += 1
                if self._tracing:
                    self.node.note(
                        "conflicting-decision",
                        transaction=self.transaction_id,
                        first=self.decision.value,
                        second=decision.value,
                        reason=reason,
                    )
            return
        self.decision = decision
        self.decided_at = self.now
        if decision is Decision.COMMIT:
            self.db.commit(self.transaction_id, now=self.now)
        else:
            self.db.abort(self.transaction_id, now=self.now)
        self.node.cancel_all_timers()
        if self._tracing:
            self.node.note(
                "decision",
                transaction=self.transaction_id,
                outcome=decision.value,
                state=self.state,
                reason=reason,
            )
        for listener in list(self.decision_listeners):
            listener(self, decision)

    # ------------------------------------------------------------------
    # voting
    # ------------------------------------------------------------------
    def cast_vote(self) -> str:
        """Execute the transaction locally and produce this site's vote."""
        if self.site in self.ctx.no_voters:
            self.vote = "no"
            if self._tracing:
                self.node.note("vote", transaction=self.transaction_id, vote="no", forced=True)
            return "no"
        self.vote = self.db.execute(self.transaction, now=self.now)
        if self._tracing:
            self.node.note("vote", transaction=self.transaction_id, vote=self.vote, forced=False)
        return self.vote

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------
    def send(self, destination: int, kind: str, payload: Any = None) -> None:
        """Send a protocol message to ``destination``."""
        self.node.send(
            destination, ProtocolMessage(kind, self.transaction_id, self.site, payload)
        )

    def broadcast(self, destinations: Iterable[int], kind: str, payload: Any = None) -> None:
        """Send the same protocol message to several sites."""
        for destination in destinations:
            self.send(destination, kind, payload)

    def broadcast_decision(self, decision: Decision) -> None:
        """Send the final decision to every other participant."""
        kind = "commit" if decision is Decision.COMMIT else "abort"
        self.broadcast(self.ctx.others, kind)

    # ------------------------------------------------------------------
    # default hooks (overridden by concrete roles)
    # ------------------------------------------------------------------
    def on_start(self) -> None:  # pragma: no cover - overridden
        """Hook invoked when the simulation starts."""

    def on_message(self, payload: Any, envelope: Any) -> None:  # pragma: no cover
        """Hook invoked for every delivery (including bounces)."""

    def on_timeout(self, timer: Any) -> None:  # pragma: no cover
        """Hook invoked when one of the site's timers fires."""

    # ------------------------------------------------------------------
    # payload helpers
    # ------------------------------------------------------------------
    @staticmethod
    def is_undeliverable(payload: Any) -> bool:
        """True when ``payload`` is a bounced message."""
        return isinstance(payload, Undeliverable)

    def unwrap(self, payload: Any) -> tuple[Optional[ProtocolMessage], bool]:
        """Return ``(protocol message, was_undeliverable)`` for a delivery.

        Messages belonging to other transactions return ``(None, ...)`` and
        are ignored by the roles.
        """
        # Exact-type fast paths first; the isinstance fallbacks keep
        # subclasses working.
        tp = type(payload)
        undeliverable = tp is Undeliverable or (
            tp is not ProtocolMessage and isinstance(payload, Undeliverable)
        )
        inner = payload.payload if undeliverable else payload
        if type(inner) is not ProtocolMessage and not isinstance(inner, ProtocolMessage):
            return None, undeliverable
        if inner.transaction_id != self.transaction_id:
            return None, undeliverable
        return inner, undeliverable


class ProtocolDefinition(TypingProtocol):
    """Factory interface every protocol module implements."""

    name: str

    def coordinator(self, ctx: ProtocolContext) -> RoleBase:  # pragma: no cover
        """Build the master role."""

    def participant(self, ctx: ProtocolContext) -> RoleBase:  # pragma: no cover
        """Build a slave role."""
