"""Shared machinery for the timed commit-protocol roles.

A *role* is the protocol logic attached to one simulated site for one
transaction.  Roles are built from a :class:`ProtocolContext` (node, database
site, transaction, timers, scenario knobs) by a :class:`ProtocolDefinition`.
The :class:`RoleBase` class provides the behaviour every role shares:
recording state transitions, reaching (at most one) local decision, applying
it to the database site, and broadcasting decisions when asked to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Protocol as TypingProtocol

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.db.transactions import Transaction
from repro.sim.network import Undeliverable
from repro.sim.node import Node


class Decision(enum.Enum):
    """A site's local termination decision."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class ProtocolMessage:
    """A commit-protocol message exchanged between sites.

    Attributes:
        kind: message kind (see :mod:`repro.core.messages`).
        transaction_id: the transaction this message belongs to.
        sender: sending site.
        payload: optional extra content (the transaction for ``xact``
            messages, the probing slave's id for ``probe`` messages, ...).
    """

    kind: str
    transaction_id: str
    sender: int
    payload: Any = None

    def __str__(self) -> str:
        return f"{self.kind}({self.transaction_id})@{self.sender}"


@dataclass
class ProtocolContext:
    """Everything a role needs about its environment.

    Attributes:
        node: the simulated site the role runs on.
        db: the site's database machinery.
        transaction: the transaction being committed.
        participants: all participating sites (master included).
        master: the coordinating site.
        timers: the timeout structure (multiples of ``T``).
        no_voters: sites scripted to vote "no" (scenario knob).
        transient_rule: whether the Section 6 transient-partitioning rule is
            active for terminating protocols.
    """

    node: Node
    db: DatabaseSite
    transaction: Transaction
    participants: tuple[int, ...]
    master: int
    timers: TerminationTimers
    no_voters: frozenset[int] = frozenset()
    transient_rule: bool = True

    @property
    def site(self) -> int:
        """The site this context belongs to."""
        return self.node.node_id

    @property
    def slaves(self) -> tuple[int, ...]:
        """Participants other than the master."""
        return tuple(s for s in self.participants if s != self.master)

    @property
    def others(self) -> tuple[int, ...]:
        """Participants other than this site."""
        return tuple(s for s in self.participants if s != self.site)

    @property
    def max_delay(self) -> float:
        """The paper's ``T``."""
        return self.timers.max_delay

    @property
    def is_master(self) -> bool:
        """True when this context belongs to the coordinating site."""
        return self.site == self.master


class RoleBase:
    """Common behaviour of all coordinator / participant roles."""

    def __init__(self, ctx: ProtocolContext, *, initial_state: str) -> None:
        self.ctx = ctx
        self.node = ctx.node
        self.db = ctx.db
        self.state = initial_state
        self.decision: Optional[Decision] = None
        self.decided_at: Optional[float] = None
        self.vote: Optional[str] = None
        self.conflicting_decisions = 0
        #: Observers called once, with (role, decision), when the role
        #: reaches its first (and only effective) local decision.  The
        #: concurrent-transaction scheduler uses this to track completion
        #: without polling; single-transaction runs leave it empty.
        self.decision_listeners: list[Any] = []
        self.node.attach(self)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def site(self) -> int:
        """The site this role runs on."""
        return self.ctx.site

    @property
    def transaction(self) -> Transaction:
        """The transaction being terminated."""
        return self.ctx.transaction

    @property
    def transaction_id(self) -> str:
        """Shortcut for the transaction id."""
        return self.ctx.transaction.transaction_id

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.node.sim.now

    @property
    def decided(self) -> bool:
        """True once this site has reached its local decision."""
        return self.decision is not None

    # ------------------------------------------------------------------
    # state transitions and decisions
    # ------------------------------------------------------------------
    def transition(self, new_state: str, *, reason: str = "") -> None:
        """Move to ``new_state`` and record it in the trace."""
        previous = self.state
        self.state = new_state
        self.node.note(
            "transition",
            transaction=self.transaction_id,
            source=previous,
            target=new_state,
            reason=reason,
        )

    def decide(self, decision: Decision, *, reason: str = "") -> None:
        """Reach the local decision ``decision`` (idempotent, first one wins).

        A second, *different* decision is recorded as a conflicting-decision
        trace event and otherwise ignored; the atomicity checker works from
        each site's first decision, and the cross-site inconsistency is what
        the negative experiments measure.
        """
        if self.decision is not None:
            if self.decision is not decision:
                self.conflicting_decisions += 1
                self.node.note(
                    "conflicting-decision",
                    transaction=self.transaction_id,
                    first=self.decision.value,
                    second=decision.value,
                    reason=reason,
                )
            return
        self.decision = decision
        self.decided_at = self.now
        if decision is Decision.COMMIT:
            self.db.commit(self.transaction_id, now=self.now)
        else:
            self.db.abort(self.transaction_id, now=self.now)
        self.node.cancel_all_timers()
        self.node.note(
            "decision",
            transaction=self.transaction_id,
            outcome=decision.value,
            state=self.state,
            reason=reason,
        )
        for listener in list(self.decision_listeners):
            listener(self, decision)

    # ------------------------------------------------------------------
    # voting
    # ------------------------------------------------------------------
    def cast_vote(self) -> str:
        """Execute the transaction locally and produce this site's vote."""
        if self.site in self.ctx.no_voters:
            self.vote = "no"
            self.node.note("vote", transaction=self.transaction_id, vote="no", forced=True)
            return "no"
        self.vote = self.db.execute(self.transaction, now=self.now)
        self.node.note("vote", transaction=self.transaction_id, vote=self.vote, forced=False)
        return self.vote

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------
    def send(self, destination: int, kind: str, payload: Any = None) -> None:
        """Send a protocol message to ``destination``."""
        message = ProtocolMessage(
            kind=kind, transaction_id=self.transaction_id, sender=self.site, payload=payload
        )
        self.node.send(destination, message)

    def broadcast(self, destinations: Iterable[int], kind: str, payload: Any = None) -> None:
        """Send the same protocol message to several sites."""
        for destination in destinations:
            self.send(destination, kind, payload)

    def broadcast_decision(self, decision: Decision) -> None:
        """Send the final decision to every other participant."""
        kind = "commit" if decision is Decision.COMMIT else "abort"
        self.broadcast(self.ctx.others, kind)

    # ------------------------------------------------------------------
    # default hooks (overridden by concrete roles)
    # ------------------------------------------------------------------
    def on_start(self) -> None:  # pragma: no cover - overridden
        """Hook invoked when the simulation starts."""

    def on_message(self, payload: Any, envelope: Any) -> None:  # pragma: no cover
        """Hook invoked for every delivery (including bounces)."""

    def on_timeout(self, timer: Any) -> None:  # pragma: no cover
        """Hook invoked when one of the site's timers fires."""

    # ------------------------------------------------------------------
    # payload helpers
    # ------------------------------------------------------------------
    @staticmethod
    def is_undeliverable(payload: Any) -> bool:
        """True when ``payload`` is a bounced message."""
        return isinstance(payload, Undeliverable)

    def unwrap(self, payload: Any) -> tuple[Optional[ProtocolMessage], bool]:
        """Return ``(protocol message, was_undeliverable)`` for a delivery.

        Messages belonging to other transactions return ``(None, ...)`` and
        are ignored by the roles.
        """
        undeliverable = isinstance(payload, Undeliverable)
        inner = payload.payload if undeliverable else payload
        if not isinstance(inner, ProtocolMessage):
            return None, undeliverable
        if inner.transaction_id != self.transaction_id:
            return None, undeliverable
        return inner, undeliverable


class ProtocolDefinition(TypingProtocol):
    """Factory interface every protocol module implements."""

    name: str

    def coordinator(self, ctx: ProtocolContext) -> RoleBase:  # pragma: no cover
        """Build the master role."""

    def participant(self, ctx: ProtocolContext) -> RoleBase:  # pragma: no cover
        """Build a slave role."""
