"""The extended two-phase commit protocol (Fig. 2).

The 2PC automaton augmented with the timeout and undeliverable-message
transitions produced by Rule (a) and Rule (b).  Skeen & Stonebraker proved
the construction resilient for *two-site* simple partitioning with return of
undeliverable messages; Section 3 of the paper (and experiment ``SEC3A``)
shows it is not resilient once more than two sites participate.

The augmentation is not hard-coded: it is derived mechanically from the
concurrency and sender sets of the 2PC specification by
:func:`repro.core.rules.augment_with_rules`, exactly as the rules prescribe.
"""

from __future__ import annotations

from repro.core.catalog import two_phase_commit
from repro.protocols.fsa_role import FSAProtocolDefinition


class ExtendedTwoPhaseCommit(FSAProtocolDefinition):
    """2PC plus the Rule (a)/(b) timeout and undeliverable transitions."""

    def __init__(self) -> None:
        super().__init__("extended-two-phase-commit", two_phase_commit, augment=True)
