"""Byzantine participants: equivocation and arbitrary protocol transitions.

The fault taxonomy's strongest class: a Byzantine site does not merely stop
or lose messages, it actively lies.  Misbehaviour is injected at the role
layer -- a send interceptor installed on the site's
:class:`~repro.sim.node.Node` rewrites outgoing
:class:`~repro.protocols.base.ProtocolMessage` records before they enter the
network -- so the network's delivery semantics (partitions, bounces,
latency, the fault layer) apply to the forged traffic exactly as to honest
traffic.

Two modes, selected by :class:`~repro.sim.failures.ByzantineSpec`:

* ``"equivocate"`` -- the site tells different peers different things.
  Every flippable message kind (vote, decision, pre-commit) alternates
  between the honest kind and its negation across successive destinations:
  a Byzantine master broadcasting its decision sends ``commit`` to one
  slave and ``abort`` to the next, the classic atomicity attack.
* ``"arbitrary"`` -- a seeded RNG drives every outgoing message through
  drop / kind-rewrite / pass-through, modelling a site whose finite-state
  automaton takes arbitrary transitions.

Run verdicts are computed over *honest* sites only (a liar's own "decision"
carries no meaning); see
:class:`~repro.protocols.runner.TransactionRunResult`.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.core import messages as M
from repro.protocols.base import ProtocolMessage
from repro.sim.failures import EQUIVOCATE, ByzantineSpec

#: Message kinds with a meaningful negation, and that negation.
FLIPPABLE = {
    M.YES: M.NO,
    M.NO: M.YES,
    M.COMMIT: M.ABORT,
    M.ABORT: M.COMMIT,
    M.PRE_COMMIT: M.PRE_ABORT,
    M.PRE_ABORT: M.PRE_COMMIT,
}

#: Kinds an "arbitrary" site may rewrite an outgoing message into.  ``xact``
#: is deliberately absent: it carries the transaction object as payload and
#: a forged one without it would crash the receiving role rather than
#: confuse the protocol.
ARBITRARY_KINDS = (
    M.YES,
    M.NO,
    M.ACK,
    M.COMMIT,
    M.ABORT,
    M.PROBE,
    M.PRE_COMMIT,
    M.PRE_ABORT,
)


class ByzantineInterceptor:
    """A send interceptor implementing one :class:`ByzantineSpec`.

    Installed as ``node._send_interceptor``; called with
    ``(source, destination, payload)`` for every outgoing message and
    returns the payload to actually send (``None`` swallows the send).
    Non-protocol payloads pass through untouched.
    """

    def __init__(self, spec: ByzantineSpec, *, seed: int = 0) -> None:
        self.spec = spec
        self._rng = random.Random(f"byzantine:{spec.site}:{spec.mode}:{seed}")
        self._flip_counts: dict[tuple[str, str], int] = {}

    def __call__(
        self, source: int, destination: int, payload: Any
    ) -> Optional[Any]:
        if type(payload) is not ProtocolMessage and not isinstance(
            payload, ProtocolMessage
        ):
            return payload
        if self.spec.mode == EQUIVOCATE:
            return self._equivocate(payload)
        return self._arbitrary(payload)

    def _equivocate(self, message: ProtocolMessage) -> ProtocolMessage:
        flipped = FLIPPABLE.get(message.kind)
        if flipped is None:
            return message
        key = (message.transaction_id, message.kind)
        count = self._flip_counts.get(key, 0)
        self._flip_counts[key] = count + 1
        if count % 2 == 0:
            # Every other peer is told the truth; the rest, its negation.
            return message
        return ProtocolMessage(
            flipped, message.transaction_id, message.sender, message.payload
        )

    def _arbitrary(self, message: ProtocolMessage) -> Optional[ProtocolMessage]:
        roll = self._rng.random()
        if roll < 0.25:
            return None
        if roll < 0.6:
            kind = ARBITRARY_KINDS[self._rng.randrange(len(ARBITRARY_KINDS))]
            if kind == message.kind:
                return message
            # Probe handlers read the prober's site id from the payload;
            # everything else forged carries no payload.
            payload = message.sender if kind == M.PROBE else None
            return ProtocolMessage(
                kind, message.transaction_id, message.sender, payload
            )
        return message


def install_byzantine_interceptors(cluster, plan, *, seed: Optional[int] = None) -> None:
    """Attach one interceptor per Byzantine site named by ``plan``.

    ``seed`` defaults to the plan's own seed so a run is a function of
    ``(spec, seed)`` alone.
    """
    effective_seed = plan.seed if seed is None else seed
    for spec in plan.byzantine:
        node = cluster.nodes.get(spec.site)
        if node is None:
            raise ValueError(f"byzantine site {spec.site} is not part of the cluster")
        node._send_interceptor = ByzantineInterceptor(spec, seed=effective_seed)
