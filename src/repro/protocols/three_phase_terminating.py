"""The paper's contribution: 3PC + the Section 5.3 termination protocol.

The protocol is the modified three-phase commit protocol of Fig. 8 (slaves
accept a commit while still in ``w``) together with the termination actions
of Section 5.3:

Master (site 1)
    * ``w1`` -- timeout or UD(xact): send ``abort`` to everyone and abort.
    * ``p1`` -- timeout: send ``commit`` to everyone and commit;
      UD(prepare_i): start a ``5T`` probe-collection window, accumulate the
      sets ``UD`` (slaves whose prepare bounced) and ``PB`` (slaves that
      probed); when the window closes, abort if ``N - UD = PB`` else commit
      (Lemma 4: the equality holds exactly when no prepare crossed the
      boundary).

Slave (site i)
    * ``w`` -- timeout: wait a further ``6T`` for a commit or abort, then
      abort; UD(yes_i): send ``abort`` to everyone and abort; a commit
      received while still in ``w`` is accepted (the Fig. 8 transition).
    * ``p`` -- timeout: probe the master and wait for an UD(probe) (meaning
      the slave is in ``G2`` and must lead it to commit), a commit or an
      abort; UD(ack_i): send ``commit`` to everyone and commit.  Under the
      Section 6 transient rule the slave additionally commits if it has
      waited ``5T`` after its timeout without hearing anything (only case
      3.2.2.2 can reach that point, and there every other site has
      committed).

The same roles, instantiated with ``pre-commit`` instead of ``prepare``,
give the Theorem 10 construction for the quorum-commit skeleton
(:class:`repro.protocols.quorum.TerminatingQuorumCommit`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core import messages as m
from repro.core.termination import MasterTerminationTracker, TerminationOutcome
from repro.protocols.base import Decision, ProtocolContext, ProtocolMessage, RoleBase
from repro.sim.network import Undeliverable

# Timer names used by the roles.
_PHASE = "phase-timeout"          # the commit protocol's own timeout (2T / 3T)
_PROBE_WINDOW = "probe-window"    # master: 5T collection window after UD(prepare)
_WAIT_IN_W = "wait-in-w"          # slave: 6T wait after timing out in w
_WAIT_IN_P = "wait-in-p"          # slave: 5T wait after timing out in p (Section 6)

# Protocol state names (the paper's q / w / p / c / a).
_Q, _W, _P, _C, _A = m.INITIAL, m.WAIT, m.PREPARED, m.COMMITTED, m.ABORTED


class TerminatingMasterRole(RoleBase):
    """The master's side of the modified 3PC plus termination protocol."""

    def __init__(
        self,
        ctx: ProtocolContext,
        *,
        promotion_kind: str = m.PREPARE,
        answer_late_probes: bool = False,
    ) -> None:
        self.promotion_kind = promotion_kind
        self.answer_late_probes = answer_late_probes
        self.yes_votes: set[int] = set()
        self.acks: set[int] = set()
        self.tracker: Optional[MasterTerminationTracker] = None
        super().__init__(ctx, initial_state=_Q)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        vote = self.cast_vote()
        if vote == "no":
            self._abort_everyone("master voted no")
            return
        self.broadcast(self.ctx.slaves, m.XACT, self.transaction)
        self.transition(_W, reason="transaction forwarded to slaves")
        self.node.set_timer(_PHASE, self.ctx.timers.master_vote_timeout)

    # ------------------------------------------------------------------
    # messages
    # ------------------------------------------------------------------
    def on_message(self, payload: Any, envelope: Any) -> None:
        message, undeliverable = self.unwrap(payload)
        if message is None:
            return
        if undeliverable:
            self._on_undeliverable(message, payload)
        else:
            self._on_protocol_message(message)

    def _on_undeliverable(self, message: ProtocolMessage, wrapper: Undeliverable) -> None:
        intended = wrapper.intended_destination
        if self._tracing:
            self.node.note(
                "undeliverable-received",
                transaction=self.transaction_id,
                kind=message.kind,
                intended=intended,
                state=self.state,
            )
        if self.decided:
            return
        if message.kind == m.XACT and self.state == _W:
            # w1 (2): the transaction never reached some slave; nobody can
            # have voted yes everywhere, abort the whole thing.
            self._abort_everyone(f"xact to site {intended} undeliverable")
        elif message.kind == self.promotion_kind and self.state == _P:
            self._on_undeliverable_prepare(intended)
        # Bounced commit / abort broadcasts need no action: the slaves in the
        # other partition terminate themselves via the termination protocol.

    def _on_undeliverable_prepare(self, slave: int) -> None:
        if self.tracker is None:
            # p1 (2): UD := {i}; PB := {}; reset timer 5T.
            self.tracker = MasterTerminationTracker(slaves=frozenset(self.ctx.slaves))
            self.tracker.open_window(slave)
            self.node.cancel_timer(_PHASE)
            self.node.set_timer(_PROBE_WINDOW, self.ctx.timers.probe_window)
            self.node.note(
                "probe-window-open",
                transaction=self.transaction_id,
                first_undeliverable=slave,
            )
        else:
            self.tracker.record_undeliverable(slave)

    def _on_protocol_message(self, message: ProtocolMessage) -> None:
        kind, sender = message.kind, message.sender
        if kind == m.YES and self.state == _W:
            self.yes_votes.add(sender)
            if self.yes_votes >= set(self.ctx.slaves):
                self._send_prepares()
        elif kind == m.NO and self.state == _W and not self.decided:
            self._abort_everyone(f"site {sender} voted no")
        elif kind == m.ACK and self.state == _P:
            self.acks.add(sender)
            window_open = self.tracker is not None and self.tracker.window_open
            if not window_open and self.acks >= set(self.ctx.slaves):
                self._commit_everyone("all acknowledgements received")
        elif kind == m.PROBE:
            self._on_probe(sender)
        elif kind == m.COMMIT and not self.decided:
            # A slave acting for its partition relayed a commit (only possible
            # after the network healed); adopt it.
            self.decide(Decision.COMMIT, reason=f"commit relayed by site {sender}")
        elif kind == m.ABORT and not self.decided:
            self.decide(Decision.ABORT, reason=f"abort relayed by site {sender}")

    def _on_probe(self, sender: int) -> None:
        if self.tracker is not None and self.tracker.window_open:
            self.tracker.record_probe(sender)
            return
        if self.decided and self.answer_late_probes:
            # Not part of the paper's protocol (Section 6 fixes case 3.2.2.2
            # with the slave-side 5T rule instead), but kept as an ablation:
            # answering late probes is the other way to terminate that case.
            kind = m.COMMIT if self.decision is Decision.COMMIT else m.ABORT
            self.send(sender, kind)
        else:
            self.node.note(
                "late-probe-ignored", transaction=self.transaction_id, prober=sender
            )

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def on_timeout(self, timer: Any) -> None:
        if self.decided:
            return
        if timer.name == _PHASE and self.state == _W:
            # w1 (1): no prepare was ever generated, G2 cannot commit.
            self._abort_everyone("timed out waiting for votes")
        elif timer.name == _PHASE and self.state == _P:
            # p1 (1): every prepare was delivered (no UD came back), so every
            # slave will eventually commit; commit G1.
            self._commit_everyone("timed out waiting for acknowledgements")
        elif timer.name == _PROBE_WINDOW and self.tracker is not None:
            decision = self.tracker.decide()
            self.node.note(
                "probe-window-closed",
                transaction=self.transaction_id,
                undeliverable=sorted(decision.undeliverable),
                probed=sorted(decision.probed),
                outcome=decision.outcome.value,
            )
            if decision.outcome is TerminationOutcome.ABORT:
                self._abort_everyone(decision.reason)
            else:
                self._commit_everyone(decision.reason)

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _send_prepares(self) -> None:
        self.db.prepare(self.transaction_id, now=self.now)
        self.broadcast(self.ctx.slaves, self.promotion_kind)
        self.transition(_P, reason="all votes are yes")
        self.node.set_timer(_PHASE, self.ctx.timers.master_vote_timeout)

    def _commit_everyone(self, reason: str) -> None:
        self.broadcast(self.ctx.slaves, m.COMMIT)
        self.transition(_C, reason=reason)
        self.decide(Decision.COMMIT, reason=reason)

    def _abort_everyone(self, reason: str) -> None:
        self.broadcast(self.ctx.slaves, m.ABORT)
        self.transition(_A, reason=reason)
        self.decide(Decision.ABORT, reason=reason)


class TerminatingSlaveRole(RoleBase):
    """A slave's side of the modified 3PC plus termination protocol."""

    def __init__(
        self,
        ctx: ProtocolContext,
        *,
        promotion_kind: str = m.PREPARE,
        relay_commit_in_w: bool = True,
    ) -> None:
        self.promotion_kind = promotion_kind
        self.relay_commit_in_w = relay_commit_in_w
        self.timed_out_in_w = False
        self.timed_out_in_p = False
        self.probed = False
        super().__init__(ctx, initial_state=_Q)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.node.set_timer(_PHASE, self.ctx.timers.slave_timeout)

    # ------------------------------------------------------------------
    # messages
    # ------------------------------------------------------------------
    def on_message(self, payload: Any, envelope: Any) -> None:
        message, undeliverable = self.unwrap(payload)
        if message is None:
            return
        if undeliverable:
            self._on_undeliverable(message)
        else:
            self._on_protocol_message(message)

    def _on_undeliverable(self, message: ProtocolMessage) -> None:
        if self._tracing:
            self.node.note(
                "undeliverable-received",
                transaction=self.transaction_id,
                kind=message.kind,
                state=self.state,
            )
        if self.decided:
            return
        if message.kind == m.YES and self.state == _W:
            # w_i (2): my yes never reached the master; the master cannot have
            # generated a prepare, so nobody will commit -- abort everyone.
            self.broadcast(self.ctx.others, m.ABORT)
            self.decide(Decision.ABORT, reason="own yes vote returned undeliverable")
        elif message.kind == m.ACK and self.state == _P:
            # p_i (2): my ack bounced, so I am in G2 and I have the prepare;
            # lead my partition to commit.
            self.broadcast(self.ctx.others, m.COMMIT)
            self.decide(Decision.COMMIT, reason="own ack returned undeliverable")
        elif message.kind == m.PROBE and self.state == _P:
            # p_i timeout handler: my probe bounced, so the master is on the
            # other side; I have the prepare, lead my partition to commit.
            self.broadcast(self.ctx.others, m.COMMIT)
            self.decide(Decision.COMMIT, reason="own probe returned undeliverable")
        # Bounced commit / abort relays need no action.

    def _on_protocol_message(self, message: ProtocolMessage) -> None:
        kind = message.kind
        if kind == m.XACT and self.state == _Q:
            self._on_xact()
        elif kind == self.promotion_kind and self.state == _W:
            self._on_prepare()
        elif kind == m.COMMIT:
            self._on_commit(message)
        elif kind == m.ABORT:
            self._on_abort(message)

    def _on_xact(self) -> None:
        vote = self.cast_vote()
        if vote == "yes":
            self.send(self.ctx.master, m.YES)
            self.transition(_W, reason="voted yes")
            self.node.set_timer(_PHASE, self.ctx.timers.slave_timeout)
        else:
            self.send(self.ctx.master, m.NO)
            self.transition(_A, reason="voted no")
            self.decide(Decision.ABORT, reason="unilateral abort")

    def _on_prepare(self) -> None:
        if self.timed_out_in_w:
            # The Section 5.3 actions after a timeout in w only react to a
            # commit, an abort or the 6T expiry; a late prepare cannot occur
            # under the paper's assumptions and is ignored defensively.
            self.node.note(
                "late-prepare-ignored", transaction=self.transaction_id, state=self.state
            )
            return
        self.db.prepare(self.transaction_id, now=self.now)
        self.send(self.ctx.master, m.ACK)
        self.transition(_P, reason="prepare received")
        self.node.set_timer(_PHASE, self.ctx.timers.slave_timeout)

    def _on_commit(self, message: ProtocolMessage) -> None:
        if self.decided:
            return
        if self.state == _P:
            self.transition(_C, reason="commit received")
            self.decide(Decision.COMMIT, reason=f"commit from site {message.sender}")
        elif self.state == _W:
            if not self.relay_commit_in_w:
                # Ablation of the Fig. 8 w -> c transition: the slave ignores a
                # commit relayed while it is still in w, reproducing the "fly
                # in the ointment" inconsistency of Section 5.3.
                self.node.note(
                    "relayed-commit-ignored", transaction=self.transaction_id, state=self.state
                )
                return
            self.transition(_C, reason="commit received while in w (Fig. 8 transition)")
            self.decide(Decision.COMMIT, reason=f"commit from site {message.sender}")

    def _on_abort(self, message: ProtocolMessage) -> None:
        if self.decided:
            return
        self.transition(_A, reason="abort received")
        self.decide(Decision.ABORT, reason=f"abort from site {message.sender}")

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def on_timeout(self, timer: Any) -> None:
        if self.decided:
            return
        if timer.name == _PHASE:
            self._on_phase_timeout()
        elif timer.name == _WAIT_IN_W and self.state == _W:
            # w_i (1): waited a further 6T without a commit or abort -- abort.
            self.decide(Decision.ABORT, reason="no decision within 6T of timing out in w")
        elif timer.name == _WAIT_IN_P and self.state == _P:
            # Section 6: only case (3.2.2.2) can leave a slave waiting longer
            # than 5T, and in that case everyone else has committed.
            self.decide(Decision.COMMIT, reason="transient rule: waited 5T after probing")

    def _on_phase_timeout(self) -> None:
        if self.state == _Q:
            self.decide(Decision.ABORT, reason="transaction never arrived")
        elif self.state == _W:
            # w_i (1): wait a further 6T for a commit or an abort.
            self.timed_out_in_w = True
            self.node.set_timer(_WAIT_IN_W, self.ctx.timers.wait_in_w)
            if self._tracing:
                self.node.note("timed-out-in-w", transaction=self.transaction_id)
        elif self.state == _P:
            # p_i (1): probe the master and wait.
            self.timed_out_in_p = True
            self.probed = True
            self.send(self.ctx.master, m.PROBE, self.site)
            if self._tracing:
                self.node.note("timed-out-in-p", transaction=self.transaction_id)
            if self.ctx.transient_rule:
                self.node.set_timer(_WAIT_IN_P, self.ctx.timers.wait_in_p)


class TerminatingThreePhaseCommit:
    """Protocol definition: modified 3PC + the Section 5.3 termination protocol.

    Args:
        transient_rule: apply the Section 6 rule (commit after waiting ``5T``
            in ``p``); switch off to obtain the Section 5 protocol, which is
            only correct for permanent partitions.
        relay_commit_in_w: keep the Fig. 8 ``w -> c`` transition; switching it
            off reproduces the inconsistency that motivated the modification
            (ablation experiment).
        promotion_kind: the message m of Theorem 10 (``prepare`` for 3PC).
    """

    def __init__(
        self,
        *,
        transient_rule: bool = True,
        relay_commit_in_w: bool = True,
        answer_late_probes: bool = False,
        promotion_kind: str = m.PREPARE,
        name: str = "terminating-three-phase-commit",
    ) -> None:
        self.name = name
        self.transient_rule = transient_rule
        self.relay_commit_in_w = relay_commit_in_w
        self.answer_late_probes = answer_late_probes
        self.promotion_kind = promotion_kind

    def coordinator(self, ctx: ProtocolContext) -> TerminatingMasterRole:
        """Build the master role."""
        ctx.transient_rule = self.transient_rule
        return TerminatingMasterRole(
            ctx,
            promotion_kind=self.promotion_kind,
            answer_late_probes=self.answer_late_probes,
        )

    def participant(self, ctx: ProtocolContext) -> TerminatingSlaveRole:
        """Build a slave role."""
        ctx.transient_rule = self.transient_rule
        return TerminatingSlaveRole(
            ctx,
            promotion_kind=self.promotion_kind,
            relay_commit_in_w=self.relay_commit_in_w,
        )
