"""Compact, picklable per-run records streamed back by the sweep engine.

A :class:`RunSummary` carries everything the experiments and analyses read
from a run -- decisions, votes, timing, lock retention, message counts and
any in-worker trace measurements -- but none of the heavyweight state
(trace, database sites, role objects), so it crosses process boundaries and
serializes to canonical JSON for the on-disk cache.

The verdict API (:attr:`committed_sites`, :attr:`blocked`,
:attr:`consistent`, ...) mirrors
:class:`~repro.protocols.runner.TransactionRunResult`, so
:func:`~repro.analysis.atomicity.summarize_runs` and
:func:`~repro.analysis.blocking.blocking_report` accept either type.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.canonical import canonical_json_bytes
from repro.engine.registry import kind_for_payload
from repro.protocols.runner import TransactionRunResult


def summary_from_json_dict(payload: Mapping[str, Any]):
    """Rebuild whichever summary record ``payload`` encodes.

    The payload's ``kind`` tag selects a registered spec kind
    (:mod:`repro.engine.registry`) whose codec decodes it; untagged
    payloads are the scenario kind's legacy format.  The result cache and
    :func:`~repro.engine.sink.read_jsonl` both load through this function,
    so every engine surface round-trips every registered record type --
    including kinds registered after this module was imported.
    """
    return kind_for_payload(payload).decode(payload)


def summary_from_json_bytes(data: bytes):
    """Byte-level counterpart of :func:`summary_from_json_dict`."""
    return summary_from_json_dict(json.loads(data.decode("utf-8")))


@dataclass
class RunSummary:
    """The outcome of one scenario run, reduced to plain picklable data."""

    protocol: str
    spec_hash: str
    seed: int
    n_sites: int
    decisions: dict[int, Optional[str]] = field(default_factory=dict)
    decision_times: dict[int, Optional[float]] = field(default_factory=dict)
    votes: dict[int, Optional[str]] = field(default_factory=dict)
    states: dict[int, str] = field(default_factory=dict)
    conflicting_decisions: int = 0
    locks_held_at_end: dict[int, bool] = field(default_factory=dict)
    stores_agree: bool = True
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_bounced: int = 0
    messages_dropped: int = 0
    finished_at: float = 0.0
    lock_hold_time: float = 0.0
    max_delay: float = 1.0
    metrics: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: TransactionRunResult,
        *,
        spec_hash: str,
        metrics: Optional[Mapping[str, Any]] = None,
    ) -> "RunSummary":
        """Reduce a full :class:`TransactionRunResult` to a summary."""
        from repro.analysis.blocking import total_lock_hold_time

        return cls(
            protocol=result.protocol,
            spec_hash=spec_hash,
            seed=result.spec.seed,
            n_sites=result.spec.n_sites,
            decisions=dict(sorted(result.decisions.items())),
            decision_times=dict(sorted(result.decision_times.items())),
            votes=dict(sorted(result.votes.items())),
            states=dict(sorted(result.states.items())),
            conflicting_decisions=sum(result.conflicting_decisions.values()),
            locks_held_at_end=dict(sorted(result.locks_held_at_end.items())),
            stores_agree=result.stores_agree,
            messages_sent=result.messages_sent,
            messages_delivered=result.messages_delivered,
            messages_bounced=result.messages_bounced,
            messages_dropped=result.messages_dropped,
            finished_at=result.finished_at,
            lock_hold_time=total_lock_hold_time(result),
            max_delay=result.spec.effective_latency().upper_bound,
            metrics=dict(metrics or {}),
        )

    # ------------------------------------------------------------------
    # verdicts (mirrors TransactionRunResult)
    # ------------------------------------------------------------------
    @property
    def participants(self) -> tuple[int, ...]:
        """The sites that took part in the run."""
        return tuple(sorted(self.decisions))

    @property
    def committed_sites(self) -> tuple[int, ...]:
        """Sites whose local decision was commit."""
        return tuple(s for s, d in sorted(self.decisions.items()) if d == "commit")

    @property
    def aborted_sites(self) -> tuple[int, ...]:
        """Sites whose local decision was abort."""
        return tuple(s for s, d in sorted(self.decisions.items()) if d == "abort")

    @property
    def undecided_sites(self) -> tuple[int, ...]:
        """Sites with no decision when the run ended."""
        return tuple(s for s, d in sorted(self.decisions.items()) if d is None)

    @property
    def blocked_sites(self) -> tuple[int, ...]:
        """Alias for :attr:`undecided_sites`."""
        return self.undecided_sites

    @property
    def atomicity_violated(self) -> bool:
        """True when some site committed while another aborted."""
        return bool(self.committed_sites) and bool(self.aborted_sites)

    @property
    def blocked(self) -> bool:
        """True when at least one site never terminated the transaction."""
        return bool(self.undecided_sites)

    @property
    def all_committed(self) -> bool:
        """True when every participant committed."""
        return len(self.committed_sites) == len(self.participants)

    @property
    def all_aborted(self) -> bool:
        """True when every participant aborted."""
        return len(self.aborted_sites) == len(self.participants)

    @property
    def consistent(self) -> bool:
        """Atomicity holds and nobody is blocked (Theorem 9's property)."""
        return not self.atomicity_violated and not self.blocked

    @property
    def verdict(self) -> str:
        """The run's verdict class: ``violated``, ``blocked`` or ``consistent``.

        Violation dominates blocking: a run that both mixed outcomes and left
        a site undecided is classed ``violated`` (the stronger failure).
        """
        if self.atomicity_violated:
            return "violated"
        if self.blocked:
            return "blocked"
        return "consistent"

    def decision_latency(self, site: int) -> Optional[float]:
        """Time from submission (t = 0) to the site's decision."""
        return self.decision_times.get(site)

    def max_decision_latency(self) -> Optional[float]:
        """Largest decision latency among decided sites."""
        times = [t for t in self.decision_times.values() if t is not None]
        return max(times) if times else None

    def summary(self) -> str:
        """One-line human-readable outcome."""
        verdict = "ATOMICITY VIOLATED" if self.atomicity_violated else (
            "blocked" if self.blocked else "consistent"
        )
        return (
            f"{self.protocol}: commit={list(self.committed_sites)} "
            f"abort={list(self.aborted_sites)} undecided={list(self.undecided_sites)} "
            f"[{verdict}]"
        )

    # ------------------------------------------------------------------
    # canonical JSON (for the on-disk cache)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; site-keyed mappings get string keys."""
        payload = {
            "protocol": self.protocol,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "n_sites": self.n_sites,
            "decisions": {str(k): v for k, v in sorted(self.decisions.items())},
            "decision_times": {str(k): v for k, v in sorted(self.decision_times.items())},
            "votes": {str(k): v for k, v in sorted(self.votes.items())},
            "states": {str(k): v for k, v in sorted(self.states.items())},
            "conflicting_decisions": self.conflicting_decisions,
            "locks_held_at_end": {str(k): v for k, v in sorted(self.locks_held_at_end.items())},
            "stores_agree": self.stores_agree,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_bounced": self.messages_bounced,
            "messages_dropped": self.messages_dropped,
            "finished_at": self.finished_at,
            "lock_hold_time": self.lock_hold_time,
            "max_delay": self.max_delay,
            "metrics": self.metrics,
        }
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "RunSummary":
        """Rebuild a summary from :meth:`to_json_dict` output."""
        def sited(mapping: Mapping[str, Any]) -> dict[int, Any]:
            return {int(k): v for k, v in mapping.items()}

        return cls(
            protocol=payload["protocol"],
            spec_hash=payload["spec_hash"],
            seed=payload["seed"],
            n_sites=payload["n_sites"],
            decisions=sited(payload["decisions"]),
            decision_times=sited(payload["decision_times"]),
            votes=sited(payload["votes"]),
            states=sited(payload["states"]),
            conflicting_decisions=payload["conflicting_decisions"],
            locks_held_at_end=sited(payload["locks_held_at_end"]),
            stores_agree=payload["stores_agree"],
            messages_sent=payload["messages_sent"],
            messages_delivered=payload["messages_delivered"],
            messages_bounced=payload["messages_bounced"],
            messages_dropped=payload["messages_dropped"],
            finished_at=payload["finished_at"],
            lock_hold_time=payload["lock_hold_time"],
            max_delay=payload["max_delay"],
            metrics=dict(payload["metrics"]),
        )

    def to_json_bytes(self) -> bytes:
        """Canonical JSON bytes (shared contract: :mod:`repro.core.canonical`)."""
        return canonical_json_bytes(self.to_json_dict())

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "RunSummary":
        """Inverse of :meth:`to_json_bytes`."""
        return cls.from_json_dict(json.loads(data.decode("utf-8")))
