"""Declarative scenario grids for the sweep engine.

A :class:`ScenarioGrid` is the cartesian product of the sweep axes the paper
quantifies over -- protocol x partition schedule x crash schedule x latency
model x no-voter set (plus partition model and seed) -- generalizing
:class:`repro.workloads.sweeps.ParameterSweep` from flat parameter dicts to
fully-typed scenarios.  Grids enumerate deterministically in declaration
order, so runs, reports and spec-hashes are reproducible across processes
and machines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.scenarios import simple_partition_schedules
from repro.engine.hashing import spec_hash
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import CrashSchedule
from repro.sim.latency import LatencyModel
from repro.sim.network import OPTIMISTIC
from repro.sim.partition import PartitionSchedule, PartitionSpec
from repro.workloads.sweeps import ParameterSweep


@dataclass(frozen=True)
class SweepTask:
    """One grid point: a protocol name plus a fully-specified scenario.

    Tasks are picklable (protocols travel by registry name, not object) and
    carry a stable content hash used to key the result cache.
    """

    protocol: str
    spec: ScenarioSpec

    @cached_property
    def spec_hash(self) -> str:
        """Stable hash of this task (see :mod:`repro.engine.hashing`).

        Cached: the engine consults it several times per task (cache probe,
        cache store, result labelling) and canonicalization walks the whole
        spec.  ``cached_property`` writes straight into ``__dict__``, which
        a frozen dataclass permits.
        """
        return spec_hash(self.protocol, self.spec)


def tasks_from_specs(protocol: str, specs: Iterable[ScenarioSpec]) -> list[SweepTask]:
    """Wrap pre-built scenario specs as tasks for one protocol."""
    return [SweepTask(protocol=protocol, spec=spec) for spec in specs]


# The (onset time x simple split) axis is owned by the analysis layer; the
# engine re-exports it under its axis-naming convention.
simple_partition_axis = simple_partition_schedules


def multiple_partition_axis(
    n_sites: int,
    *,
    times: Sequence[float],
    n_groups: int = 3,
) -> list[PartitionSchedule]:
    """Multiple (>2 group) partitionings, used only for negative sweeps.

    Sites ``1..n`` are dealt round-robin into ``n_groups`` groups; the paper
    proves no protocol is resilient to this class.
    """
    if not 2 < n_groups <= n_sites:
        raise ValueError(f"need 2 < n_groups <= n_sites, got {n_groups}/{n_sites}")
    groups: list[list[int]] = [[] for _ in range(n_groups)]
    for site in range(1, n_sites + 1):
        groups[(site - 1) % n_groups].append(site)
    spec = PartitionSpec.of(*groups)
    return [PartitionSchedule.permanent(at, spec) for at in times]


@dataclass
class ScenarioGrid:
    """A cartesian grid of sweep tasks.

    Attributes:
        protocols: registry names of the protocols to sweep.
        n_sites: number of participating sites for every scenario.
        partitions: partition schedules (``None`` = failure-free).
        crashes: crash schedules (``None`` = no crashes).
        latencies: latency models (``None`` = the spec default, constant T).
        no_voter_options: vote patterns to sweep.
        models: partition models (optimistic / pessimistic).
        seeds: simulator seeds (matter for stochastic latencies).
        horizon: optional run-horizon override.
        base_spec: template spec supplying any remaining fields.

    Axis order (protocol outermost, seed innermost) fixes the enumeration
    order of :meth:`tasks`, which is also the order of the engine's results.
    """

    protocols: Sequence[str] = ("terminating-three-phase-commit",)
    n_sites: int = 3
    partitions: Sequence[Optional[PartitionSchedule]] = (None,)
    crashes: Sequence[Optional[CrashSchedule]] = (None,)
    latencies: Sequence[Optional[LatencyModel]] = (None,)
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),)
    models: Sequence[str] = (OPTIMISTIC,)
    seeds: Sequence[int] = (0,)
    horizon: Optional[float] = None
    base_spec: ScenarioSpec = field(default_factory=ScenarioSpec)

    def specs(self) -> Iterator[ScenarioSpec]:
        """Yield the scenario of every grid point (without the protocol)."""
        for task in self.tasks():
            yield task.spec

    def tasks(self) -> Iterator[SweepTask]:
        """Yield one :class:`SweepTask` per grid point, in declaration order."""
        axes = itertools.product(
            self.protocols,
            self.partitions,
            self.crashes,
            self.latencies,
            self.no_voter_options,
            self.models,
            self.seeds,
        )
        for protocol, partition, crash, latency, no_voters, model, seed in axes:
            spec = replace(
                self.base_spec,
                n_sites=self.n_sites,
                partition=partition,
                crashes=crash,
                latency=latency if latency is not None else self.base_spec.latency,
                no_voters=frozenset(no_voters),
                model=model,
                seed=seed,
                horizon=self.horizon if self.horizon is not None else self.base_spec.horizon,
            )
            yield SweepTask(protocol=protocol, spec=spec)

    def __len__(self) -> int:
        return (
            len(list(self.protocols))
            * len(list(self.partitions))
            * len(list(self.crashes))
            * len(list(self.latencies))
            * len(list(self.no_voter_options))
            * len(list(self.models))
            * len(list(self.seeds))
        )

    def __iter__(self) -> Iterator[SweepTask]:
        return self.tasks()

    # ------------------------------------------------------------------
    # bridges from the older sweep vocabularies
    # ------------------------------------------------------------------
    @classmethod
    def from_partition_sweep(
        cls,
        protocol: str,
        n_sites: int,
        *,
        times: Optional[Sequence[float]] = None,
        heal_after: Optional[float] = None,
        no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
        horizon: Optional[float] = None,
        base_spec: Optional[ScenarioSpec] = None,
    ) -> "ScenarioGrid":
        """The classic Theorem 9 sweep (onset times x simple splits) as a grid.

        Reproduces :func:`repro.analysis.scenarios.partition_sweep` exactly,
        including its enumeration order (time outermost, then split, then
        vote pattern).
        """
        base = base_spec or ScenarioSpec()
        return cls(
            protocols=(protocol,),
            n_sites=n_sites,
            partitions=simple_partition_axis(
                n_sites,
                times=times,
                heal_after=heal_after,
                max_delay=base.effective_latency().upper_bound,
            ),
            no_voter_options=no_voter_options,
            horizon=horizon,
            base_spec=base,
        )

    @classmethod
    def from_parameter_sweep(
        cls, sweep: ParameterSweep, *, protocol: str
    ) -> list[SweepTask]:
        """Lift a flat :class:`ParameterSweep` over ``ScenarioSpec`` fields.

        Every parameter name must be a ``ScenarioSpec`` field; returns the
        explicit task list (a flat sweep need not be a rectangular grid over
        this class's axes).
        """
        spec_fields = set(ScenarioSpec.__dataclass_fields__)
        unknown = set(sweep.parameters) - spec_fields
        if unknown:
            raise KeyError(
                f"sweep {sweep.name!r} names non-spec parameters {sorted(unknown)}"
            )
        return [
            SweepTask(protocol=protocol, spec=ScenarioSpec(**point))
            for point in sweep.points()
        ]
