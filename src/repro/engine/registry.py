"""The spec-kind registry: the engine's open extension point.

Historically, teaching the sweep engine a new scenario type (a third kind
of spec beyond single-transaction :class:`~repro.protocols.runner.ScenarioSpec`
and concurrent-workload :class:`~repro.txn.runner.ThroughputSpec`) required
lockstep edits in three places: ``execute_task``'s isinstance dispatch, the
``kind``-tag branch in ``summary_from_json_dict``, and the sink module's
imports.  This module replaces all three with one registration point: a
:class:`SpecKind` bundles everything the engine needs to run, cache, spill
and aggregate one family of specs --

* the **spec dataclass** (what a grid point looks like),
* the **task executor** (how a worker turns ``(protocol, spec)`` into a
  summary),
* the **summary codec** (how the summary round-trips canonical JSON for the
  result cache and JSONL spills, selected by the payload's ``kind`` tag),
* the **default sink factory** (how the CLI and ``repro merge`` aggregate a
  stream of these summaries into a table).

``engine.py``, ``cache.py``, ``sink.py``, the experiments and the CLI all
resolve through the lookups here (:func:`kind_for_spec`,
:func:`kind_for_payload`, :func:`kind_by_name`), so a new scenario type
plugs in with a single :func:`register_spec_kind` call -- no engine edits.

The built-in kinds self-register from their home packages
(:mod:`repro.engine.scenario_kind`, :mod:`repro.txn.kind`,
:mod:`repro.modelcheck.kind`); they are imported lazily on first lookup so
this module stays dependency-free and import cycles cannot form.

External packages plug in the same way, without touching this file:

* **setuptools entry points** -- declare a module in the
  ``repro.spec_kinds`` group; it is imported (and expected to call
  :func:`register_spec_kind` at import time) right after the built-ins.
* **environment hook** -- ``REPRO_SPEC_KINDS`` holds a comma-separated
  list of importable module names, loaded after the entry points (so a
  development checkout can inject kinds without installing anything).

A provider that fails to import raises :class:`SpecKindProviderError`
naming the provider, so a broken third-party kind is self-diagnosing
instead of surfacing as an unknown-kind error three layers later.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

#: Modules that register the built-in kinds on import.  Lazily imported on
#: the first registry lookup; third-party / test kinds call
#: :func:`register_spec_kind` directly instead of being listed here.
BUILTIN_KIND_PROVIDERS: tuple[str, ...] = (
    "repro.engine.scenario_kind",
    "repro.txn.kind",
    "repro.modelcheck.kind",
)

#: setuptools entry-point group external packages register providers under.
ENTRY_POINT_GROUP = "repro.spec_kinds"

#: Environment variable naming extra provider modules (comma-separated).
ENV_PROVIDERS = "REPRO_SPEC_KINDS"


class SpecKindProviderError(RuntimeError):
    """An external spec-kind provider failed to import or load.

    The message names the provider (module or entry point) so the failure
    is attributable without digging through the import traceback.
    """


class UnknownSpecKindError(KeyError):
    """A lookup named a spec kind, tag or spec type nobody registered.

    The message always names the offending kind so a failed cache read or
    spill load is self-diagnosing (``KeyError``'s default repr would quote
    it away).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class SpecKind:
    """Everything the engine needs to know about one family of specs.

    Attributes:
        name: short registry id (``"scenario"``, ``"throughput"``).
        spec_type: the spec dataclass; :func:`kind_for_spec` dispatches on
            it (exact type match, the way grid points are constructed).
        summary_type: the record the executor returns; must provide
            ``to_json_dict`` / ``to_json_bytes`` with canonical (sorted-key)
            JSON so cache entries and spills are byte-stable.
        execute: ``execute(protocol, spec, *, spec_hash, measures)`` -- runs
            one task inside a worker and returns a ``summary_type`` record.
        decode: rebuilds a summary from a ``to_json_dict`` payload (the
            ``kind`` tag has already selected this kind).
        json_tag: the value of the payload's ``"kind"`` key; ``None`` means
            the untagged legacy format (reserved by the scenario kind).
        make_sink: zero-argument factory for the kind's default aggregation
            sink (must expose ``rows()`` for table rendering); used by the
            CLI and ``repro merge``.
        sample_task: optional factory for one small representative
            :class:`~repro.engine.grid.SweepTask`, used by the registry
            conformance tests to exercise every kind end to end.
    """

    name: str
    spec_type: type
    summary_type: type
    execute: Callable[..., Any]
    decode: Callable[[Mapping[str, Any]], Any]
    json_tag: Optional[str] = None
    make_sink: Optional[Callable[[], Any]] = None
    sample_task: Optional[Callable[[], Any]] = None


_KINDS: dict[str, SpecKind] = {}
_BY_SPEC_TYPE: dict[type, SpecKind] = {}
_BY_TAG: dict[Optional[str], SpecKind] = {}
_builtins_loaded = False


_builtins_loading = False


def _load_builtins() -> None:
    """Import the built-in kind providers once (idempotent, reentrancy-safe).

    The done-flag is only set after every provider imported, so a failed
    provider import surfaces again (as the original ImportError) on the
    next lookup instead of masquerading as an unknown-kind error; the
    in-progress flag lets providers call registry functions while they are
    being imported.
    """
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    _builtins_loading = True
    try:
        for module in BUILTIN_KIND_PROVIDERS:
            importlib.import_module(module)
        _load_entry_point_providers()
        _load_env_providers()
    finally:
        _builtins_loading = False
    _builtins_loaded = True


def _load_entry_point_providers() -> None:
    """Import every module declared in the ``repro.spec_kinds`` group."""
    from importlib.metadata import entry_points

    try:
        points = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        points = entry_points().get(ENTRY_POINT_GROUP, ())
    for point in points:
        try:
            point.load()
        except Exception as exc:
            raise SpecKindProviderError(
                f"spec-kind provider {point.name!r} ({point.value!r}, entry "
                f"point group {ENTRY_POINT_GROUP!r}) failed to load: {exc}"
            ) from exc


def _load_env_providers() -> None:
    """Import every module named in ``REPRO_SPEC_KINDS`` (comma-separated)."""
    value = os.environ.get(ENV_PROVIDERS, "")
    for name in value.split(","):
        module = name.strip()
        if not module:
            continue
        try:
            importlib.import_module(module)
        except Exception as exc:
            raise SpecKindProviderError(
                f"spec-kind provider {module!r} (from ${ENV_PROVIDERS}) "
                f"failed to import: {exc}"
            ) from exc


def register_spec_kind(kind: SpecKind) -> SpecKind:
    """Register ``kind``; every axis (name, spec type, tag) must be free.

    Returns the kind so providers can write
    ``KIND = register_spec_kind(SpecKind(...))``.
    """
    if kind.name in _KINDS:
        raise ValueError(f"spec kind {kind.name!r} is already registered")
    if kind.spec_type in _BY_SPEC_TYPE:
        raise ValueError(
            f"spec type {kind.spec_type.__name__} is already registered "
            f"(kind {_BY_SPEC_TYPE[kind.spec_type].name!r})"
        )
    if kind.json_tag in _BY_TAG:
        raise ValueError(
            f"JSON kind tag {kind.json_tag!r} is already registered "
            f"(kind {_BY_TAG[kind.json_tag].name!r})"
        )
    _KINDS[kind.name] = kind
    _BY_SPEC_TYPE[kind.spec_type] = kind
    _BY_TAG[kind.json_tag] = kind
    return kind


def unregister_spec_kind(name: str) -> None:
    """Remove a registered kind (primarily for tests adding toy kinds)."""
    kind = _KINDS.pop(name, None)
    if kind is None:
        raise UnknownSpecKindError(f"spec kind {name!r} is not registered")
    del _BY_SPEC_TYPE[kind.spec_type]
    del _BY_TAG[kind.json_tag]


def registered_kinds() -> tuple[SpecKind, ...]:
    """Every registered kind, in registration order (built-ins first)."""
    _load_builtins()
    return tuple(_KINDS.values())


def kind_by_name(name: str) -> SpecKind:
    """The kind registered as ``name``; the error names the kind."""
    _load_builtins()
    kind = _KINDS.get(name)
    if kind is None:
        raise UnknownSpecKindError(
            f"unknown spec kind {name!r}; registered: {sorted(_KINDS)}"
        )
    return kind


def kind_for_spec(spec: Any) -> SpecKind:
    """The kind owning ``type(spec)``; the error names the spec type."""
    _load_builtins()
    kind = _BY_SPEC_TYPE.get(type(spec))
    if kind is None:
        raise UnknownSpecKindError(
            f"no spec kind registered for spec type {type(spec).__name__!r}; "
            f"registered: {sorted(_KINDS)} "
            f"(add one with repro.engine.registry.register_spec_kind)"
        )
    return kind


def kind_for_tag(tag: Optional[str]) -> SpecKind:
    """The kind owning JSON ``kind`` tag ``tag``; the error names the tag."""
    _load_builtins()
    kind = _BY_TAG.get(tag)
    if kind is None:
        raise UnknownSpecKindError(
            f"no spec kind registered for JSON kind tag {tag!r}; "
            f"registered tags: {sorted(t for t in _BY_TAG if t is not None)} "
            f"plus the untagged default"
        )
    return kind


def kind_for_payload(payload: Mapping[str, Any]) -> SpecKind:
    """The kind encoding a cache / spill payload (by its ``kind`` tag)."""
    return kind_for_tag(payload.get("kind"))
