"""The parallel sweep engine.

:class:`SweepEngine` executes a batch of sweep tasks -- a
:class:`~repro.engine.grid.ScenarioGrid`, an explicit task list, or raw
``(protocol, spec)`` pairs -- and streams back
:class:`~repro.engine.summary.RunSummary` records.

Execution strategy:

* ``workers=1`` -- a deterministic in-process loop (no subprocess cost, easy
  to debug, bit-for-bit reproducible);
* ``workers>1`` -- the task list is partitioned into chunks and executed on
  a ``concurrent.futures.ProcessPoolExecutor``; chunks amortize the
  per-submission pickling cost over many scenarios.

Either way the result order equals the task order: runs are independent, so
summaries are reassembled by task index regardless of which worker finished
first.  With a :class:`~repro.engine.cache.ResultCache` attached, previously
executed ``(spec-hash, seed)`` points are served from disk and only the new
points are dispatched.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.engine.cache import ResultCache
from repro.engine.grid import ScenarioGrid, SweepTask
from repro.engine.measures import apply_measures, resolve_measures
from repro.engine.summary import RunSummary
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario

TaskBatch = Union[ScenarioGrid, Iterable[SweepTask], Iterable[tuple[str, ScenarioSpec]]]

# One chunk ships as (measure names, [(index, protocol, spec, spec_hash), ...]).
_ChunkPayload = tuple[tuple[str, ...], list[tuple[int, str, ScenarioSpec, str]]]


def execute_task(
    protocol: str, spec: ScenarioSpec, *, spec_hash: str, measures: Sequence[str] = ()
) -> RunSummary:
    """Run one scenario and reduce it to a summary (used by the workers)."""
    result = run_scenario(create_protocol(protocol), spec)
    metrics = apply_measures(result, measures)
    return RunSummary.from_result(result, spec_hash=spec_hash, metrics=metrics)


def _execute_chunk(payload: _ChunkPayload) -> list[tuple[int, RunSummary]]:
    """Top-level (picklable) chunk executor run inside pool workers."""
    measures, items = payload
    return [
        (index, execute_task(protocol, spec, spec_hash=spec_hash, measures=measures))
        for index, protocol, spec, spec_hash in items
    ]


@dataclass
class SweepResult:
    """The summaries of one engine run, in task order, plus run statistics."""

    summaries: list[RunSummary] = field(default_factory=list)
    executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    chunk_count: int = 0
    elapsed: float = 0.0

    @property
    def total(self) -> int:
        """Number of scenarios covered (executed + served from cache)."""
        return len(self.summaries)

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second (0 when elapsed is unmeasured)."""
        return self.total / self.elapsed if self.elapsed > 0 else 0.0

    def __iter__(self) -> Iterator[RunSummary]:
        return iter(self.summaries)

    def __len__(self) -> int:
        return len(self.summaries)

    def __getitem__(self, index: int) -> RunSummary:
        return self.summaries[index]


class SweepEngine:
    """Executes scenario grids across worker processes with result caching.

    Args:
        workers: process count; ``1`` means a deterministic in-process loop.
        cache: a :class:`ResultCache`, a directory path for one, or ``None``
            to disable caching.
        chunk_size: scenarios per worker submission (default: enough chunks
            for ~4 submissions per worker, a balance between load-balancing
            and pickling overhead).
        mp_context: multiprocessing start-method name or context; defaults
            to ``fork`` where available (fastest) and the platform default
            elsewhere.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: Union[ResultCache, str, os.PathLike, None] = None,
        chunk_size: Optional[int] = None,
        mp_context: Union[str, Any, None] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        elif mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        self._mp_context = mp_context

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, tasks: TaskBatch, *, measures: Sequence[str] = ()) -> SweepResult:
        """Execute every task and return ordered summaries plus statistics."""
        task_list = self._materialize(tasks)
        started = time.perf_counter()
        result = SweepResult(
            summaries=[None] * len(task_list), workers=self.workers  # type: ignore[list-item]
        )
        for index, summary, from_cache in self._stream(task_list, measures, result):
            result.summaries[index] = summary
            if from_cache:
                result.cache_hits += 1
            else:
                result.executed += 1
        result.elapsed = time.perf_counter() - started
        return result

    def iter_summaries(
        self, tasks: TaskBatch, *, measures: Sequence[str] = ()
    ) -> Iterator[tuple[int, RunSummary]]:
        """Stream ``(task index, summary)`` pairs as they complete."""
        task_list = self._materialize(tasks)
        stats = SweepResult(workers=self.workers)
        for index, summary, _ in self._stream(task_list, measures, stats):
            yield index, summary

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _materialize(tasks: TaskBatch) -> list[SweepTask]:
        if isinstance(tasks, ScenarioGrid):
            return list(tasks.tasks())
        out = []
        for task in tasks:
            if isinstance(task, SweepTask):
                out.append(task)
            else:
                protocol, spec = task
                out.append(SweepTask(protocol=protocol, spec=spec))
        return out

    def _stream(
        self,
        tasks: list[SweepTask],
        measures: Sequence[str],
        stats: SweepResult,
    ) -> Iterator[tuple[int, RunSummary, bool]]:
        measure_names = resolve_measures(measures)
        pending: list[tuple[int, SweepTask, str]] = []
        # Entries cached without some requested measure re-execute, then merge
        # the old metrics back in so cache entries only ever gain measures.
        partial: dict[int, RunSummary] = {}
        for index, task in enumerate(tasks):
            key = task.spec_hash
            cached = self.cache.get(key, task.spec.seed) if self.cache is not None else None
            if cached is not None and all(m in cached.metrics for m in measure_names):
                yield index, cached, True
            else:
                if cached is not None:
                    partial[index] = cached
                pending.append((index, task, key))

        if not pending:
            return

        def finish(index: int, summary: RunSummary) -> RunSummary:
            stale = partial.get(index)
            if stale is not None:
                summary.metrics = {**stale.metrics, **summary.metrics}
            if self.cache is not None:
                self.cache.put(summary)
            return summary

        if self.workers == 1 or len(pending) == 1:
            stats.chunk_count = len(pending)
            for index, task, key in pending:
                summary = execute_task(
                    task.protocol, task.spec, spec_hash=key, measures=measure_names
                )
                yield index, finish(index, summary), False
            return

        chunks = self._chunk(pending, measure_names)
        stats.chunk_count = len(chunks)
        max_workers = min(self.workers, len(chunks))
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=self._mp_context
        ) as pool:
            futures = {pool.submit(_execute_chunk, chunk) for chunk in chunks}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    for index, summary in future.result():
                        yield index, finish(index, summary), False

    def _chunk(
        self,
        pending: list[tuple[int, SweepTask, str]],
        measure_names: tuple[str, ...],
    ) -> list[_ChunkPayload]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker keeps the pool busy without shipping one
            # scenario at a time.
            size = max(1, len(pending) // (self.workers * 4))
        chunks: list[_ChunkPayload] = []
        for start in range(0, len(pending), size):
            items = [
                (index, task.protocol, task.spec, key)
                for index, task, key in pending[start : start + size]
            ]
            chunks.append((measure_names, items))
        return chunks
