"""The parallel sweep engine.

:class:`SweepEngine` executes a batch of sweep tasks -- a
:class:`~repro.engine.grid.ScenarioGrid`, an explicit task list, or raw
``(protocol, spec)`` pairs -- and streams back
:class:`~repro.engine.summary.RunSummary` records.

Execution strategy:

* ``workers=1`` -- a deterministic in-process loop (no subprocess cost, easy
  to debug, bit-for-bit reproducible);
* ``workers>1`` -- the task list is partitioned into chunks and executed on
  a ``concurrent.futures.ProcessPoolExecutor``; chunks amortize the
  per-submission pickling cost over many scenarios.

Either way the result order equals the task order: runs are independent, so
summaries are reassembled by task index regardless of which worker finished
first.  With a :class:`~repro.engine.cache.ResultCache` attached, previously
executed ``(spec-hash, seed)`` points are served from disk and only the new
points are dispatched.

Two execution surfaces share that machinery:

* :meth:`SweepEngine.run` materializes every summary into a
  :class:`SweepResult` list -- right for the figure-sized sweeps;
* :meth:`SweepEngine.run_streaming` / :meth:`SweepEngine.stream` deliver
  each summary exactly once, *in task order*, to composable
  :class:`~repro.engine.sink.SummarySink` aggregators and then drop it, so
  a million-scenario sweep holds O(sinks) memory plus a reorder buffer
  bounded by the number of in-flight chunk results (never the whole sweep).
  In-order delivery makes every sink aggregate -- and a
  :class:`~repro.engine.sink.JsonlSink` spill file byte-for-byte --
  identical across worker counts.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.engine.cache import ResultCache
from repro.engine.grid import ScenarioGrid, SweepTask
from repro.engine.measures import resolve_measures
from repro.engine.registry import kind_for_spec
from repro.engine.sink import SummarySink
from repro.engine.summary import RunSummary, summary_from_json_bytes
from repro.obs.metrics import MetricsRegistry, activate, get_active, set_active
from repro.obs.spans import SpanRecorder
from repro.protocols.runner import ScenarioSpec

TaskBatch = Union[ScenarioGrid, Iterable[SweepTask], Iterable[tuple[str, ScenarioSpec]]]

# One chunk ships as (measure names, [(index, protocol, spec, spec_hash), ...],
# collect-metrics flag).
_ChunkPayload = tuple[
    tuple[str, ...], list[tuple[int, str, ScenarioSpec, str]], bool
]

# One chunk result returns as a single batched frame: the task indices plus
# the newline-joined canonical JSON bytes of their summaries, in the same
# order.  Shipping one bytes object per chunk (instead of pickling every
# summary's object graph) keeps the parent's IPC cost flat in the chunk size,
# and the frames are exactly what the result cache stores.  The third element
# is the chunk's observability meta -- worker pid, monotonic start/elapsed,
# and the worker-side registry snapshot -- or ``None`` when metrics are off.
# Riding the meta in the frame keeps it strictly out-of-band: the summary
# bytes (element 1) are what the cache and every sink see, unchanged.
_ChunkFrame = tuple[tuple[int, ...], bytes, Optional[dict]]


def execute_task(
    protocol: str, spec: ScenarioSpec, *, spec_hash: str, measures: Sequence[str] = ()
):
    """Run one task and reduce it to a summary (used by the workers).

    The spec's type selects a registered spec kind
    (:mod:`repro.engine.registry`) whose executor runs the task: a
    :class:`~repro.protocols.runner.ScenarioSpec` runs one transaction and
    yields a :class:`~repro.engine.summary.RunSummary`; a
    :class:`~repro.txn.runner.ThroughputSpec` runs the concurrent-workload
    scheduler and yields a :class:`~repro.txn.summary.ThroughputSummary`;
    any other registered kind runs its own executor.  The engine itself
    never names a concrete spec type.
    """
    kind = kind_for_spec(spec)
    return kind.execute(protocol, spec, spec_hash=spec_hash, measures=measures)


def _execute_chunk(payload: _ChunkPayload) -> _ChunkFrame:
    """Top-level (picklable) chunk executor run inside pool workers.

    Summaries are serialized to their canonical JSON bytes *in the worker*
    and returned as one batched frame; the parent decodes them with
    :func:`~repro.engine.summary.summary_from_json_bytes` (and can hand the
    bytes straight to the cache).  Canonical JSON is single-line, so the
    newline join is unambiguous.
    """
    measures, items, collect = payload
    indices: list[int] = []
    frames: list[bytes] = []
    if not collect:
        for index, protocol, spec, spec_hash in items:
            summary = execute_task(
                protocol, spec, spec_hash=spec_hash, measures=measures
            )
            indices.append(index)
            frames.append(summary.to_json_bytes())
        return tuple(indices), b"\n".join(frames), None

    # Metrics are on: run the chunk under a fresh worker-side registry (so
    # kernel / cache / txn instruments land here, not in whatever registry
    # the fork inherited) and ship its snapshot home in the frame meta.
    registry = MetricsRegistry()
    execute_hist = registry.histogram("engine.task.execute_seconds")
    encode_hist = registry.histogram("engine.task.encode_seconds")
    executed = registry.counter("engine.tasks.executed")
    chunk_started = time.perf_counter()
    with activate(registry):
        for index, protocol, spec, spec_hash in items:
            before = time.perf_counter()
            summary = execute_task(
                protocol, spec, spec_hash=spec_hash, measures=measures
            )
            after = time.perf_counter()
            data = summary.to_json_bytes()
            encode_hist.observe(time.perf_counter() - after)
            execute_hist.observe(after - before)
            executed.inc()
            indices.append(index)
            frames.append(data)
    meta = {
        "pid": os.getpid(),
        # perf_counter is CLOCK_MONOTONIC on Linux, shared across forked
        # processes, so the parent can subtract its own submit timestamp.
        "started": chunk_started,
        "elapsed": time.perf_counter() - chunk_started,
        "metrics": registry.snapshot(),
    }
    return tuple(indices), b"\n".join(frames), meta


@dataclass
class SweepResult:
    """The summaries of one engine run, in task order, plus run statistics."""

    summaries: list[RunSummary] = field(default_factory=list)
    executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    chunk_count: int = 0
    elapsed: float = 0.0

    @property
    def total(self) -> int:
        """Number of scenarios covered (executed + served from cache)."""
        return len(self.summaries)

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second (0 when elapsed is unmeasured)."""
        return self.total / self.elapsed if self.elapsed > 0 else 0.0

    def __iter__(self) -> Iterator[RunSummary]:
        return iter(self.summaries)

    def __len__(self) -> int:
        return len(self.summaries)

    def __getitem__(self, index: int) -> RunSummary:
        return self.summaries[index]


@dataclass
class StreamStats:
    """Run statistics of a streaming sweep (the summaries live in the sinks).

    ``max_buffered`` is the peak size of the in-order reorder buffer -- the
    proof that the sweep streamed: for a materializing run it would equal the
    sweep size, for a streaming run it stays bounded by the in-flight chunk
    results (and is 0 when every point came from the cache).
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    chunk_count: int = 0
    elapsed: float = 0.0
    max_buffered: int = 0

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second (0 when elapsed is unmeasured)."""
        return self.total / self.elapsed if self.elapsed > 0 else 0.0


class SweepEngine:
    """Executes scenario grids across worker processes with result caching.

    Args:
        workers: process count; ``1`` means a deterministic in-process loop.
        cache: a :class:`ResultCache`, a directory path for one, or ``None``
            to disable caching.
        chunk_size: scenarios per worker submission (default: enough chunks
            for ~4 submissions per worker, a balance between load-balancing
            and pickling overhead).
        mp_context: multiprocessing start-method name or context; defaults
            to ``fork`` where available (fastest) and the platform default
            elsewhere.
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to record
            run metrics into, or ``None`` (the default) for zero-cost
            no-op behaviour.  While a run is in flight the registry is
            also installed as the process-wide active registry, so the
            cache, kernel, scheduler and model-checker instruments all
            land in it; worker-side snapshots ride home in the chunk
            frames and are merged in.  Metrics never influence results:
            summaries, cache entries and sink output stay byte-identical.
        spans: a :class:`~repro.obs.spans.SpanRecorder` for phase spans
            (cache scan, dispatch, worker execute, chunk fold), or
            ``None`` to record nothing.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: Union[ResultCache, str, os.PathLike, None] = None,
        chunk_size: Optional[int] = None,
        mp_context: Union[str, Any, None] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.metrics = metrics
        self.spans = spans
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        elif mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        self._mp_context = mp_context

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, tasks: TaskBatch, *, measures: Sequence[str] = ()) -> SweepResult:
        """Execute every task and return ordered summaries plus statistics."""
        task_list = self._materialize(tasks)
        started = time.perf_counter()
        stats = StreamStats(workers=self.workers)
        summaries = [
            summary for _, summary in self._stream_ordered(task_list, measures, stats)
        ]
        return SweepResult(
            summaries=summaries,
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            workers=self.workers,
            chunk_count=stats.chunk_count,
            elapsed=time.perf_counter() - started,
        )

    def iter_summaries(
        self, tasks: TaskBatch, *, measures: Sequence[str] = ()
    ) -> Iterator[tuple[int, RunSummary]]:
        """Stream ``(task index, summary)`` pairs, in task order."""
        task_list = self._materialize(tasks)
        stats = StreamStats(workers=self.workers)
        yield from self._stream_ordered(task_list, measures, stats)

    def run_streaming(
        self,
        tasks: TaskBatch,
        *,
        sinks: Union[SummarySink, Sequence[SummarySink]],
        measures: Sequence[str] = (),
        stats: Optional[StreamStats] = None,
    ) -> StreamStats:
        """Execute every task, feeding each summary to the sinks in task order.

        No summary list is materialized: each summary is handed to every
        sink exactly once and then dropped, so memory stays O(sinks) plus a
        reorder buffer bounded by in-flight chunk results
        (:attr:`StreamStats.max_buffered`).  Because delivery order equals
        task order, ``workers=1`` and ``workers=N`` leave every sink with
        identical final aggregates.  Sinks are closed (even on an empty
        sweep) before the stats are returned.

        Pass a :class:`StreamStats` to observe counters *live* (e.g. for a
        ``--progress`` sink reading ``executed``/``cache_hits`` between
        deliveries); the same object is updated in place and returned.
        """
        sink_list = [sinks] if isinstance(sinks, SummarySink) else list(sinks)
        if stats is None:
            stats = StreamStats(workers=self.workers)
        else:
            stats.workers = self.workers
        started = time.perf_counter()
        body_raised = False
        try:
            for index, summary in self._stream_ordered(
                self._materialize(tasks), measures, stats
            ):
                for sink in sink_list:
                    sink.accept(index, summary)
        except BaseException:
            body_raised = True
            raise
        finally:
            # Close even on worker/sink failure so buffered sink output (e.g.
            # a partial JSONL spill) is flushed rather than lost; one sink's
            # close() failure must not leave the remaining sinks unflushed.
            close_error: Optional[BaseException] = None
            for sink in sink_list:
                try:
                    sink.close()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if close_error is None:
                        close_error = exc
            # A close failure surfaces unless an execution error is already
            # propagating (that one stays the primary exception).
            if close_error is not None and not body_raised:
                raise close_error
        stats.elapsed = time.perf_counter() - started
        return stats

    def stream(
        self,
        tasks: TaskBatch,
        *,
        measures: Sequence[str] = (),
        stats: Optional[StreamStats] = None,
    ) -> Iterator[RunSummary]:
        """Yield summaries one at a time, in task order, without a list.

        The generator analogue of :meth:`run_streaming`, for callers (the
        per-figure experiments) that fold the stream themselves.  Pass a
        :class:`StreamStats` to collect run statistics; its ``elapsed`` field
        is only final once the generator is exhausted.
        """
        if stats is None:
            stats = StreamStats(workers=self.workers)
        started = time.perf_counter()
        for _, summary in self._stream_ordered(self._materialize(tasks), measures, stats):
            yield summary
        stats.elapsed = time.perf_counter() - started

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _materialize(tasks: TaskBatch) -> list[SweepTask]:
        if isinstance(tasks, ScenarioGrid):
            return list(tasks.tasks())
        out = []
        for task in tasks:
            if isinstance(task, SweepTask):
                out.append(task)
            else:
                protocol, spec = task
                out.append(SweepTask(protocol=protocol, spec=spec))
        return out

    def _stream_ordered(
        self,
        tasks: list[SweepTask],
        measures: Sequence[str],
        stats: StreamStats,
    ) -> Iterator[tuple[int, RunSummary]]:
        """Yield ``(index, summary)`` strictly in task order, bounded memory.

        Cache hits are *not* held across the scan: the scan records only the
        key of a usable hit and re-reads it from disk at delivery time, so
        the parent never retains more summaries than the reorder buffer of
        out-of-order chunk results (``stats.max_buffered``).

        Observability (``self.metrics`` / ``self.spans``): for the duration
        of the stream the engine's registry is the process-wide active one
        (restored afterwards), so cache and in-process-execution instruments
        record into it; worker registries ship back per chunk and are merged.
        Every instrument site is gated on one ``is None`` check.
        """
        metrics = self.metrics
        spans = self.spans
        run_started = time.perf_counter()
        # pid -> [tasks, chunks, busy seconds]; labels assigned at run end.
        workers_seen: dict[int, list] = {}
        previous_active = get_active()
        if metrics is not None:
            set_active(metrics)
        try:
            yield from self._stream_ordered_observed(
                tasks, measures, stats, metrics, spans, workers_seen
            )
        finally:
            if metrics is not None:
                set_active(previous_active)
                self._finalize_run_metrics(
                    stats, time.perf_counter() - run_started, workers_seen
                )

    def _stream_ordered_observed(
        self,
        tasks: list[SweepTask],
        measures: Sequence[str],
        stats: StreamStats,
        metrics: Optional[MetricsRegistry],
        spans: Optional[SpanRecorder],
        workers_seen: dict[int, list],
    ) -> Iterator[tuple[int, RunSummary]]:
        measure_names = resolve_measures(measures)
        stats.total = len(tasks)
        pending: list[tuple[int, SweepTask, str]] = []
        cached: dict[int, tuple[SweepTask, str]] = {}
        partial: dict[int, RunSummary] = {}
        with (
            spans.span("cache-scan", tasks=len(tasks))
            if spans is not None
            else nullcontext()
        ):
            for index, task in enumerate(tasks):
                key = task.spec_hash
                if self.cache is None:
                    pending.append((index, task, key))
                elif not measure_names:
                    # No measures to check: a cheap existence probe suffices,
                    # deferring the single read+parse to delivery time.
                    if self.cache.probe(key, task.spec.seed):
                        cached[index] = (task, key)
                    else:
                        pending.append((index, task, key))
                else:
                    hit = self.cache.get(key, task.spec.seed)
                    if hit is not None and all(
                        m in hit.metrics for m in measure_names
                    ):
                        cached[index] = (task, key)
                    else:
                        if hit is not None:
                            partial[index] = hit
                        pending.append((index, task, key))

        def finish(
            index: int, summary: RunSummary, data: Optional[bytes] = None
        ) -> RunSummary:
            stale = partial.pop(index, None)
            if stale is not None:
                summary.metrics = {**stale.metrics, **summary.metrics}
            if self.cache is not None:
                if data is not None and stale is None:
                    # A worker frame already holds the canonical bytes of this
                    # exact summary: store them verbatim.
                    self.cache.put_bytes(summary.spec_hash, summary.seed, data)
                else:
                    self.cache.put(summary)
            return summary

        buffered: dict[int, RunSummary] = {}
        cursor = 0

        def drain() -> Iterator[tuple[int, RunSummary]]:
            nonlocal cursor
            while cursor < len(tasks):
                if cursor in buffered:
                    stats.executed += 1
                    yield cursor, buffered.pop(cursor)
                elif cursor in cached:
                    task, key = cached.pop(cursor)
                    # The scan already counted this hit; the delivery read is
                    # unrecorded so counters stay one-per-task.
                    hit = self.cache.get(key, task.spec.seed, record=False)
                    if hit is None:
                        # Evicted between scan and delivery: re-execute inline.
                        hit = finish(
                            cursor,
                            execute_task(
                                task.protocol,
                                task.spec,
                                spec_hash=key,
                                measures=measure_names,
                            ),
                        )
                        stats.executed += 1
                        if metrics is not None:
                            metrics.counter("engine.tasks.executed").inc()
                    else:
                        stats.cache_hits += 1
                    yield cursor, hit
                else:
                    return
                cursor += 1

        if self.workers == 1 or len(pending) <= 1:
            stats.chunk_count = len(pending)
            if metrics is not None:
                execute_hist = metrics.histogram("engine.task.execute_seconds")
                executed_counter = metrics.counter("engine.tasks.executed")
                acct = workers_seen.setdefault(os.getpid(), [0, 0, 0.0])
            for index, task, key in pending:
                if metrics is None:
                    summary = execute_task(
                        task.protocol, task.spec, spec_hash=key, measures=measure_names
                    )
                else:
                    before = time.perf_counter()
                    summary = execute_task(
                        task.protocol, task.spec, spec_hash=key, measures=measure_names
                    )
                    task_elapsed = time.perf_counter() - before
                    execute_hist.observe(task_elapsed)
                    executed_counter.inc()
                    acct[0] += 1
                    acct[2] += task_elapsed
                buffered[index] = finish(index, summary)
                stats.max_buffered = max(stats.max_buffered, len(buffered))
                yield from drain()
            yield from drain()
            return

        chunks = self._chunk(pending, measure_names)
        stats.chunk_count = len(chunks)
        max_workers = min(self.workers, len(chunks))
        if metrics is not None:
            queue_wait_hist = metrics.histogram("engine.chunk.queue_wait_seconds")
            chunk_execute_hist = metrics.histogram("engine.chunk.execute_seconds")
            decode_hist = metrics.histogram("engine.chunk.decode_seconds")
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=self._mp_context
        ) as pool:
            with (
                spans.span("dispatch", chunks=len(chunks))
                if spans is not None
                else nullcontext()
            ):
                submitted = {
                    pool.submit(_execute_chunk, chunk): time.perf_counter()
                    for chunk in chunks
                }
            futures = set(submitted)
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    indices, frame, meta = future.result()
                    if metrics is not None and meta is not None:
                        worker_started = meta["started"]
                        queue_wait_hist.observe(
                            max(0.0, worker_started - submitted[future])
                        )
                        chunk_execute_hist.observe(meta["elapsed"])
                        metrics.merge_snapshot(meta["metrics"])
                        acct = workers_seen.setdefault(meta["pid"], [0, 0, 0.0])
                        acct[0] += len(indices)
                        acct[1] += 1
                        acct[2] += meta["elapsed"]
                        if spans is not None:
                            spans.record_interval(
                                "worker-execute",
                                worker_started,
                                worker_started + meta["elapsed"],
                                pid=meta["pid"],
                                tasks=len(indices),
                            )
                    decode_started = (
                        time.perf_counter() if metrics is not None else 0.0
                    )
                    for index, data in zip(indices, frame.split(b"\n")):
                        buffered[index] = finish(
                            index, summary_from_json_bytes(data), data
                        )
                    if metrics is not None:
                        # Decode + cache-store fold of one chunk's frame.
                        decode_hist.observe(time.perf_counter() - decode_started)
                    stats.max_buffered = max(stats.max_buffered, len(buffered))
                    yield from drain()
        yield from drain()

    def _finalize_run_metrics(
        self,
        stats: StreamStats,
        elapsed: float,
        workers_seen: dict[int, list],
    ) -> None:
        """Fold one run's per-worker accounting into the registry.

        Worker labels (``w0``, ``w1``, ...) are assigned by sorted pid, so
        within one run the labelling is deterministic; utilization is busy
        seconds over the run's wall clock, and the dispatch-overhead share
        is the fraction of worker-slot capacity *not* spent executing --
        exactly the number ROADMAP item 1 needs.
        """
        metrics = self.metrics
        if metrics is None:
            return
        metrics.counter("engine.tasks.total").inc(stats.total)
        metrics.counter("engine.tasks.cache_hits").inc(stats.cache_hits)
        metrics.counter("engine.chunks").inc(stats.chunk_count)
        metrics.gauge("engine.workers").set(float(self.workers))
        metrics.gauge("engine.elapsed_seconds").set(elapsed)
        total_busy = 0.0
        for label_index, pid in enumerate(sorted(workers_seen)):
            tasks_done, chunks_done, busy = workers_seen[pid]
            prefix = f"engine.worker.w{label_index}."
            metrics.counter(prefix + "tasks").inc(tasks_done)
            metrics.counter(prefix + "chunks").inc(chunks_done)
            metrics.gauge(prefix + "busy_seconds").set(busy)
            if elapsed > 0:
                metrics.gauge(prefix + "utilization").set(
                    min(1.0, busy / elapsed)
                )
            total_busy += busy
        slots = min(self.workers, len(workers_seen)) or 1
        if elapsed > 0 and workers_seen:
            share = 1.0 - total_busy / (elapsed * slots)
            metrics.gauge("engine.dispatch_overhead_share").set(
                min(1.0, max(0.0, share))
            )

    def _chunk(
        self,
        pending: list[tuple[int, SweepTask, str]],
        measure_names: tuple[str, ...],
    ) -> list[_ChunkPayload]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker keeps the pool busy without shipping one
            # scenario at a time.
            size = max(1, len(pending) // (self.workers * 4))
        chunks: list[_ChunkPayload] = []
        collect = self.metrics is not None
        for start in range(0, len(pending), size):
            items = [
                (index, task.protocol, task.spec, key)
                for index, task, key in pending[start : start + size]
            ]
            chunks.append((measure_names, items, collect))
        return chunks
