"""Registration of the single-transaction scenario kind.

The original (and JSON-untagged) spec kind: one
:class:`~repro.protocols.runner.ScenarioSpec` runs one transaction through
one commit protocol and reduces to a
:class:`~repro.engine.summary.RunSummary`.  Trace-derived measures apply to
this kind only (the other kinds never build a per-run trace).

Imported lazily by :mod:`repro.engine.registry` (it is listed in
``BUILTIN_KIND_PROVIDERS``), so importing the registry never drags in the
protocol stack until a lookup actually happens.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.measures import apply_measures
from repro.engine.registry import SpecKind, register_spec_kind
from repro.engine.summary import RunSummary
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario


def _execute(
    protocol: str,
    spec: ScenarioSpec,
    *,
    spec_hash: str,
    measures: Sequence[str] = (),
) -> RunSummary:
    """Run one scenario in a worker and reduce it to a summary.

    The trace is collected only when a measure needs it: summaries read
    protocol-role and database state, never the trace, so measure-free runs
    (the common sweep case) skip per-event record construction entirely.
    """
    measures = tuple(measures)
    result = run_scenario(
        create_protocol(protocol), spec, collect_trace=bool(measures)
    )
    metrics = apply_measures(result, measures)
    return RunSummary.from_result(result, spec_hash=spec_hash, metrics=metrics)


def _make_sink():
    """The kind's default aggregate: per-protocol verdict counts."""
    from repro.engine.sink import VerdictCounterSink

    return VerdictCounterSink()


def _sample_task():
    """One fast, failure-free scenario (for the conformance suite)."""
    from repro.engine.grid import SweepTask

    return SweepTask(protocol="two-phase-commit", spec=ScenarioSpec(n_sites=3))


SCENARIO_KIND = register_spec_kind(
    SpecKind(
        name="scenario",
        spec_type=ScenarioSpec,
        summary_type=RunSummary,
        execute=_execute,
        decode=RunSummary.from_json_dict,
        json_tag=None,  # the legacy untagged payload format
        make_sink=_make_sink,
        sample_task=_sample_task,
    )
)
