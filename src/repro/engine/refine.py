"""Adaptive refinement of verdict boundaries along the partition-onset axis.

The paper's sweeps quantify over *when* the partition strikes; the
interesting physics is concentrated where the verdict flips -- e.g. the
onset instant past which the terminating protocol's sweep turns from
all-abort to all-commit (the commit point becoming established), or where a
blocking protocol starts to block.  A uniform grid pays for every point
between boundaries; :class:`RefinementDriver` instead runs a coarse grid,
finds adjacent onset pairs whose verdict class differs, and recursively
bisects only those intervals until each flip is bracketed to a
``resolution`` floor (0.01 T by default) -- locating every boundary with a
small fraction of the scenarios.

Invariants:

* Every evaluated onset flows through the normal engine path, so a
  :class:`~repro.engine.cache.ResultCache` makes refinement rounds
  incremental: a warm re-refinement executes **zero** new scenarios.
* Onsets are rounded to a fixed decimal precision so bisection midpoints
  hash stably (cache keys are canonical -- see :mod:`repro.engine.hashing`).
* Classification happens in the parent on compact summaries; each bisection
  round batches all pending midpoints into one engine run, so refinement
  parallelizes across lines and intervals.

Paper anchor: Theorem 9's quantification over onset times (Section 5) and
the Section 6 transient rule; the default verdict classes are the Section 2
vocabulary (consistent / blocked / violated) split by outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.scenarios import split_choices
from repro.engine.engine import SweepEngine
from repro.engine.grid import SweepTask
from repro.engine.summary import RunSummary
from repro.protocols.runner import ScenarioSpec
from repro.sim.partition import PartitionSchedule

# Onset times are rounded to this many decimals so bisection midpoints
# produce stable spec hashes across rounds and processes.
TIME_DECIMALS = 6

Classifier = Callable[[RunSummary], str]


def verdict_class(summary: RunSummary) -> str:
    """The default verdict class of one run.

    ``violated`` / ``blocked`` (Section 2's failure vocabulary), with
    consistent runs split into ``consistent:commit`` and
    ``consistent:abort`` -- the flip between those two is the commit-point
    boundary the terminating protocol moves as the onset crosses it.
    """
    if summary.atomicity_violated:
        return "violated"
    if summary.blocked:
        return "blocked"
    if summary.all_committed:
        return "consistent:commit"
    if summary.all_aborted:
        return "consistent:abort"
    return "consistent:mixed"


def verdict_class_with_bound(summary: RunSummary) -> str:
    """Verdict class refined by the decision-time bound, in whole T.

    Appends ``<=kT`` (the worst decision latency rounded up to an integer
    multiple of the maximum message delay) so refinement also brackets the
    onsets where a protocol crosses one of the paper's 2T/3T/5T/6T decision
    bounds, not just where the outcome flips.
    """
    base = verdict_class(summary)
    latency = summary.max_decision_latency()
    if latency is None or summary.blocked:
        return base
    unit = summary.max_delay or 1.0
    # Round before ceiling so 3.0000000001 (float noise) stays in the 3T bin.
    bound = math.ceil(round(latency / unit, TIME_DECIMALS))
    return f"{base}:<={bound}T"


@dataclass(frozen=True)
class OnsetLine:
    """One refinement line: a scenario family parameterized by onset time.

    Everything but the partition onset is fixed -- protocol, system size,
    the simple split ``(g1, g2)``, the vote pattern, permanence
    (``heal_after``) and the base spec -- so the line is a scalar function
    from onset time to verdict class whose discontinuities the driver
    brackets.
    """

    protocol: str
    n_sites: int
    g1: tuple[int, ...]
    g2: tuple[int, ...]
    no_voters: frozenset[int] = frozenset()
    heal_after: Optional[float] = None
    base_spec: ScenarioSpec = field(default_factory=ScenarioSpec)

    def task_at(self, time: float) -> SweepTask:
        """The sweep task of this line at one onset time."""
        time = round(time, TIME_DECIMALS)
        if self.heal_after is None:
            schedule = PartitionSchedule.simple(time, self.g1, self.g2)
        else:
            schedule = PartitionSchedule.transient(
                time, round(time + self.heal_after, TIME_DECIMALS), self.g1, self.g2
            )
        spec = replace(
            self.base_spec,
            n_sites=self.n_sites,
            partition=schedule,
            no_voters=self.no_voters,
        )
        return SweepTask(protocol=self.protocol, spec=spec)

    def label(self) -> str:
        """Compact human-readable identity for tables."""
        split = f"{list(self.g1)}|{list(self.g2)}"
        votes = f" no-voters={sorted(self.no_voters)}" if self.no_voters else ""
        heal = f" heal+{self.heal_after}" if self.heal_after is not None else ""
        return f"{self.protocol} {split}{votes}{heal}"


@dataclass(frozen=True)
class Boundary:
    """One bracketed verdict flip: class changes between ``lo`` and ``hi``."""

    lo: float
    hi: float
    lo_class: str
    hi_class: str

    @property
    def width(self) -> float:
        """Size of the bracketing interval."""
        return round(self.hi - self.lo, TIME_DECIMALS)

    @property
    def midpoint(self) -> float:
        """Best point estimate of the flip (error <= width / 2)."""
        return round((self.lo + self.hi) / 2, TIME_DECIMALS)


@dataclass
class RefinementResult:
    """The outcome of refining one :class:`OnsetLine`.

    ``scenarios_run`` counts every evaluated grid point (executed or served
    from cache); :meth:`uniform_equivalent` is what a uniform grid at the
    same resolution over the same interval would have cost -- the
    refinement-vs-uniform benchmark asserts their ratio.
    """

    line: OnsetLine
    resolution: float
    lo: float
    hi: float
    classes: dict[float, str] = field(default_factory=dict)
    boundaries: list[Boundary] = field(default_factory=list)
    scenarios_run: int = 0
    executed: int = 0
    cache_hits: int = 0
    rounds: int = 0

    def uniform_equivalent(self) -> int:
        """Points of the uniform grid at ``resolution`` over ``[lo, hi]``."""
        return int(round((self.hi - self.lo) / self.resolution)) + 1

    def rows(self) -> list[dict[str, object]]:
        """One table row per located boundary."""
        return [
            {
                "line": self.line.label(),
                "boundary": f"{b.midpoint:g}",
                "interval": f"[{b.lo:g}, {b.hi:g}]",
                "below": b.lo_class,
                "above": b.hi_class,
                "width (xT)": f"{b.width:g}",
            }
            for b in self.boundaries
        ]


class RefinementDriver:
    """Locates verdict boundaries by coarse scan + recursive bisection.

    Args:
        engine: the :class:`~repro.engine.engine.SweepEngine` to execute on
            (its cache makes refinement rounds and re-refinements
            incremental).
        resolution: stop bisecting an interval once it is this narrow
            (default 0.01, i.e. 0.01 T with the default constant-T latency).
        classify: maps a summary to its verdict class; intervals whose
            endpoint classes differ are bisected.  Defaults to
            :func:`verdict_class`.
        max_rounds: hard cap on bisection rounds (a safety net; the
            geometric shrink reaches any practical resolution long before).
    """

    def __init__(
        self,
        engine: Optional[SweepEngine] = None,
        *,
        resolution: float = 0.01,
        classify: Classifier = verdict_class,
        max_rounds: int = 64,
    ) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be > 0, got {resolution}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.engine = engine if engine is not None else SweepEngine(workers=1)
        self.resolution = resolution
        self.classify = classify
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    # single line
    # ------------------------------------------------------------------
    def refine(
        self,
        line: OnsetLine,
        *,
        lo: float = 0.25,
        hi: float = 8.0,
        coarse_step: float = 0.25,
        measures: Sequence[str] = (),
    ) -> RefinementResult:
        """Bracket every verdict flip of ``line`` on ``[lo, hi]``.

        Runs the coarse grid (``coarse_step`` spacing, the classic 0.25 T
        default), then repeatedly bisects every adjacent pair with differing
        classes until each flip interval is at most ``resolution`` wide.
        Each round evaluates all pending midpoints in one engine batch.
        """
        if hi <= lo:
            raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
        if coarse_step <= 0:
            raise ValueError(f"coarse_step must be > 0, got {coarse_step}")
        result = RefinementResult(
            line=line,
            resolution=self.resolution,
            lo=round(lo, TIME_DECIMALS),
            hi=round(hi, TIME_DECIMALS),
        )
        steps = max(1, int(round((hi - lo) / coarse_step)))
        coarse = [round(lo + i * coarse_step, TIME_DECIMALS) for i in range(steps)]
        coarse.append(result.hi)
        self._evaluate(line, sorted(set(coarse)), result, measures)
        for _ in range(self.max_rounds):
            midpoints = [
                round((t1 + t2) / 2, TIME_DECIMALS)
                for t1, t2 in self._flips(result.classes)
                if (t2 - t1) > self.resolution * (1 + 1e-9)
            ]
            midpoints = [t for t in midpoints if t not in result.classes]
            if not midpoints:
                break
            result.rounds += 1
            self._evaluate(line, midpoints, result, measures)
        result.boundaries = [
            Boundary(t1, t2, result.classes[t1], result.classes[t2])
            for t1, t2 in self._flips(result.classes)
        ]
        return result

    # ------------------------------------------------------------------
    # line families
    # ------------------------------------------------------------------
    def refine_partition_boundaries(
        self,
        protocol: str,
        n_sites: int,
        *,
        no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
        heal_after: Optional[float] = None,
        lo: float = 0.25,
        hi: float = 8.0,
        coarse_step: float = 0.25,
        base_spec: Optional[ScenarioSpec] = None,
        splits: Optional[Iterable[tuple[tuple[int, ...], tuple[int, ...]]]] = None,
    ) -> list[RefinementResult]:
        """Refine one line per (simple split x vote pattern) of a protocol.

        The family analogue of the Theorem 9 sweep: instead of a uniform
        onset grid per split, each split/vote line gets its boundaries
        bracketed adaptively.
        """
        base = base_spec if base_spec is not None else ScenarioSpec()
        lines = [
            OnsetLine(
                protocol=protocol,
                n_sites=n_sites,
                g1=g1,
                g2=g2,
                no_voters=frozenset(no_voters),
                heal_after=heal_after,
                base_spec=base,
            )
            for g1, g2 in (splits if splits is not None else split_choices(n_sites))
            for no_voters in no_voter_options
        ]
        return [
            self.refine(line, lo=lo, hi=hi, coarse_step=coarse_step) for line in lines
        ]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        line: OnsetLine,
        times: Sequence[float],
        result: RefinementResult,
        measures: Sequence[str] = (),
    ) -> None:
        """Run one batch of onsets through the engine and classify them."""
        tasks = [line.task_at(t) for t in times]
        sweep = self.engine.run(tasks, measures=measures)
        for time, summary in zip(times, sweep.summaries):
            result.classes[time] = self.classify(summary)
        result.scenarios_run += sweep.total
        result.executed += sweep.executed
        result.cache_hits += sweep.cache_hits

    @staticmethod
    def _flips(classes: dict[float, str]) -> list[tuple[float, float]]:
        """Adjacent onset pairs whose verdict class differs."""
        times = sorted(classes)
        return [
            (t1, t2)
            for t1, t2 in zip(times, times[1:])
            if classes[t1] != classes[t2]
        ]
