"""Composable aggregation sinks for constant-memory streaming sweeps.

A sink consumes :class:`~repro.engine.summary.RunSummary` records one at a
time as :meth:`SweepEngine.run_streaming
<repro.engine.engine.SweepEngine.run_streaming>` delivers them, holding only
its aggregate state.  A million-scenario sweep therefore costs O(sinks)
memory instead of a million-element summary list.

Invariants every sink can rely on (and every sink must preserve):

* **Task order.** The engine delivers summaries in task order regardless of
  worker count or completion order, so sink state after a sweep is a pure
  function of the task list -- ``workers=1`` and ``workers=N`` produce
  identical (for :class:`JsonlSink`, byte-identical) aggregates.
* **Exactly once.** Every task index is delivered exactly once, whether the
  summary was executed or served from the result cache.
* **Bounded state.** The built-in sinks keep counts, sums, histograms or an
  explicitly bounded collection -- never the full summary stream (except
  :class:`ListSink`, which exists precisely to materialize small sweeps, and
  :class:`JsonlSink`, which spills to disk).

Paper anchor: the aggregates mirror the Section 2 resilience vocabulary --
atomicity violations, blocking, and the decision-time bounds of Figs. 5-9.
"""

from __future__ import annotations

import math
import os
import pathlib
from typing import IO, Any, Callable, Iterator, Optional, Union

from repro.analysis.atomicity import AtomicityReport
from repro.analysis.blocking import BlockingReport
from repro.engine.summary import RunSummary, summary_from_json_bytes


class SummarySink:
    """Base class for streaming aggregators.

    Subclasses override :meth:`accept`; :meth:`close` is called once after
    the final summary (even on an empty sweep) and may flush buffers.
    """

    def accept(self, index: int, summary: RunSummary) -> None:
        """Fold one summary (delivered in task order) into the aggregate."""
        raise NotImplementedError

    def close(self) -> None:
        """Finalize the aggregate after the last summary."""


class CallbackSink(SummarySink):
    """Adapts a plain ``fn(index, summary)`` callable into a sink."""

    def __init__(self, fn: Callable[[int, RunSummary], None]) -> None:
        self.fn = fn

    def accept(self, index: int, summary: RunSummary) -> None:
        self.fn(index, summary)


class ListSink(SummarySink):
    """Materializes the summary stream (what ``SweepEngine.run`` returns).

    Deliberately O(n): use it only when the sweep is small enough to hold,
    or in tests that need every summary.
    """

    def __init__(self) -> None:
        self.summaries: list[RunSummary] = []

    def accept(self, index: int, summary: RunSummary) -> None:
        self.summaries.append(summary)


class VerdictCounterSink(SummarySink):
    """Per-protocol counts of the Section 2 verdict classes.

    Tracks, for every protocol seen, the totals of consistent / blocked /
    violated runs plus the all-commit and all-abort splits -- the columns of
    the ``repro sweep`` table -- in O(protocols) memory.
    """

    _FIELDS = ("total", "consistent", "blocked", "violated", "committed", "aborted")

    def __init__(self) -> None:
        self.counts: dict[str, dict[str, int]] = {}

    def accept(self, index: int, summary: RunSummary) -> None:
        counts = self.counts.setdefault(
            summary.protocol, {name: 0 for name in self._FIELDS}
        )
        counts["total"] += 1
        counts[summary.verdict] += 1
        if summary.all_committed:
            counts["committed"] += 1
        if summary.all_aborted:
            counts["aborted"] += 1

    def rows(self) -> list[dict[str, Any]]:
        """One table row per protocol, in first-seen (= task) order."""
        return [
            {
                "protocol": protocol,
                "scenarios": c["total"],
                "violations": c["violated"],
                "blocked": c["blocked"],
                "committed": c["committed"],
                "aborted": c["aborted"],
                "resilient": "yes" if c["violated"] == 0 and c["blocked"] == 0 else "NO",
            }
            for protocol, c in self.counts.items()
        ]


class DecisionTimeHistogramSink(SummarySink):
    """Per-protocol histogram of the slowest decision time, in units of T.

    Each decided run adds its worst per-site decision latency (normalized by
    the scenario's maximum message delay ``T``) to a fixed-width bin;
    undecided (blocked) runs are counted separately.  Memory is O(protocols
    x occupied bins) -- bins are a dict, so a sweep whose latencies cluster
    around the paper's 2T/3T/5T/6T bounds stays tiny.
    """

    def __init__(self, bin_width: float = 0.25) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        self.bin_width = bin_width
        self.bins: dict[str, dict[int, int]] = {}
        self.undecided: dict[str, int] = {}

    def accept(self, index: int, summary: RunSummary) -> None:
        protocol = summary.protocol
        latency = summary.max_decision_latency()
        if latency is None or summary.blocked:
            self.undecided[protocol] = self.undecided.get(protocol, 0) + 1
            return
        unit = summary.max_delay or 1.0
        bin_index = int(math.floor(latency / unit / self.bin_width))
        bins = self.bins.setdefault(protocol, {})
        bins[bin_index] = bins.get(bin_index, 0) + 1

    def histogram(self, protocol: str) -> list[tuple[float, float, int]]:
        """Sorted ``(bin_lo_T, bin_hi_T, count)`` triples for one protocol."""
        bins = self.bins.get(protocol, {})
        return [
            (round(i * self.bin_width, 10), round((i + 1) * self.bin_width, 10), count)
            for i, count in sorted(bins.items())
        ]

    def worst(self, protocol: str) -> Optional[float]:
        """Upper edge (in T) of the worst occupied bin, or ``None``."""
        bins = self.bins.get(protocol)
        if not bins:
            return None
        return round((max(bins) + 1) * self.bin_width, 10)


class ViolationCollectorSink(SummarySink):
    """Collects the summaries of atomicity-violating runs, up to a limit.

    Violations are the paper's headline failure (Lemma 3, SEC3); keeping the
    offending summaries (not just a count) preserves the witnesses needed to
    reproduce them, while ``limit`` keeps a pathological sweep from undoing
    the constant-memory guarantee.  ``total`` always counts every violation.
    """

    def __init__(self, limit: Optional[int] = 100) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0 or None, got {limit}")
        self.limit = limit
        self.total = 0
        self.violations: list[RunSummary] = []

    def accept(self, index: int, summary: RunSummary) -> None:
        if not summary.atomicity_violated:
            return
        self.total += 1
        if self.limit is None or len(self.violations) < self.limit:
            self.violations.append(summary)


class AtomicitySink(SummarySink):
    """Streams summaries into an :class:`~repro.analysis.atomicity.AtomicityReport`.

    The streamed report is identical to ``summarize_runs`` over the
    materialized list (same fold, same order).
    """

    def __init__(self, protocol: Optional[str] = None, *, max_witnesses: int = 5) -> None:
        self.max_witnesses = max_witnesses
        self.report = AtomicityReport(protocol=protocol or "unknown")

    def accept(self, index: int, summary: RunSummary) -> None:
        self.report.observe(summary, max_witnesses=self.max_witnesses)


class BlockingSink(SummarySink):
    """Streams summaries into a :class:`~repro.analysis.blocking.BlockingReport`."""

    def __init__(self, protocol: Optional[str] = None) -> None:
        self.report = BlockingReport(protocol=protocol or "unknown")

    def accept(self, index: int, summary: RunSummary) -> None:
        self.report.observe(summary)


class JsonlSink(SummarySink):
    """Spills every summary to disk as one canonical-JSON line.

    Because the engine delivers in task order, the spill file is
    byte-identical across worker counts and re-runs -- it doubles as a
    durable, diffable record of a sweep.  :func:`read_jsonl` round-trips it.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = pathlib.Path(path)
        self.count = 0
        self._handle: Optional[IO[bytes]] = None
        self._truncated = False

    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # First open truncates (a sink is one spill); reuse across
            # several sweeps appends, keeping `count` == lines in the file.
            self._handle = open(self.path, "ab" if self._truncated else "wb")
            self._truncated = True
        return self._handle

    def accept(self, index: int, summary: RunSummary) -> None:
        self._ensure_open().write(summary.to_json_bytes() + b"\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        elif not self._truncated:
            # Nothing was ever written (empty sweep, or a sweep that failed
            # before the first delivery): record that the sink closed by
            # ensuring the file exists, but never clobber a previous spill
            # at the same path.
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.touch()


def read_jsonl(path: Union[str, os.PathLike]) -> Iterator[RunSummary]:
    """Stream the summaries back out of a :class:`JsonlSink` spill file.

    Each line's ``kind`` tag selects the registered spec kind
    (:mod:`repro.engine.registry`) whose codec rebuilds the record, so a
    spill can mix any set of registered summary types.
    """
    with open(path, "rb") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield summary_from_json_bytes(line)
