"""Distributed sweep sharding: partition a task list, spill, merge.

A sweep that outgrows one machine splits into *shards*: deterministic
slices of the task list that any number of machines (or CI jobs) run
independently, each spilling its results to a self-describing JSONL file.
:func:`merge_shards` then folds any set of shard spills -- in global task
order -- through the registered spec kinds' aggregation sinks, producing
aggregates (and an optional merged JSONL spill) **byte-identical** to a
single-machine streaming run of the whole task list.

Design rules:

* **Membership is content-addressed.**  A task belongs to shard
  ``int(spec_hash[:16], 16) % shard_count`` (:func:`shard_of`), so the
  partition is stable under task-list reordering and is
  cache-compatible: shards share the same ``(spec-hash, seed)`` result
  cache keys as single-machine runs, and a warm cache serves any shard.
* **Spills are self-describing.**  The first line of a spill is a header
  (shard index / count, total task count, spec kinds); every following
  line wraps one summary payload with its *global* task index.  Merging
  needs nothing but the spill files themselves.
* **Merge = reorder + fold.**  Records are sorted by global task index and
  delivered exactly once to each kind's registered sink, which is the same
  fold a single-machine :meth:`~repro.engine.engine.SweepEngine.run_streaming`
  performs -- hence byte-identical aggregates and spills.

Every spec kind registered with :mod:`repro.engine.registry` shards and
merges with no code here changing; the CI pipeline's matrix-sharded sweep
is the first multi-machine consumer.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, IO, Mapping, Optional, Sequence, Union

from repro.core.canonical import canonical_json_bytes
from repro.engine.engine import StreamStats, SweepEngine, TaskBatch
from repro.engine.grid import SweepTask
from repro.engine.registry import kind_for_payload, kind_for_spec
from repro.engine.sink import SummarySink
from repro.obs.metrics import COUNT_BUCKETS, get_active as _active_metrics

#: Version stamp of the spill format; bumped on incompatible layout changes.
SHARD_FORMAT = 1

_HEADER_KIND = "shard-header"


class ShardFormatError(ValueError):
    """A spill file (or a set of them) violates the shard format contract."""


def shard_of(spec_hash: str, shard_count: int) -> int:
    """The shard owning one task, derived from its stable spec hash alone.

    Content-addressed assignment keeps the partition independent of task
    order: reordering or interleaving grids never moves a task between
    shards, and the assignment is reproducible on any machine.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    return int(spec_hash[:16], 16) % shard_count


def shard_tasks(
    tasks: TaskBatch, shard_index: int, shard_count: int
) -> list[tuple[int, SweepTask]]:
    """The ``(global index, task)`` pairs belonging to one shard.

    Global indices refer to positions in the *full* task list; the merge
    step uses them to restore global task order across shards.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    task_list = SweepEngine._materialize(tasks)
    return [
        (index, task)
        for index, task in enumerate(task_list)
        if shard_of(task.spec_hash, shard_count) == shard_index
    ]


@dataclass(frozen=True)
class ShardHeader:
    """The self-describing first line of a shard spill."""

    shard_index: int
    shard_count: int
    total_tasks: int
    shard_tasks: int
    spec_kinds: tuple[str, ...]
    format: int = SHARD_FORMAT

    def to_json_dict(self) -> dict[str, Any]:
        """The header's JSON payload (tagged so readers can recognize it)."""
        return {
            "kind": _HEADER_KIND,
            "format": self.format,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "total_tasks": self.total_tasks,
            "shard_tasks": self.shard_tasks,
            "spec_kinds": list(self.spec_kinds),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ShardHeader":
        """Rebuild a header, rejecting future format versions."""
        if payload.get("kind") != _HEADER_KIND:
            raise ShardFormatError(
                f"expected a {_HEADER_KIND!r} payload, got kind={payload.get('kind')!r}"
            )
        if payload.get("format") != SHARD_FORMAT:
            raise ShardFormatError(
                f"unsupported shard format {payload.get('format')!r} "
                f"(this build reads format {SHARD_FORMAT})"
            )
        counts = ("shard_index", "shard_count", "total_tasks", "shard_tasks")
        for name in counts:
            if not isinstance(payload.get(name), int):
                raise ShardFormatError(
                    f"malformed {_HEADER_KIND}: {name}={payload.get(name)!r} "
                    f"(expected an integer)"
                )
        if not isinstance(payload.get("spec_kinds"), (list, tuple)):
            raise ShardFormatError(
                f"malformed {_HEADER_KIND}: "
                f"spec_kinds={payload.get('spec_kinds')!r} (expected a list)"
            )
        return cls(
            shard_index=payload["shard_index"],
            shard_count=payload["shard_count"],
            total_tasks=payload["total_tasks"],
            shard_tasks=payload["shard_tasks"],
            spec_kinds=tuple(payload["spec_kinds"]),
            format=payload["format"],
        )


class _ShardSpillSink(SummarySink):
    """Writes one shard's spill: a header line, then indexed summary lines.

    The engine delivers summaries by *local* (within-shard) index; this sink
    maps them back to global task indices so the merge can restore global
    order.  An empty shard still produces a header-only spill on close.

    The spill is written to a temporary sibling and atomically renamed
    into place on :meth:`close`, so a killed ``run_shard`` never leaves a
    truncated spill at the final path that would only fail later, at merge
    time: the spill either exists complete or not at all.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        header: ShardHeader,
        global_indices: Sequence[int],
    ) -> None:
        self.path = pathlib.Path(path)
        self.header = header
        self.global_indices = list(global_indices)
        self._tmp_path = self.path.parent / f".{self.path.name}.tmp-{os.getpid()}"
        self._handle: Optional[IO[bytes]] = None

    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._tmp_path, "wb")
            self._handle.write(canonical_json_bytes(self.header.to_json_dict()) + b"\n")
        return self._handle

    def accept(self, index: int, summary) -> None:
        record = {
            "index": self.global_indices[index],
            "summary": summary.to_json_dict(),
        }
        data = canonical_json_bytes(record) + b"\n"
        metrics = _active_metrics()
        if metrics is None:
            self._ensure_open().write(data)
            return
        before = time.perf_counter()
        self._ensure_open().write(data)
        metrics.histogram("shard.spill.write_seconds").observe(
            time.perf_counter() - before
        )
        metrics.counter("shard.spill.records").inc()
        metrics.counter("shard.spill.bytes_written").inc(len(data))

    def close(self) -> None:
        handle = self._ensure_open()  # header even when nothing was delivered
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        self._handle = None
        os.replace(self._tmp_path, self.path)


def run_shard(
    tasks: TaskBatch,
    shard_index: int,
    shard_count: int,
    path: Union[str, os.PathLike],
    *,
    engine: Optional[SweepEngine] = None,
    measures: Sequence[str] = (),
) -> StreamStats:
    """Execute one shard of ``tasks`` and spill it to ``path``.

    The shard's slice runs through the normal streaming engine path
    (worker pool, result cache, in-order delivery), so a warm cache makes
    shard re-runs incremental exactly like whole sweeps.  Returns the
    shard run's :class:`~repro.engine.engine.StreamStats`.
    """
    task_list = SweepEngine._materialize(tasks)
    selected = shard_tasks(task_list, shard_index, shard_count)
    engine = engine or SweepEngine()
    spec_kinds = tuple(
        sorted({kind_for_spec(task.spec).name for _, task in selected})
    )
    header = ShardHeader(
        shard_index=shard_index,
        shard_count=shard_count,
        total_tasks=len(task_list),
        shard_tasks=len(selected),
        spec_kinds=spec_kinds,
    )
    metrics = engine.metrics
    if metrics is not None:
        metrics.counter("shard.tasks").inc(len(selected))
        # Skew: this shard's load relative to a perfectly even partition
        # (1.0 = exactly its fair share).  Content-addressed assignment is
        # balanced only in expectation; this gauge shows the actual spread.
        ideal = len(task_list) / shard_count
        if ideal > 0:
            metrics.gauge("shard.skew").set(len(selected) / ideal)
    spill = _ShardSpillSink(path, header, [index for index, _ in selected])
    return engine.run_streaming(
        [task for _, task in selected], sinks=spill, measures=measures
    )


def read_shard(
    path: Union[str, os.PathLike]
) -> tuple[ShardHeader, list[tuple[int, dict[str, Any]]]]:
    """Parse one spill into its header and ``(global index, payload)`` pairs.

    Payloads stay as JSON dicts (decode them through
    :func:`~repro.engine.summary.summary_from_json_dict` / the registry
    when objects are needed).  Raises :class:`ShardFormatError` on a
    missing or malformed header, malformed records, out-of-range or
    duplicated indices, or a record count disagreeing with the header
    (e.g. a truncated artifact download).
    """
    path = pathlib.Path(path)
    header: Optional[ShardHeader] = None
    records: list[tuple[int, dict[str, Any]]] = []
    seen: set[int] = set()
    with open(path, "rb") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
            except ValueError as exc:
                raise ShardFormatError(f"{path}:{number}: not JSON ({exc})") from exc
            if header is None:
                header = ShardHeader.from_json_dict(payload)
                continue
            if "index" not in payload or "summary" not in payload:
                raise ShardFormatError(
                    f"{path}:{number}: record lacks index/summary keys"
                )
            index = payload["index"]
            if not isinstance(index, int):
                raise ShardFormatError(
                    f"{path}:{number}: task index {index!r} is not an integer"
                )
            if not 0 <= index < header.total_tasks:
                raise ShardFormatError(
                    f"{path}:{number}: task index {index} outside "
                    f"[0, {header.total_tasks})"
                )
            if index in seen:
                # Without this check a duplicated index can mask a missing
                # one: the record count still matches the header, and the
                # corruption only surfaces (or worse, doesn't) at merge time.
                raise ShardFormatError(
                    f"{path}:{number}: task index {index} appears twice in "
                    f"one spill"
                )
            seen.add(index)
            records.append((index, payload["summary"]))
    if header is None:
        raise ShardFormatError(f"{path}: empty spill (no {_HEADER_KIND} line)")
    if len(records) != header.shard_tasks:
        raise ShardFormatError(
            f"{path}: header promises {header.shard_tasks} record(s) "
            f"but {len(records)} were read (truncated spill?)"
        )
    return header, records


@dataclass
class MergeResult:
    """The outcome of folding a set of shard spills back together.

    ``kind_sinks`` maps each spec kind seen in the spills to its registered
    default sink, fully folded in global task order -- the same aggregates
    a single-machine streaming run of the whole task list would leave.
    """

    headers: list[ShardHeader]
    records: int
    kind_sinks: dict[str, Any]
    jsonl_path: Optional[pathlib.Path] = None
    elapsed: float = 0.0

    @property
    def total_tasks(self) -> int:
        """The size of the full (unsharded) task list."""
        return self.headers[0].total_tasks if self.headers else 0

    @property
    def shard_count(self) -> int:
        """The shard count the spills were produced with."""
        return self.headers[0].shard_count if self.headers else 0


def merge_shards(
    paths: Sequence[Union[str, os.PathLike]],
    *,
    sinks: Sequence[SummarySink] = (),
    jsonl: Union[str, os.PathLike, None] = None,
    require_complete: bool = True,
) -> MergeResult:
    """Fold shard spills into single-machine-identical aggregates.

    Records from every spill are sorted by global task index and delivered
    exactly once to (a) the registered default sink of each record's spec
    kind, (b) every extra sink in ``sinks``, and (c) an optional merged
    JSONL spill at ``jsonl`` whose bytes equal a single-machine
    :class:`~repro.engine.sink.JsonlSink` spill of the same task list.

    With ``require_complete`` (the default), the spill set must cover every
    shard and every task index exactly once; errors name the missing or
    duplicated shards.  Pass ``require_complete=False`` to fold a partial
    set (aggregates then cover only the supplied shards).
    """
    if not paths:
        raise ShardFormatError("no shard spills to merge")
    started = time.perf_counter()
    metrics = _active_metrics()
    headers: list[ShardHeader] = []
    merged: list[tuple[int, dict[str, Any]]] = []
    for path in paths:
        if metrics is None:
            header, records = read_shard(path)
        else:
            before = time.perf_counter()
            header, records = read_shard(path)
            metrics.histogram("merge.read_seconds").observe(
                time.perf_counter() - before
            )
            metrics.histogram(
                "merge.records_per_shard", bounds=COUNT_BUCKETS
            ).observe(float(len(records)))
        if headers:
            first = headers[0]
            for field_name in ("shard_count", "total_tasks"):
                if getattr(header, field_name) != getattr(first, field_name):
                    raise ShardFormatError(
                        f"{path}: {field_name}={getattr(header, field_name)} "
                        f"disagrees with {paths[0]} "
                        f"({field_name}={getattr(first, field_name)})"
                    )
            if header.shard_index in {h.shard_index for h in headers}:
                raise ShardFormatError(
                    f"{path}: shard {header.shard_index} appears twice in the "
                    f"merge set"
                )
        headers.append(header)
        merged.extend(records)
    if require_complete:
        present = {header.shard_index for header in headers}
        missing = sorted(set(range(headers[0].shard_count)) - present)
        if missing:
            raise ShardFormatError(
                f"incomplete merge set: missing shard(s) "
                f"{', '.join(map(str, missing))} of {headers[0].shard_count} "
                f"(pass require_complete=False to merge a partial set)"
            )
    seen: set[int] = set()
    for index, _ in merged:
        if index in seen:
            raise ShardFormatError(f"task index {index} appears in two records")
        seen.add(index)
    if require_complete:
        # Shard coverage alone is not enough: spills re-run against a
        # different grid of the same size are internally consistent yet
        # jointly incomplete.  Every task index must be present.
        missing_tasks = sorted(set(range(headers[0].total_tasks)) - seen)
        if missing_tasks:
            preview = ", ".join(map(str, missing_tasks[:5]))
            if len(missing_tasks) > 5:
                preview += ", ..."
            raise ShardFormatError(
                f"incomplete merge set: {len(missing_tasks)} of "
                f"{headers[0].total_tasks} task(s) have no record "
                f"(missing indices {preview}); were the shards run against "
                f"the same grid?"
            )
    merged.sort(key=lambda record: record[0])

    kind_sinks: dict[str, Any] = {}
    extra = list(sinks)
    jsonl_path = pathlib.Path(jsonl) if jsonl is not None else None
    handle: Optional[IO[bytes]] = None
    if jsonl_path is not None:
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(jsonl_path, "wb")
    fold_started = time.perf_counter()
    try:
        for index, payload in merged:
            kind = kind_for_payload(payload)
            summary = kind.decode(payload)
            if kind.name not in kind_sinks and kind.make_sink is not None:
                kind_sinks[kind.name] = kind.make_sink()
            sink = kind_sinks.get(kind.name)
            if sink is not None:
                sink.accept(index, summary)
            for extra_sink in extra:
                extra_sink.accept(index, summary)
            if handle is not None:
                handle.write(summary.to_json_bytes() + b"\n")
    finally:
        if handle is not None:
            handle.close()
        for sink in (*kind_sinks.values(), *extra):
            sink.close()
    if metrics is not None:
        metrics.histogram("merge.fold_seconds").observe(
            time.perf_counter() - fold_started
        )
        metrics.counter("merge.records").inc(len(merged))
        metrics.counter("merge.shards").inc(len(headers))
        counts = [header.shard_tasks for header in headers]
        mean = sum(counts) / len(counts)
        if mean > 0:
            # Skew across the merged shards: heaviest shard over the mean
            # (1.0 = perfectly even).  The number that says whether the
            # matrix's wall clock is gated on one overloaded shard.
            metrics.gauge("merge.skew").set(max(counts) / mean)
    return MergeResult(
        headers=headers,
        records=len(merged),
        kind_sinks=kind_sinks,
        jsonl_path=jsonl_path,
        elapsed=time.perf_counter() - started,
    )
