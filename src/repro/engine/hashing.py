"""Stable content hashing of sweep tasks.

The result cache and the incremental re-sweep logic key every run by
``(spec-hash, seed)``, so the hash must be *stable*: independent of process,
``PYTHONHASHSEED``, dict insertion order and worker count.  The canonical
form below therefore never calls ``hash()``, sorts every unordered
collection, and spells out dataclasses field by field.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Mapping

from repro.protocols.runner import ScenarioSpec

#: Per-dataclass field-name cache: ``dataclasses.fields()`` rebuilds its
#: tuple on every call, and canonicalization visits the same few spec
#: classes thousands of times per sweep.  Values are
#: ``(names, frozen, optional_defaults)``; frozen dataclasses are
#: additionally safe to memoize by value below.
#:
#: ``optional_defaults`` maps the names of *hash-optional* fields (declared
#: with ``field(metadata={"hash_optional": True})``) to their defaults.  A
#: hash-optional field still at its default is omitted from the canonical
#: text entirely, so specs that grow new optional knobs (``faults``,
#: ``lock_transport``) keep hashing byte-identically to the format that
#: predates them -- existing caches, golden tables and shard spills carry
#: over unchanged.
_FIELD_NAMES: dict[type, tuple[tuple[str, ...], bool, dict[str, Any]]] = {}

#: Canonical forms of frozen, hashable dataclass values.  A partition sweep
#: shares the same ``PartitionSpec``/``PartitionSchedule`` structures across
#: many tasks, so their canonical text is computed once.  Bounded so a
#: pathological sweep cannot grow it without limit.
_FROZEN_MEMO: dict[Any, str] = {}
_FROZEN_MEMO_MAX = 4096


def canonical(value: Any) -> str:
    """A deterministic string form of ``value`` for hashing.

    Supports the vocabulary of :class:`~repro.protocols.runner.ScenarioSpec`:
    primitives, enums (by class and member name), sets/frozensets (sorted),
    mappings (sorted by key), sequences, dataclasses (by field) and plain
    objects such as the latency models (by class name + sorted ``__dict__``).
    """
    # Exact-type checks first: the bulk of any spec is primitives, and an
    # exact int/str/float/bool is never an Enum, so this is both the fast
    # path and semantically identical to the isinstance cascade below
    # (which still handles subclasses).
    tv = type(value)
    if tv is str or tv is int or tv is bool:
        return repr(value)
    if tv is float:
        # Integral floats collapse to their int form so numerically equal
        # specs (horizon=8 vs horizon=8.0) share one cache key; repr()
        # round-trips every other float exactly.
        if value.is_integer():
            return repr(int(value))
        return repr(value)
    if value is None:
        return "None"
    if isinstance(value, enum.Enum):
        # Before the primitive check: IntEnum-style members would otherwise
        # collapse into their value and collide with plain ints.
        return f"{tv.__name__}.{value.name}"
    if isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        if value.is_integer():
            return repr(int(value))
        return repr(value)
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(v) for v in value)) + "}"
    if isinstance(value, Mapping):
        items = sorted((canonical(k), canonical(v)) for k, v in value.items())
        return "m{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    entry = _FIELD_NAMES.get(tv)
    if entry is None and dataclasses.is_dataclass(value) and not isinstance(value, type):
        names = tuple(f.name for f in dataclasses.fields(value))
        optional = {
            f.name: f.default
            for f in dataclasses.fields(value)
            if f.metadata.get("hash_optional")
            and f.default is not dataclasses.MISSING
        }
        entry = (names, bool(tv.__dataclass_params__.frozen), optional)
        _FIELD_NAMES[tv] = entry
    if entry is not None:
        names, frozen, optional = entry
        if frozen:
            # Frozen dataclasses cannot change after construction, and their
            # generated __eq__ never matches a different class, so the value
            # itself is a sound memo key (unhashable fields opt out).
            try:
                cached = _FROZEN_MEMO.get(value)
            except TypeError:
                frozen = False
            else:
                if cached is not None:
                    return cached
        fields = ",".join(
            f"{name}={canonical(field_value)}"
            for name in names
            for field_value in (getattr(value, name),)
            if not (name in optional and field_value == optional[name])
        )
        text = f"{tv.__name__}({fields})"
        if frozen:
            if len(_FROZEN_MEMO) >= _FROZEN_MEMO_MAX:
                _FROZEN_MEMO.clear()
            _FROZEN_MEMO[value] = text
        return text
    # Plain objects (latency models): class name plus public-ish state.
    state = getattr(value, "__dict__", None)
    if state is not None:
        items = sorted((k, canonical(v)) for k, v in state.items())
        body = ",".join(f"{k}={v}" for k, v in items)
        return f"{tv.__name__}({body})"
    raise TypeError(f"cannot canonicalize {value!r} for hashing")


def spec_hash(protocol: str, spec: ScenarioSpec) -> str:
    """The stable hash of one (protocol, scenario) sweep point."""
    text = f"protocol={protocol};{canonical(spec)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
