"""Stable content hashing of sweep tasks.

The result cache and the incremental re-sweep logic key every run by
``(spec-hash, seed)``, so the hash must be *stable*: independent of process,
``PYTHONHASHSEED``, dict insertion order and worker count.  The canonical
form below therefore never calls ``hash()``, sorts every unordered
collection, and spells out dataclasses field by field.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Mapping

from repro.protocols.runner import ScenarioSpec


def canonical(value: Any) -> str:
    """A deterministic string form of ``value`` for hashing.

    Supports the vocabulary of :class:`~repro.protocols.runner.ScenarioSpec`:
    primitives, enums (by class and member name), sets/frozensets (sorted),
    mappings (sorted by key), sequences, dataclasses (by field) and plain
    objects such as the latency models (by class name + sorted ``__dict__``).
    """
    if isinstance(value, enum.Enum):
        # Before the primitive check: IntEnum-style members would otherwise
        # collapse into their value and collide with plain ints.
        return f"{type(value).__name__}.{value.name}"
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        # Integral floats collapse to their int form so numerically equal
        # specs (horizon=8 vs horizon=8.0) share one cache key; repr()
        # round-trips every other float exactly.
        if value.is_integer():
            return repr(int(value))
        return repr(value)
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(v) for v in value)) + "}"
    if isinstance(value, Mapping):
        items = sorted((canonical(k), canonical(v)) for k, v in value.items())
        return "m{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    # Plain objects (latency models): class name plus public-ish state.
    state = getattr(value, "__dict__", None)
    if state is not None:
        items = sorted((k, canonical(v)) for k, v in state.items())
        body = ",".join(f"{k}={v}" for k, v in items)
        return f"{type(value).__name__}({body})"
    raise TypeError(f"cannot canonicalize {value!r} for hashing")


def spec_hash(protocol: str, spec: ScenarioSpec) -> str:
    """The stable hash of one (protocol, scenario) sweep point."""
    text = f"protocol={protocol};{canonical(spec)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
