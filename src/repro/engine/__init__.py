"""Parallel sweep engine.

The engine is the scaling substrate of the repository: it takes a
:class:`~repro.engine.grid.ScenarioGrid` (a declarative cartesian product of
protocol x partition schedule x crash schedule x latency model x no-voter
set), partitions the grid into chunks and executes them across a
``concurrent.futures.ProcessPoolExecutor`` (or a deterministic in-process
loop for ``workers=1``), streaming back compact, picklable
:class:`~repro.engine.summary.RunSummary` records.  An on-disk result cache
keyed by ``(spec-hash, seed)`` makes re-sweeps incremental.

Every experiment sweep, benchmark and the ``repro sweep`` CLI subcommand run
on top of this package.
"""

from repro.engine.cache import ResultCache
from repro.engine.engine import SweepEngine, SweepResult
from repro.engine.grid import ScenarioGrid, SweepTask, tasks_from_specs
from repro.engine.hashing import spec_hash
from repro.engine.measures import MEASURES, register_measure
from repro.engine.summary import RunSummary

__all__ = [
    "MEASURES",
    "ResultCache",
    "RunSummary",
    "ScenarioGrid",
    "SweepEngine",
    "SweepResult",
    "SweepTask",
    "register_measure",
    "spec_hash",
    "tasks_from_specs",
]
