"""Parallel sweep engine.

The engine is the scaling substrate of the repository: it takes a
:class:`~repro.engine.grid.ScenarioGrid` (a declarative cartesian product of
protocol x partition schedule x crash schedule x latency model x no-voter
set), partitions the grid into chunks and executes them across a
``concurrent.futures.ProcessPoolExecutor`` (or a deterministic in-process
loop for ``workers=1``), streaming back compact, picklable
:class:`~repro.engine.summary.RunSummary` records.  An on-disk result cache
keyed by ``(spec-hash, seed)`` makes re-sweeps incremental.

Summaries either materialize into a list (:meth:`SweepEngine.run
<repro.engine.engine.SweepEngine.run>`) or stream in task order through
composable :mod:`~repro.engine.sink` aggregators
(:meth:`SweepEngine.run_streaming
<repro.engine.engine.SweepEngine.run_streaming>`) so arbitrarily large
sweeps run in O(sinks) memory.  :mod:`~repro.engine.refine` adds adaptive
onset-boundary refinement on top: coarse scan, then bisection of only the
intervals where the verdict class flips.

Scenario families are open: :mod:`~repro.engine.registry` is a spec-kind
registration point (spec dataclass + task executor + summary codec +
default sink factory) the engine, cache, sinks and CLI all resolve
through, so new spec types plug in with one ``register_spec_kind`` call.
:mod:`~repro.engine.shard` distributes a sweep across machines: a
deterministic, content-addressed shard partition, self-describing JSONL
spills, and a merge that reproduces single-machine aggregates
byte-identically.  :mod:`~repro.engine.resultlog` makes that pipeline
durable: shards append atomically-sealed segments to a shared log
directory (interrupted shards resume from their last sealed segment) and
:func:`~repro.engine.resultlog.merge_result_log` folds the log through
checkpointed, outbox-committed batches so an interrupted merge resumes
exactly-once.

Every experiment sweep, benchmark and the ``repro sweep`` / ``repro
boundaries`` / ``repro shard`` / ``repro merge`` CLI subcommands run on
top of this package.
"""

from repro.engine.cache import ResultCache
from repro.engine.engine import StreamStats, SweepEngine, SweepResult, execute_task
from repro.engine.grid import ScenarioGrid, SweepTask, tasks_from_specs
from repro.engine.hashing import spec_hash
from repro.engine.measures import MEASURES, register_measure
from repro.engine.refine import (
    Boundary,
    OnsetLine,
    RefinementDriver,
    RefinementResult,
    verdict_class,
    verdict_class_with_bound,
)
from repro.engine.registry import (
    SpecKind,
    UnknownSpecKindError,
    kind_by_name,
    kind_for_payload,
    kind_for_spec,
    kind_for_tag,
    register_spec_kind,
    registered_kinds,
    unregister_spec_kind,
)
from repro.engine.resultlog import (
    InjectedMergeCrash,
    LogMergeResult,
    MergeCursor,
    ResultLogError,
    ResultLogWriter,
    ShardLogResult,
    discover_segments,
    merge_result_log,
    read_segment,
    run_shard_log,
    write_segment,
)
from repro.engine.shard import (
    MergeResult,
    ShardFormatError,
    ShardHeader,
    merge_shards,
    read_shard,
    run_shard,
    shard_of,
    shard_tasks,
)
from repro.engine.sink import (
    AtomicitySink,
    BlockingSink,
    CallbackSink,
    DecisionTimeHistogramSink,
    JsonlSink,
    ListSink,
    SummarySink,
    VerdictCounterSink,
    ViolationCollectorSink,
    read_jsonl,
)
from repro.engine.summary import RunSummary, summary_from_json_dict

__all__ = [
    "MEASURES",
    "AtomicitySink",
    "BlockingSink",
    "Boundary",
    "CallbackSink",
    "DecisionTimeHistogramSink",
    "InjectedMergeCrash",
    "JsonlSink",
    "ListSink",
    "LogMergeResult",
    "MergeCursor",
    "MergeResult",
    "OnsetLine",
    "RefinementDriver",
    "RefinementResult",
    "ResultCache",
    "ResultLogError",
    "ResultLogWriter",
    "RunSummary",
    "ScenarioGrid",
    "ShardFormatError",
    "ShardHeader",
    "ShardLogResult",
    "SpecKind",
    "StreamStats",
    "SummarySink",
    "SweepEngine",
    "SweepResult",
    "SweepTask",
    "UnknownSpecKindError",
    "VerdictCounterSink",
    "ViolationCollectorSink",
    "discover_segments",
    "execute_task",
    "kind_by_name",
    "kind_for_payload",
    "kind_for_spec",
    "kind_for_tag",
    "merge_result_log",
    "merge_shards",
    "read_jsonl",
    "read_segment",
    "read_shard",
    "register_measure",
    "register_spec_kind",
    "registered_kinds",
    "run_shard",
    "run_shard_log",
    "shard_of",
    "shard_tasks",
    "write_segment",
    "spec_hash",
    "summary_from_json_dict",
    "tasks_from_specs",
    "unregister_spec_kind",
    "verdict_class",
    "verdict_class_with_bound",
]
