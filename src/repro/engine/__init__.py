"""Parallel sweep engine.

The engine is the scaling substrate of the repository: it takes a
:class:`~repro.engine.grid.ScenarioGrid` (a declarative cartesian product of
protocol x partition schedule x crash schedule x latency model x no-voter
set), partitions the grid into chunks and executes them across a
``concurrent.futures.ProcessPoolExecutor`` (or a deterministic in-process
loop for ``workers=1``), streaming back compact, picklable
:class:`~repro.engine.summary.RunSummary` records.  An on-disk result cache
keyed by ``(spec-hash, seed)`` makes re-sweeps incremental.

Summaries either materialize into a list (:meth:`SweepEngine.run
<repro.engine.engine.SweepEngine.run>`) or stream in task order through
composable :mod:`~repro.engine.sink` aggregators
(:meth:`SweepEngine.run_streaming
<repro.engine.engine.SweepEngine.run_streaming>`) so arbitrarily large
sweeps run in O(sinks) memory.  :mod:`~repro.engine.refine` adds adaptive
onset-boundary refinement on top: coarse scan, then bisection of only the
intervals where the verdict class flips.

Every experiment sweep, benchmark and the ``repro sweep`` / ``repro
boundaries`` CLI subcommands run on top of this package.
"""

from repro.engine.cache import ResultCache
from repro.engine.engine import StreamStats, SweepEngine, SweepResult
from repro.engine.grid import ScenarioGrid, SweepTask, tasks_from_specs
from repro.engine.hashing import spec_hash
from repro.engine.measures import MEASURES, register_measure
from repro.engine.refine import (
    Boundary,
    OnsetLine,
    RefinementDriver,
    RefinementResult,
    verdict_class,
    verdict_class_with_bound,
)
from repro.engine.sink import (
    AtomicitySink,
    BlockingSink,
    CallbackSink,
    DecisionTimeHistogramSink,
    JsonlSink,
    ListSink,
    SummarySink,
    ThroughputSink,
    VerdictCounterSink,
    ViolationCollectorSink,
    read_jsonl,
)
from repro.engine.summary import RunSummary, summary_from_json_dict

__all__ = [
    "MEASURES",
    "AtomicitySink",
    "BlockingSink",
    "Boundary",
    "CallbackSink",
    "DecisionTimeHistogramSink",
    "JsonlSink",
    "ListSink",
    "OnsetLine",
    "RefinementDriver",
    "RefinementResult",
    "ResultCache",
    "RunSummary",
    "ScenarioGrid",
    "StreamStats",
    "SummarySink",
    "SweepEngine",
    "SweepResult",
    "SweepTask",
    "ThroughputSink",
    "VerdictCounterSink",
    "ViolationCollectorSink",
    "read_jsonl",
    "register_measure",
    "spec_hash",
    "summary_from_json_dict",
    "tasks_from_specs",
    "verdict_class",
    "verdict_class_with_bound",
]
