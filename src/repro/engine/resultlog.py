"""Durable, log-structured result log with incremental, resumable merge.

:mod:`repro.engine.shard`'s one-shot spills make sharded runs all-or-nothing:
a killed shard re-executes from scratch and an interrupted ``repro merge``
restarts from record zero.  This module replaces the spill with the
outbox / commit-offset pattern (the Kafka notes ROADMAP item 3 cites):

* **Sealed segments.**  A shard appends fixed-size *segment* files to a
  shared log directory.  Each segment is a header line, up to
  ``segment_records`` record lines, and a footer carrying the record count
  and a SHA-256 content hash.  Segments are written to a temporary name and
  atomically renamed into place only after the footer is fsynced, so a
  crash never leaves an ambiguous artifact: a file matching the segment
  name pattern is complete and verifiable, anything else is ignorable
  debris.
* **Producer resume.**  :func:`run_shard_log` scans the shard's sealed
  segments before executing anything and runs only the tasks with no
  sealed record yet -- a killed shard restarts from its last sealed
  segment instead of from scratch, with or without a result cache.
* **Consumer offsets.**  :func:`merge_result_log` folds records in global
  task order through the registered spec-kind sinks (the exact fold of a
  single-machine streaming run) and commits a :class:`MergeCursor`
  checkpoint -- records folded, merged-JSONL byte offset, a rolling hash
  of the folded prefix, and per ``(shard, segment)`` consumed offsets --
  *after* each batch is folded and flushed, outbox-style.  A merge killed
  at any point resumes from the checkpoint: the already-merged JSONL bytes
  are kept (truncated back to the committed offset), sink aggregates are
  rebuilt by replaying the committed prefix from the log (a decode-only
  replay; no scenario re-executes), and the fold continues -- producing
  aggregates and JSONL byte-identical to an uninterrupted run.
* **Exactly-once folding.**  Late or re-run shards may seal duplicate
  records.  The merge deduplicates by ``(global task index, spec hash)``,
  folding each task exactly once; the same index carrying *different* spec
  hashes (shards run against different grids) is rejected with an error
  naming the index.

Every spec kind registered with :mod:`repro.engine.registry` gets this
resumability for free -- sweep, throughput and modelcheck grids all log and
merge through the same record format the spills already use.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import time
from dataclasses import dataclass, field
from typing import Any, IO, Mapping, Optional, Sequence, Union

from repro.core.canonical import canonical_json_bytes
from repro.engine.engine import StreamStats, SweepEngine, TaskBatch
from repro.engine.registry import kind_for_payload
from repro.engine.shard import MergeResult, ShardFormatError, ShardHeader, shard_tasks
from repro.engine.sink import SummarySink
from repro.obs.metrics import COUNT_BUCKETS, get_active as _active_metrics

#: Version stamp of the segment / checkpoint format; bumped on
#: incompatible layout changes.
SEGMENT_FORMAT = 1

#: Records per sealed segment (the producer's durability granularity).
DEFAULT_SEGMENT_RECORDS = 64

#: Records folded between checkpoint commits (the consumer's granularity).
DEFAULT_BATCH_RECORDS = 256

#: Default checkpoint file name, resolved inside the log directory.
CHECKPOINT_NAME = "merge-checkpoint.json"

_HEADER_KIND = "segment-header"
_FOOTER_KIND = "segment-footer"
_CHECKPOINT_KIND = "merge-checkpoint"

_SEGMENT_RE = re.compile(r"^shard-(\d{4})-seg-(\d{6})\.jsonl$")


class ResultLogError(ShardFormatError):
    """A result-log artifact (segment, checkpoint, or set) is invalid.

    Subclasses :class:`~repro.engine.shard.ShardFormatError` so callers
    handling spill-format failures handle log failures the same way.
    """


class InjectedMergeCrash(RuntimeError):
    """The ``crash_after`` fault-injection hook fired mid-fold.

    Raised only when a crash point was explicitly requested (tests, the
    ``REPRO_MERGE_CRASH_AFTER`` CI smoke); never during normal merges.
    """


def segment_name(shard_index: int, segment_index: int) -> str:
    """The canonical file name of one sealed segment."""
    return f"shard-{shard_index:04d}-seg-{segment_index:06d}.jsonl"


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-then-rename (fsynced first).

    A crash before the rename leaves only a dot-prefixed ``.tmp`` file the
    segment discovery ignores; a crash after it leaves the complete file.
    There is no intermediate state.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _content_hash(record_lines: Sequence[bytes]) -> str:
    """SHA-256 over the record lines (newlines included), hex-encoded."""
    digest = hashlib.sha256()
    for line in record_lines:
        digest.update(line)
    return digest.hexdigest()


@dataclass(frozen=True)
class SegmentHeader:
    """The self-describing first line of a sealed segment."""

    shard_index: int
    shard_count: int
    total_tasks: int
    segment_index: int
    format: int = SEGMENT_FORMAT

    def to_json_dict(self) -> dict[str, Any]:
        """The header's JSON payload (tagged so readers can recognize it)."""
        return {
            "kind": _HEADER_KIND,
            "format": self.format,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "total_tasks": self.total_tasks,
            "segment_index": self.segment_index,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "SegmentHeader":
        """Rebuild a header, rejecting future format versions."""
        if payload.get("kind") != _HEADER_KIND:
            raise ResultLogError(
                f"expected a {_HEADER_KIND!r} payload, got kind={payload.get('kind')!r}"
            )
        if payload.get("format") != SEGMENT_FORMAT:
            raise ResultLogError(
                f"unsupported segment format {payload.get('format')!r} "
                f"(this build reads format {SEGMENT_FORMAT})"
            )
        for name in ("shard_index", "shard_count", "total_tasks", "segment_index"):
            if not isinstance(payload.get(name), int):
                raise ResultLogError(
                    f"malformed {_HEADER_KIND}: {name}={payload.get(name)!r} "
                    f"(expected an integer)"
                )
        return cls(
            shard_index=payload["shard_index"],
            shard_count=payload["shard_count"],
            total_tasks=payload["total_tasks"],
            segment_index=payload["segment_index"],
            format=payload["format"],
        )


@dataclass(frozen=True)
class SegmentFooter:
    """The sealing last line of a segment: record count plus content hash."""

    records: int
    content_hash: str

    def to_json_dict(self) -> dict[str, Any]:
        """The footer's JSON payload."""
        return {
            "kind": _FOOTER_KIND,
            "records": self.records,
            "content_hash": self.content_hash,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "SegmentFooter":
        """Rebuild a footer, validating field types."""
        if payload.get("kind") != _FOOTER_KIND:
            raise ResultLogError(
                f"expected a {_FOOTER_KIND!r} payload, got kind={payload.get('kind')!r}"
            )
        if not isinstance(payload.get("records"), int):
            raise ResultLogError(
                f"malformed {_FOOTER_KIND}: records={payload.get('records')!r}"
            )
        if not isinstance(payload.get("content_hash"), str):
            raise ResultLogError(
                f"malformed {_FOOTER_KIND}: "
                f"content_hash={payload.get('content_hash')!r}"
            )
        return cls(
            records=payload["records"], content_hash=payload["content_hash"]
        )


def write_segment(
    path: Union[str, os.PathLike],
    header: SegmentHeader,
    records: Sequence[tuple[int, Mapping[str, Any]]],
) -> None:
    """Seal one segment at ``path``: header, records, hashed footer.

    ``records`` are ``(global task index, summary payload)`` pairs.  The
    whole segment is assembled in memory and written temp-then-rename, so
    it either exists complete or not at all.
    """
    record_lines = [
        canonical_json_bytes({"index": index, "summary": dict(payload)}) + b"\n"
        for index, payload in records
    ]
    footer = SegmentFooter(
        records=len(record_lines), content_hash=_content_hash(record_lines)
    )
    data = b"".join(
        [
            canonical_json_bytes(header.to_json_dict()) + b"\n",
            *record_lines,
            canonical_json_bytes(footer.to_json_dict()) + b"\n",
        ]
    )
    _atomic_write(pathlib.Path(path), data)


def read_segment(
    path: Union[str, os.PathLike]
) -> tuple[SegmentHeader, SegmentFooter, list[tuple[int, dict[str, Any]]]]:
    """Parse one sealed segment, verifying the footer's count and hash.

    Raises :class:`ResultLogError` on a missing header or footer (an
    unsealed or truncated file), a record-count or content-hash mismatch,
    a duplicate task index within the segment, or out-of-range indices.
    """
    path = pathlib.Path(path)
    header: Optional[SegmentHeader] = None
    footer: Optional[SegmentFooter] = None
    records: list[tuple[int, dict[str, Any]]] = []
    record_lines: list[bytes] = []
    seen: set[int] = set()
    with open(path, "rb") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if footer is not None:
                raise ResultLogError(f"{path}:{number}: data after the footer")
            try:
                payload = json.loads(line.decode("utf-8"))
            except ValueError as exc:
                raise ResultLogError(f"{path}:{number}: not JSON ({exc})") from exc
            if header is None:
                header = SegmentHeader.from_json_dict(payload)
                continue
            if payload.get("kind") == _FOOTER_KIND:
                footer = SegmentFooter.from_json_dict(payload)
                continue
            if "index" not in payload or "summary" not in payload:
                raise ResultLogError(
                    f"{path}:{number}: record lacks index/summary keys"
                )
            index = payload["index"]
            if not isinstance(index, int):
                raise ResultLogError(
                    f"{path}:{number}: task index {index!r} is not an integer"
                )
            if not 0 <= index < header.total_tasks:
                raise ResultLogError(
                    f"{path}:{number}: task index {index} outside "
                    f"[0, {header.total_tasks})"
                )
            if index in seen:
                raise ResultLogError(
                    f"{path}:{number}: task index {index} appears twice in "
                    f"one segment"
                )
            seen.add(index)
            records.append((index, payload["summary"]))
            record_lines.append(raw if raw.endswith(b"\n") else raw + b"\n")
    if header is None:
        raise ResultLogError(f"{path}: empty segment (no {_HEADER_KIND} line)")
    if footer is None:
        raise ResultLogError(
            f"{path}: unsealed segment (no {_FOOTER_KIND} line; "
            f"interrupted write?)"
        )
    if footer.records != len(records):
        raise ResultLogError(
            f"{path}: footer promises {footer.records} record(s) but "
            f"{len(records)} were read (truncated segment?)"
        )
    actual = _content_hash(record_lines)
    if footer.content_hash != actual:
        raise ResultLogError(
            f"{path}: content hash mismatch (footer {footer.content_hash}, "
            f"records hash to {actual}; corrupt segment?)"
        )
    return header, footer, records


def discover_segments(
    log_dir: Union[str, os.PathLike]
) -> dict[int, list[tuple[int, pathlib.Path]]]:
    """Map each shard to its ordered, gap-free sealed segment paths.

    Only files matching the segment name pattern participate; checkpoint
    files, merged spills and temp debris are ignored.  A gap in a shard's
    segment numbering (a deleted or lost segment) is an error, because a
    resumed producer always appends sequentially.
    """
    log_dir = pathlib.Path(log_dir)
    by_shard: dict[int, list[tuple[int, pathlib.Path]]] = {}
    if not log_dir.is_dir():
        return by_shard
    for entry in sorted(log_dir.iterdir()):
        match = _SEGMENT_RE.match(entry.name)
        if match is None:
            continue
        shard_index, segment_index = int(match.group(1)), int(match.group(2))
        by_shard.setdefault(shard_index, []).append((segment_index, entry))
    for shard_index, segments in by_shard.items():
        segments.sort()
        expected = list(range(len(segments)))
        actual = [segment_index for segment_index, _ in segments]
        if actual != expected:
            missing = sorted(set(expected) - set(actual))
            raise ResultLogError(
                f"{log_dir}: shard {shard_index} has a segment-numbering gap "
                f"(missing segment(s) {missing or actual}; was a sealed "
                f"segment deleted?)"
            )
    return by_shard


class ResultLogWriter(SummarySink):
    """Appends one shard's summaries to the log as sealed segments.

    The engine delivers summaries by local (within-run) index; the writer
    maps them to global task indices, buffers ``segment_records`` of them,
    and seals each full segment atomically.  ``close()`` seals the final
    partial segment -- and, for a shard that produced nothing and has no
    prior segments, an empty segment so the merge still sees the shard.
    """

    def __init__(
        self,
        log_dir: Union[str, os.PathLike],
        *,
        shard_index: int,
        shard_count: int,
        total_tasks: int,
        global_indices: Sequence[int],
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        start_segment: int = 0,
    ) -> None:
        if segment_records < 1:
            raise ValueError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self.log_dir = pathlib.Path(log_dir)
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.total_tasks = total_tasks
        self.global_indices = list(global_indices)
        self.segment_records = segment_records
        self.start_segment = start_segment
        self.appended = 0
        self.segments_sealed = 0
        self._next_segment = start_segment
        self._buffer: list[tuple[int, dict[str, Any]]] = []

    def accept(self, index: int, summary) -> None:
        """Buffer one summary; seal a segment once the buffer fills."""
        self._buffer.append(
            (self.global_indices[index], summary.to_json_dict())
        )
        self.appended += 1
        if len(self._buffer) >= self.segment_records:
            self._seal()

    def _seal(self) -> None:
        header = SegmentHeader(
            shard_index=self.shard_index,
            shard_count=self.shard_count,
            total_tasks=self.total_tasks,
            segment_index=self._next_segment,
        )
        path = self.log_dir / segment_name(self.shard_index, self._next_segment)
        records = self._buffer
        self._buffer = []
        write_segment(path, header, records)
        self._next_segment += 1
        self.segments_sealed += 1
        metrics = _active_metrics()
        if metrics is not None:
            metrics.counter("resultlog.segments.sealed").inc()
            metrics.counter("resultlog.records.appended").inc(len(records))

    def close(self) -> None:
        """Seal the trailing partial segment (or an empty marker segment)."""
        if self._buffer or (self.segments_sealed == 0 and self.start_segment == 0):
            self._seal()


def _scan_shard_segments(
    log_dir: pathlib.Path,
    shard_index: int,
    *,
    shard_count: int,
    total_tasks: int,
) -> tuple[set[int], int]:
    """The shard's already-sealed global indices plus its next segment index.

    Every sealed segment is verified (hash + count) and its header checked
    against the grid being run, so resuming against a log directory from a
    different grid fails loudly instead of interleaving records.
    """
    covered: set[int] = set()
    segments = discover_segments(log_dir).get(shard_index, [])
    for _, path in segments:
        header, _, records = read_segment(path)
        if header.shard_index != shard_index:
            raise ResultLogError(
                f"{path}: header names shard {header.shard_index}, expected "
                f"{shard_index}"
            )
        if (header.shard_count, header.total_tasks) != (shard_count, total_tasks):
            raise ResultLogError(
                f"{path}: sealed for a different grid "
                f"(shard_count={header.shard_count}, "
                f"total_tasks={header.total_tasks}; this run has "
                f"shard_count={shard_count}, total_tasks={total_tasks})"
            )
        for index, _ in records:
            covered.add(index)
    return covered, len(segments)


@dataclass
class ShardLogResult:
    """The outcome of one (possibly resumed) shard-to-log run."""

    stats: StreamStats
    shard_tasks: int
    skipped: int
    appended: int
    segments_sealed: int
    log_dir: pathlib.Path


def run_shard_log(
    tasks: TaskBatch,
    shard_index: int,
    shard_count: int,
    log_dir: Union[str, os.PathLike],
    *,
    engine: Optional[SweepEngine] = None,
    segment_records: int = DEFAULT_SEGMENT_RECORDS,
    measures: Sequence[str] = (),
) -> ShardLogResult:
    """Execute one shard, appending sealed segments to ``log_dir``.

    Resume is implicit: tasks whose records are already sealed (by an
    earlier, possibly interrupted run of the same shard) are skipped
    without executing, and new segments append after the last sealed one.
    A log directory sealed for a different grid is rejected.
    """
    task_list = SweepEngine._materialize(tasks)
    selected = shard_tasks(task_list, shard_index, shard_count)
    log_dir = pathlib.Path(log_dir)
    covered, next_segment = _scan_shard_segments(
        log_dir, shard_index, shard_count=shard_count, total_tasks=len(task_list)
    )
    owned = {index for index, _ in selected}
    stray = covered - owned
    if stray:
        preview = ", ".join(map(str, sorted(stray)[:5]))
        raise ResultLogError(
            f"{log_dir}: shard {shard_index} has sealed record(s) for task "
            f"index(es) {preview} that are not in this shard of this grid; "
            f"was the log produced from a different task list?"
        )
    remaining = [(index, task) for index, task in selected if index not in covered]
    engine = engine or SweepEngine()
    metrics = engine.metrics if engine.metrics is not None else _active_metrics()
    if metrics is not None:
        metrics.counter("resultlog.resume.skipped").inc(len(covered))
        metrics.counter("shard.tasks").inc(len(remaining))
    writer = ResultLogWriter(
        log_dir,
        shard_index=shard_index,
        shard_count=shard_count,
        total_tasks=len(task_list),
        global_indices=[index for index, _ in remaining],
        segment_records=segment_records,
        start_segment=next_segment,
    )
    stats = engine.run_streaming(
        [task for _, task in remaining], sinks=writer, measures=measures
    )
    return ShardLogResult(
        stats=stats,
        shard_tasks=len(selected),
        skipped=len(covered),
        appended=writer.appended,
        segments_sealed=writer.segments_sealed,
        log_dir=log_dir,
    )


@dataclass
class MergeCursor:
    """The merge's durable consumer position, committed outbox-style.

    ``records_folded`` and ``fold_hash`` (a rolling SHA-256 over the folded
    ``index:spec_hash`` prefix) are the authoritative resume point;
    ``jsonl_bytes`` is the merged spill's committed byte offset; ``offsets``
    records, per shard and segment, how many of its records the folded
    prefix consumed -- the Kafka-style consumer-offset view of progress.
    """

    shard_count: int
    total_tasks: int
    records_folded: int = 0
    jsonl_bytes: int = 0
    fold_hash: str = ""
    offsets: dict[str, dict[str, int]] = field(default_factory=dict)
    format: int = SEGMENT_FORMAT

    def to_json_dict(self) -> dict[str, Any]:
        """The checkpoint's canonical JSON payload."""
        return {
            "kind": _CHECKPOINT_KIND,
            "format": self.format,
            "shard_count": self.shard_count,
            "total_tasks": self.total_tasks,
            "records_folded": self.records_folded,
            "jsonl_bytes": self.jsonl_bytes,
            "fold_hash": self.fold_hash,
            "offsets": self.offsets,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "MergeCursor":
        """Rebuild a checkpoint, rejecting foreign or future payloads."""
        if payload.get("kind") != _CHECKPOINT_KIND:
            raise ResultLogError(
                f"expected a {_CHECKPOINT_KIND!r} payload, "
                f"got kind={payload.get('kind')!r}"
            )
        if payload.get("format") != SEGMENT_FORMAT:
            raise ResultLogError(
                f"unsupported checkpoint format {payload.get('format')!r} "
                f"(this build reads format {SEGMENT_FORMAT})"
            )
        for name in ("shard_count", "total_tasks", "records_folded", "jsonl_bytes"):
            if not isinstance(payload.get(name), int):
                raise ResultLogError(
                    f"malformed {_CHECKPOINT_KIND}: {name}={payload.get(name)!r}"
                )
        return cls(
            shard_count=payload["shard_count"],
            total_tasks=payload["total_tasks"],
            records_folded=payload["records_folded"],
            jsonl_bytes=payload["jsonl_bytes"],
            fold_hash=payload.get("fold_hash", ""),
            offsets={
                str(shard): dict(segments)
                for shard, segments in payload.get("offsets", {}).items()
            },
            format=payload["format"],
        )

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> Optional["MergeCursor"]:
        """Read a checkpoint, or ``None`` when the file does not exist."""
        path = pathlib.Path(path)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text("utf-8"))
        except ValueError as exc:
            raise ResultLogError(f"{path}: checkpoint is not JSON ({exc})") from exc
        return cls.from_json_dict(payload)

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Commit the checkpoint atomically (temp-then-rename, fsynced)."""
        _atomic_write(
            pathlib.Path(path), canonical_json_bytes(self.to_json_dict()) + b"\n"
        )


@dataclass
class LogMergeResult(MergeResult):
    """A :class:`~repro.engine.shard.MergeResult` plus log-merge accounting."""

    deduped: int = 0
    replayed: int = 0
    segments: int = 0
    checkpoint_path: Optional[pathlib.Path] = None


def _fold_hash_prefix(
    order: Sequence[int], merged: Mapping[int, Mapping[str, Any]], count: int
) -> str:
    """The rolling hash of the first ``count`` records of the fold order."""
    digest = hashlib.sha256()
    for index in order[:count]:
        spec_hash = merged[index].get("spec_hash")
        digest.update(f"{index}:{spec_hash}\n".encode("utf-8"))
    return digest.hexdigest()


def merge_result_log(
    log_dir: Union[str, os.PathLike],
    *,
    sinks: Sequence[SummarySink] = (),
    jsonl: Union[str, os.PathLike, None] = None,
    checkpoint: Union[str, os.PathLike, None] = None,
    resume: bool = False,
    require_complete: bool = True,
    batch_records: int = DEFAULT_BATCH_RECORDS,
    crash_after: Optional[int] = None,
) -> LogMergeResult:
    """Fold a result log into single-machine-identical aggregates, resumably.

    Records from every sealed segment are deduplicated by ``(global task
    index, spec hash)`` -- late or re-run shards fold exactly once; the same
    index under two *different* spec hashes is an error -- then sorted by
    global index and folded through (a) the registered default sink of each
    record's spec kind, (b) every sink in ``sinks``, and (c) the optional
    merged JSONL spill, exactly like
    :func:`~repro.engine.shard.merge_shards`.

    After every ``batch_records`` folded records the merged JSONL is flushed
    and a :class:`MergeCursor` checkpoint is committed atomically (the
    outbox order: fold, flush, then commit).  With ``resume=True`` and an
    existing checkpoint, the committed prefix is *replayed* from the log
    into the sinks (decode-only -- nothing re-executes), the JSONL is
    truncated back to the committed byte offset, and folding continues;
    the final aggregates and JSONL are byte-identical to an uninterrupted
    merge.  A checkpoint whose folded prefix no longer matches the log
    (e.g. a late shard inserted earlier records into an incomplete set) is
    rejected -- restart without ``resume`` for byte-identical output.

    ``crash_after`` is a fault-injection hook (CLI:
    ``REPRO_MERGE_CRASH_AFTER``): raise after that many *newly* folded
    records, simulating a mid-fold kill for crash/resume tests.
    """
    if batch_records < 1:
        raise ValueError(f"batch_records must be >= 1, got {batch_records}")
    log_dir = pathlib.Path(log_dir)
    started = time.perf_counter()
    metrics = _active_metrics()
    by_shard = discover_segments(log_dir)
    if not by_shard:
        raise ResultLogError(f"{log_dir}: no sealed segments to merge")

    # Scan: read every sealed segment, dedup records exactly-once.
    first_header: Optional[SegmentHeader] = None
    merged: dict[int, dict[str, Any]] = {}
    source: dict[int, tuple[int, int]] = {}  # index -> (shard, segment)
    shard_kinds: dict[int, set[str]] = {}
    shard_records: dict[int, int] = {}
    deduped = 0
    segment_count = 0
    for shard_index in sorted(by_shard):
        shard_kinds.setdefault(shard_index, set())
        shard_records.setdefault(shard_index, 0)
        for segment_index, path in by_shard[shard_index]:
            before = time.perf_counter()
            header, _, records = read_segment(path)
            if metrics is not None:
                metrics.histogram("merge.read_seconds").observe(
                    time.perf_counter() - before
                )
            if first_header is None:
                first_header = header
            elif (header.shard_count, header.total_tasks) != (
                first_header.shard_count,
                first_header.total_tasks,
            ):
                raise ResultLogError(
                    f"{path}: shard_count={header.shard_count}/"
                    f"total_tasks={header.total_tasks} disagrees with the "
                    f"log's first segment "
                    f"(shard_count={first_header.shard_count}, "
                    f"total_tasks={first_header.total_tasks})"
                )
            segment_count += 1
            for index, payload in records:
                kind_name = kind_for_payload(payload).name
                shard_kinds[shard_index].add(kind_name)
                if index in merged:
                    previous = merged[index].get("spec_hash")
                    current = payload.get("spec_hash")
                    if previous != current:
                        raise ResultLogError(
                            f"{path}: task index {index} re-sealed with a "
                            f"different spec hash ({current!r} vs "
                            f"{previous!r}); were the shards run against "
                            f"different grids?"
                        )
                    deduped += 1
                    continue
                merged[index] = payload
                source[index] = (shard_index, segment_index)
                shard_records[shard_index] += 1

    assert first_header is not None
    shard_count = first_header.shard_count
    total_tasks = first_header.total_tasks
    if require_complete:
        missing = sorted(set(range(shard_count)) - set(by_shard))
        if missing:
            raise ResultLogError(
                f"incomplete result log: missing shard(s) "
                f"{', '.join(map(str, missing))} of {shard_count} "
                f"(pass require_complete=False to merge a partial log)"
            )
        missing_tasks = sorted(set(range(total_tasks)) - set(merged))
        if missing_tasks:
            preview = ", ".join(map(str, missing_tasks[:5]))
            if len(missing_tasks) > 5:
                preview += ", ..."
            raise ResultLogError(
                f"incomplete result log: {len(missing_tasks)} of "
                f"{total_tasks} task(s) have no sealed record "
                f"(missing indices {preview}); are the shard runs complete?"
            )
    order = sorted(merged)

    # Resume point: load and validate the committed cursor.
    checkpoint_path = pathlib.Path(
        checkpoint if checkpoint is not None else log_dir / CHECKPOINT_NAME
    )
    cursor = MergeCursor.load(checkpoint_path) if resume else None
    if cursor is not None:
        if (cursor.shard_count, cursor.total_tasks) != (shard_count, total_tasks):
            raise ResultLogError(
                f"{checkpoint_path}: checkpoint covers a different grid "
                f"(shard_count={cursor.shard_count}, "
                f"total_tasks={cursor.total_tasks})"
            )
        if cursor.records_folded > len(order):
            raise ResultLogError(
                f"{checkpoint_path}: checkpoint folded "
                f"{cursor.records_folded} record(s) but the log holds only "
                f"{len(order)}; was a sealed segment deleted?"
            )
        if (
            _fold_hash_prefix(order, merged, cursor.records_folded)
            != cursor.fold_hash
        ):
            raise ResultLogError(
                f"{checkpoint_path}: the folded prefix no longer matches "
                f"the log (new records sorted into already-folded "
                f"territory?); restart the merge without resume"
            )
    else:
        cursor = MergeCursor(shard_count=shard_count, total_tasks=total_tasks)
    replay_count = cursor.records_folded

    # Open the merged JSONL at the committed offset.
    jsonl_path = pathlib.Path(jsonl) if jsonl is not None else None
    handle: Optional[IO[bytes]] = None
    if jsonl_path is not None:
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        if replay_count > 0:
            if not jsonl_path.exists():
                raise ResultLogError(
                    f"{jsonl_path}: resuming a merge that committed "
                    f"{cursor.jsonl_bytes} byte(s) but the merged spill is "
                    f"missing; restart the merge without resume"
                )
            size = jsonl_path.stat().st_size
            if size < cursor.jsonl_bytes:
                raise ResultLogError(
                    f"{jsonl_path}: merged spill holds {size} byte(s), "
                    f"shorter than the committed {cursor.jsonl_bytes}; "
                    f"restart the merge without resume"
                )
            # Bytes past the commit were folded but never checkpointed
            # (a crash mid-batch); drop them, they re-fold now.
            os.truncate(jsonl_path, cursor.jsonl_bytes)
            handle = open(jsonl_path, "ab")
        else:
            handle = open(jsonl_path, "wb")
    elif replay_count == 0 and cursor.jsonl_bytes > 0:
        raise ResultLogError(
            f"{checkpoint_path}: checkpoint committed jsonl bytes but this "
            f"merge has no --jsonl target"
        )

    kind_sinks: dict[str, Any] = {}
    extra = list(sinks)
    digest = hashlib.sha256()
    folded = 0
    new_folds = 0
    uncommitted = 0
    offsets: dict[str, dict[str, int]] = {}

    def commit() -> None:
        """Outbox commit: flush+fsync the spill, then the cursor."""
        nonlocal uncommitted
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())
            cursor.jsonl_bytes = handle.tell()
        cursor.records_folded = folded
        cursor.fold_hash = digest.hexdigest()
        cursor.offsets = {
            shard: dict(segments) for shard, segments in offsets.items()
        }
        cursor.save(checkpoint_path)
        uncommitted = 0
        if metrics is not None:
            metrics.counter("resultlog.checkpoint.commits").inc()

    fold_started = time.perf_counter()
    try:
        for position, index in enumerate(order):
            payload = merged[index]
            kind = kind_for_payload(payload)
            summary = kind.decode(payload)
            if kind.name not in kind_sinks and kind.make_sink is not None:
                kind_sinks[kind.name] = kind.make_sink()
            sink = kind_sinks.get(kind.name)
            if sink is not None:
                sink.accept(index, summary)
            for extra_sink in extra:
                extra_sink.accept(index, summary)
            shard_index, segment_index = source[index]
            offsets.setdefault(str(shard_index), {})
            offsets[str(shard_index)][str(segment_index)] = (
                offsets[str(shard_index)].get(str(segment_index), 0) + 1
            )
            digest.update(
                f"{index}:{payload.get('spec_hash')}\n".encode("utf-8")
            )
            folded += 1
            if position < replay_count:
                # Replay of the committed prefix: sink state only, the
                # JSONL bytes are already on disk.
                continue
            if handle is not None:
                handle.write(summary.to_json_bytes() + b"\n")
            new_folds += 1
            uncommitted += 1
            if uncommitted >= batch_records:
                commit()
            if crash_after is not None and new_folds >= crash_after:
                raise InjectedMergeCrash(
                    f"injected merge crash after {new_folds} newly folded "
                    f"record(s) (REPRO_MERGE_CRASH_AFTER)"
                )
        if uncommitted > 0 or folded == 0 or not resume:
            commit()
    finally:
        if handle is not None:
            handle.close()
        for sink in (*kind_sinks.values(), *extra):
            sink.close()
    if metrics is not None:
        metrics.histogram("merge.fold_seconds").observe(
            time.perf_counter() - fold_started
        )
        metrics.counter("merge.records").inc(new_folds)
        metrics.counter("merge.shards").inc(len(by_shard))
        metrics.counter("resultlog.records.deduped").inc(deduped)
        metrics.counter("resultlog.resume.replayed").inc(replay_count)
        metrics.histogram(
            "merge.records_per_shard", bounds=COUNT_BUCKETS
        ).observe(float(len(order) / max(1, len(by_shard))))

    headers = [
        ShardHeader(
            shard_index=shard_index,
            shard_count=shard_count,
            total_tasks=total_tasks,
            shard_tasks=shard_records[shard_index],
            spec_kinds=tuple(sorted(shard_kinds[shard_index])),
        )
        for shard_index in sorted(by_shard)
    ]
    return LogMergeResult(
        headers=headers,
        records=len(order),
        kind_sinks=kind_sinks,
        jsonl_path=jsonl_path,
        elapsed=time.perf_counter() - started,
        deduped=deduped,
        replayed=replay_count,
        segments=segment_count,
        checkpoint_path=checkpoint_path,
    )
