"""On-disk result cache for incremental re-sweeps.

Every completed run is stored as canonical JSON under
``<root>/<hash[:2]>/<hash>-<seed>.json``, keyed by the task's stable spec
hash plus its seed.  Re-running a sweep with a warm cache returns
byte-identical summaries without executing a single scenario; changing any
scenario field (or the protocol) changes the hash and re-executes only the
affected points.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Optional, Union

from repro.engine.summary import RunSummary, summary_from_json_bytes
from repro.obs.metrics import get_active as _active_metrics


class ResultCache:
    """A directory of canonical-JSON summary records.

    Stores the summary records of every registered spec kind (the entry's
    ``kind`` tag selects the codec through
    :mod:`repro.engine.registry` -- single-transaction :class:`RunSummary`
    records, concurrent-workload throughput records, and any kind
    registered later); the key space is shared because the spec hash
    covers the spec's dataclass name.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, spec_hash: str, seed: int) -> pathlib.Path:
        """Cache file location for one ``(spec-hash, seed)`` key."""
        return self.root / spec_hash[:2] / f"{spec_hash}-{seed}.json"

    def probe(self, spec_hash: str, seed: int) -> bool:
        """Existence check counted like a lookup, without reading the entry.

        The engine's streaming scan uses this to learn *whether* a point is
        cached (the full entry is read lazily at delivery time), so a warm
        sweep reads and parses each entry exactly once.
        """
        metrics = _active_metrics()
        if self.path(spec_hash, seed).is_file():
            self.hits += 1
            if metrics is not None:
                metrics.counter("engine.cache.hits").inc()
            return True
        self.misses += 1
        if metrics is not None:
            metrics.counter("engine.cache.misses").inc()
        return False

    def get_bytes(
        self, spec_hash: str, seed: int, *, record: bool = True
    ) -> Optional[bytes]:
        """Raw cached bytes, or ``None`` on a miss.

        ``record=False`` leaves the hit/miss counters untouched -- for
        internal re-reads of entries already counted by :meth:`probe` or an
        earlier :meth:`get`.
        """
        path = self.path(spec_hash, seed)
        metrics = _active_metrics()
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            if record:
                self.misses += 1
                if metrics is not None:
                    metrics.counter("engine.cache.misses").inc()
            return None
        if record:
            self.hits += 1
            if metrics is not None:
                metrics.counter("engine.cache.hits").inc()
        if metrics is not None:
            metrics.counter("engine.cache.bytes_read").inc(len(data))
        return data

    def get(
        self, spec_hash: str, seed: int, *, record: bool = True
    ) -> Optional[RunSummary]:
        """The cached summary, or ``None`` on a miss."""
        data = self.get_bytes(spec_hash, seed, record=record)
        if data is None:
            return None
        return summary_from_json_bytes(data)

    def put(self, summary: RunSummary) -> pathlib.Path:
        """Store ``summary`` (atomic write; last writer wins)."""
        return self.put_bytes(summary.spec_hash, summary.seed, summary.to_json_bytes())

    def put_bytes(self, spec_hash: str, seed: int, data: bytes) -> pathlib.Path:
        """Store pre-encoded canonical summary bytes (atomic write).

        The engine's parallel path uses this to persist the byte frames its
        workers already serialized, skipping a decode/re-encode round trip;
        ``data`` must be the summary's :meth:`~RunSummary.to_json_bytes`
        output so cache entries stay byte-identical to :meth:`put`'s.
        """
        path = self.path(spec_hash, seed)
        metrics = _active_metrics()
        if metrics is not None:
            metrics.counter("engine.cache.puts").inc()
            metrics.counter("engine.cache.bytes_written").inc(len(data))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
