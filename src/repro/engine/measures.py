"""Named in-worker measurements over a run's trace.

The trace of a run is too heavy to ship across process boundaries, so any
quantity the experiments derive from it (the Figs. 5-7 / 9 timing bounds)
must be computed *inside* the worker and returned as plain JSON-able data in
:attr:`RunSummary.metrics <repro.engine.summary.RunSummary.metrics>`.

Measures are referenced *by name* in sweep tasks (names pickle; closures do
not).  Each measure maps a full
:class:`~repro.protocols.runner.TransactionRunResult` to a JSON-able value;
site-keyed mappings use string keys so cached and fresh summaries compare
equal after a JSON round-trip.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.analysis.timing import (
    measure_master_probe_window,
    measure_protocol_timeouts,
    measure_wait_after_timeout_in_p,
    measure_wait_after_timeout_in_w,
)
from repro.protocols.runner import TransactionRunResult

Measure = Callable[[TransactionRunResult], Any]

MEASURES: dict[str, Measure] = {}


def register_measure(name: str) -> Callable[[Measure], Measure]:
    """Decorator registering a measure under ``name``."""

    def _register(fn: Measure) -> Measure:
        if name in MEASURES:
            raise ValueError(f"measure {name!r} already registered")
        MEASURES[name] = fn
        return fn

    return _register


def resolve_measures(names: Iterable[str]) -> tuple[str, ...]:
    """Validate measure names early (in the parent, before dispatch)."""
    names = tuple(names)
    unknown = [n for n in names if n not in MEASURES]
    if unknown:
        raise KeyError(f"unknown measure(s) {unknown}; available: {sorted(MEASURES)}")
    return names


def apply_measures(result: TransactionRunResult, names: Iterable[str]) -> dict[str, Any]:
    """Evaluate the named measures against one run."""
    return {name: MEASURES[name](result) for name in names}


@register_measure("timeouts")
def _measure_timeouts(result: TransactionRunResult) -> dict[str, Any]:
    """Fig. 5: master round-trip and slave inter-command waits."""
    return measure_protocol_timeouts(result)


@register_measure("probe_window")
def _measure_probe_window(result: TransactionRunResult) -> dict[str, Any]:
    """Fig. 6: UD(prepare) -> last probe gap, plus whether a window opened."""
    return {
        "gap": measure_master_probe_window(result),
        "window_open": result.trace.first("probe-window-open") is not None,
    }


@register_measure("wait_in_w")
def _measure_wait_in_w(result: TransactionRunResult) -> dict[str, float]:
    """Fig. 7: per-slave wait from a timeout in ``w`` to the decision."""
    waits = measure_wait_after_timeout_in_w(result)
    return {str(site): wait for site, wait in sorted(waits.items())}


@register_measure("wait_in_p")
def _measure_wait_in_p(result: TransactionRunResult) -> dict[str, float]:
    """Fig. 9: per-slave wait from a timeout in ``p`` to the decision."""
    waits = measure_wait_after_timeout_in_p(result)
    return {str(site): wait for site, wait in sorted(waits.items())}
