"""The MODELCHECK spec: what to explore, under which faults, within budgets.

A :class:`ModelCheckSpec` is to the model checker what
:class:`~repro.protocols.runner.ScenarioSpec` is to the simulator: a frozen,
hashable description of one unit of work.  Everything that changes the
explored graph -- site count, fault envelope, scripted votes, the state and
depth budgets -- is a spec field, so it flows into the
``(spec-hash, seed)`` cache key and two runs with different budgets can
never collide in the result cache (the "exploration limits were
unconfigurable constants" fix this PR pins with a regression test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.reachability import ALL_FAULT_ENVELOPES, FAILURE_FREE


@dataclass(frozen=True)
class ModelCheckSpec:
    """One exhaustive-exploration work unit.

    Attributes:
        n_sites: number of participating sites (site 1 is the master).
        fault: fault envelope -- one of
            :data:`~repro.core.reachability.ALL_FAULT_ENVELOPES`
            (``"failure-free"``, ``"single-crash"``, ``"partition"``,
            ``"lossy"``, ``"lossy-retransmit"``).
        no_voters: ``None`` explores *both* vote branches of every slave
            (the exhaustive default); a frozenset of slave site ids scripts
            the vote pattern, matching one simulator scenario exactly.  The
            master cannot be scripted: in the simulator a master no-vote is
            a unilateral abort broadcast before the protocol starts, which
            is not a reachable branch of the FSA graph.
        max_states: state budget; exceeding it raises
            :class:`~repro.core.reachability.ExplorationError`.
        max_depth: optional depth budget; ``None`` means unbounded.
        seed: cache-key conformance only.  Exploration is exhaustive and
            deterministic -- the seed never changes the result, it exists
            so the kind obeys the engine's ``(spec-hash, seed)`` contract.
    """

    n_sites: int = 3
    fault: str = FAILURE_FREE
    no_voters: Optional[frozenset[int]] = None
    max_states: int = 200_000
    max_depth: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValueError(
                f"a distributed transaction needs at least 2 sites, got {self.n_sites}"
            )
        if self.fault not in ALL_FAULT_ENVELOPES:
            raise ValueError(
                f"unknown fault envelope {self.fault!r}; "
                f"expected one of {ALL_FAULT_ENVELOPES}"
            )
        if self.max_states < 1:
            raise ValueError(f"max_states must be positive, got {self.max_states}")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be positive, got {self.max_depth}")
        if self.no_voters is not None:
            slaves = set(range(2, self.n_sites + 1))
            bad = set(self.no_voters) - slaves
            if bad:
                raise ValueError(
                    f"no_voters must be slave sites {sorted(slaves)}, "
                    f"got {sorted(bad)} (the master's no-vote is a unilateral "
                    f"abort, not a checkable vote branch)"
                )
