"""The plain-data record one model-checking run reduces to.

:class:`ModelCheckSummary` is to the MODELCHECK kind what
:class:`~repro.engine.summary.RunSummary` is to the scenario kind: a
picklable, canonically-JSON-serializable record carrying the engine
plumbing fields (``protocol``, ``spec_hash``, ``seed``, ``metrics``) plus
the checker's results -- states/edges explored, frontier depth, a
per-invariant verdict map and the serialized minimal counterexample
traces.  Payloads are tagged ``"kind": "modelcheck"`` so the result cache,
JSONL spills and ``repro merge`` dispatch them to this codec.

Like its siblings, this module imports nothing from :mod:`repro.engine`;
the engine reaches it through the spec-kind registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.canonical import canonical_json_bytes

#: Invariants whose violation makes the overall verdict ``violated``
#: (kept in sync with :data:`repro.modelcheck.checker.SAFETY_INVARIANTS`;
#: restated here so the summary module stays import-light).
_SAFETY = ("same-decision", "no-commit-after-abort", "commit-requires-votes")


@dataclass
class ModelCheckSummary:
    """The outcome of one exhaustive model-checking run, as plain data."""

    protocol: str
    spec_hash: str
    seed: int
    n_sites: int
    fault: str
    states_explored: int = 0
    edges_explored: int = 0
    frontier_depth: int = 0
    #: False when a ``max_depth`` budget truncated the exploration; the
    #: verdicts then cover only the explored subgraph.
    complete: bool = True
    #: invariant name -> ``"holds"`` | ``"violated"``.
    invariants: dict[str, str] = field(default_factory=dict)
    #: invariant name -> serialized counterexample steps (violated only).
    counterexamples: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def invariant_holds(self, name: str) -> bool:
        """True when the named invariant was checked and holds."""
        return self.invariants.get(name) == "holds"

    @property
    def atomicity_violated(self) -> bool:
        """True when any safety invariant is violated somewhere reachable."""
        return any(self.invariants.get(name) == "violated" for name in _SAFETY)

    @property
    def blocked(self) -> bool:
        """True when some terminal state strands a surviving site undecided."""
        return self.invariants.get("no-blocking") == "violated"

    @property
    def consistent(self) -> bool:
        """Every invariant holds over the whole explored graph."""
        return not self.atomicity_violated and not self.blocked

    @property
    def verdict(self) -> str:
        """``violated`` / ``blocked`` / ``consistent``.

        Same precedence as :attr:`~repro.engine.summary.RunSummary.verdict`
        so the differential harness compares like with like; note the
        checker quantifies over *all* reachable executions where one
        simulator run samples a single schedule.
        """
        if self.atomicity_violated:
            return "violated"
        if self.blocked:
            return "blocked"
        return "consistent"

    def counterexample(self, name: str) -> list[dict[str, Any]]:
        """Serialized counterexample steps for ``name`` ([] when it holds)."""
        return self.counterexamples.get(name, [])

    def format_counterexample(self, name: str) -> str:
        """Human-readable rendering of one counterexample trace."""
        steps = self.counterexample(name)
        if not steps:
            return f"  (no counterexample: {name} holds)"
        lines = []
        for step in steps:
            locals_vector = ", ".join(step["locals"])
            lines.append(
                f"  {step['step'] + 1}. site {step['site']} {step['label']}"
                f"  =>  ({locals_vector})"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        violated = sorted(
            name for name, v in self.invariants.items() if v == "violated"
        )
        suffix = f" violating {', '.join(violated)}" if violated else ""
        return (
            f"{self.protocol} [{self.fault}, n={self.n_sites}]: "
            f"{self.states_explored} states / {self.edges_explored} edges "
            f"to depth {self.frontier_depth} -> {self.verdict}{suffix}"
        )

    # ------------------------------------------------------------------
    # canonical JSON (cache + JSONL spill format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; ``kind`` tags the record for cache dispatch."""
        return {
            "kind": "modelcheck",
            "protocol": self.protocol,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "n_sites": self.n_sites,
            "fault": self.fault,
            "states_explored": self.states_explored,
            "edges_explored": self.edges_explored,
            "frontier_depth": self.frontier_depth,
            "complete": self.complete,
            "invariants": dict(sorted(self.invariants.items())),
            "counterexamples": {
                name: steps
                for name, steps in sorted(self.counterexamples.items())
            },
            "metrics": self.metrics,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ModelCheckSummary":
        """Rebuild a summary from :meth:`to_json_dict` output."""
        data = {k: v for k, v in payload.items() if k != "kind"}
        data["invariants"] = dict(data.get("invariants", {}))
        data["counterexamples"] = {
            name: [dict(step) for step in steps]
            for name, steps in data.get("counterexamples", {}).items()
        }
        data["metrics"] = dict(data.get("metrics", {}))
        return cls(**data)

    def to_json_bytes(self) -> bytes:
        """Canonical JSON bytes (shared contract: :mod:`repro.core.canonical`)."""
        return canonical_json_bytes(self.to_json_dict())

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "ModelCheckSummary":
        """Inverse of :meth:`to_json_bytes`."""
        return cls.from_json_dict(json.loads(data.decode("utf-8")))
