"""Which simulator protocols the model checker can check, and how.

The simulator registry (:mod:`repro.protocols.registry`) and the FSA
catalog (:mod:`repro.core.catalog`) use different vocabularies: the
simulator's ``extended-two-phase-commit`` is the catalog's 2PC automata
*plus* the Rule (a)/(b) augmentation of :mod:`repro.core.rules`.  This
module is the bridge: it maps each checkable simulator name to its FSA
spec factory and whether the rules augmentation applies, so
``repro modelcheck`` and the differential harness accept exactly the names
``repro sweep`` does.

The terminating protocols (cooperative termination via surviving-site
probes) are out of scope: their probe exchange is a timed gossip loop, not
an FSA transition relation, so there is no finite global graph to
enumerate.  Asking for one raises a :class:`UncheckableProtocolError`
naming the checkable alternatives.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import catalog
from repro.core.fsa import CommitProtocolSpec
from repro.core.rules import AugmentedProtocol, augment_with_rules

#: simulator-registry name -> (FSA spec factory, apply Rule (a)/(b) tables)
_CHECKABLE: dict[str, tuple[Callable[[], CommitProtocolSpec], bool]] = {
    "two-phase-commit": (catalog.two_phase_commit, False),
    "extended-two-phase-commit": (catalog.two_phase_commit, True),
    "three-phase-commit": (catalog.three_phase_commit, False),
    "naive-extended-three-phase-commit": (catalog.three_phase_commit, True),
    "quorum-commit": (catalog.quorum_commit, False),
}


class UncheckableProtocolError(ValueError):
    """Raised for protocols without a finite FSA global graph to explore."""

    def __init__(self, name: str):
        super().__init__(
            f"protocol {name!r} is not model-checkable; "
            f"checkable protocols: {', '.join(checkable_protocols())}"
        )
        self.name = name


def checkable_protocols() -> list[str]:
    """The simulator-registry names the checker accepts, sorted."""
    return sorted(_CHECKABLE)


def resolve_protocol(
    name: str, n_sites: int
) -> tuple[CommitProtocolSpec, Optional[AugmentedProtocol]]:
    """Resolve a simulator protocol name for the checker.

    Returns the FSA protocol spec and, for the extended variants, the
    Rule (a)/(b) augmentation instantiated for ``n_sites`` (``None`` for the
    plain protocols, whose simulator roles ignore timeouts and bounces).
    """
    entry = _CHECKABLE.get(name)
    if entry is None:
        raise UncheckableProtocolError(name)
    factory, augmented = entry
    spec = factory()
    augmentation = augment_with_rules(spec, n_sites) if augmented else None
    return spec, augmentation
