"""Streaming aggregation of model-checking sweeps.

:class:`ModelCheckSink` lives with the MODELCHECK kind (not in
:mod:`repro.engine.sink`) for the same layering reason as
:class:`~repro.txn.sink.ThroughputSink`: the engine, the CLI and ``repro
merge`` obtain it through the kind's ``make_sink`` factory, so the engine's
sink module needs no knowledge of this package.  It obeys the sink
invariants (task-order delivery, exactly-once, bounded state): one row per
(protocol, fault envelope, n_sites) in first-seen task order.
"""

from __future__ import annotations

from typing import Any

from repro.engine.sink import SummarySink
from repro.modelcheck.summary import ModelCheckSummary

#: Column order of the per-invariant verdict columns.
_INVARIANT_COLUMNS = (
    ("same-decision", "same-decision"),
    ("no-commit-after-abort", "no commit-after-abort"),
    ("commit-requires-votes", "commit-requires-votes"),
    ("no-blocking", "non-blocking"),
)


class ModelCheckSink(SummarySink):
    """The ``repro modelcheck`` table: one row per checked configuration.

    Folds :class:`~repro.modelcheck.summary.ModelCheckSummary` records
    (other record types are ignored, so mixed streams are safe) into
    O(configurations) state: states/edges explored, frontier depth and the
    per-invariant verdicts, plus the shape (length) of the minimal
    counterexample when an invariant fails.
    """

    def __init__(self) -> None:
        self.rows_by_key: dict[tuple[str, str, int], dict[str, Any]] = {}

    def accept(self, index: int, summary) -> None:
        if not isinstance(summary, ModelCheckSummary):
            return
        key = (summary.protocol, summary.fault, summary.n_sites)
        row = self.rows_by_key.setdefault(
            key,
            {
                "protocol": summary.protocol,
                "fault": summary.fault,
                "sites": summary.n_sites,
                "states": 0,
                "edges": 0,
                "depth": 0,
                "runs": 0,
            },
        )
        row["runs"] += 1
        row["states"] = max(row["states"], summary.states_explored)
        row["edges"] = max(row["edges"], summary.edges_explored)
        row["depth"] = max(row["depth"], summary.frontier_depth)
        for name, column in _INVARIANT_COLUMNS:
            verdict = summary.invariants.get(name, "?")
            if verdict == "violated":
                steps = len(summary.counterexample(name))
                verdict = f"violated@{steps}"
            # A violation seen by any run of the configuration sticks.
            if not str(row.get(column, "")).startswith("violated"):
                row[column] = verdict
        if not summary.complete:
            row["fault"] = summary.fault + " (truncated)"

    def rows(self) -> list[dict[str, Any]]:
        """One table row per checked configuration, in first-seen order."""
        return [dict(row) for row in self.rows_by_key.values()]
