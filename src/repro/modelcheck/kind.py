"""Registration of the exhaustive model-checking kind.

One :class:`~repro.modelcheck.spec.ModelCheckSpec` explores one protocol's
global state graph under one fault envelope and reduces to a
:class:`~repro.modelcheck.summary.ModelCheckSummary` (payloads tagged
``"kind": "modelcheck"``).  Registering through the spec-kind registry is
the whole point of the MODELCHECK design: exhaustive verification inherits
the ``(spec-hash, seed)`` result cache, streaming sinks, JSONL spills and
``repro shard`` / ``repro merge`` distribution with no engine changes.

Imported lazily by :mod:`repro.engine.registry` (it is listed in
``BUILTIN_KIND_PROVIDERS``).  Trace measures do not apply -- the checker
enumerates all executions at once, so there is no single event trace to
measure.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.engine.registry import SpecKind, register_spec_kind
from repro.modelcheck.checker import check_model
from repro.modelcheck.spec import ModelCheckSpec
from repro.modelcheck.summary import ModelCheckSummary
from repro.obs.metrics import get_active as _active_metrics


def _execute(
    protocol: str,
    spec: ModelCheckSpec,
    *,
    spec_hash: str,
    measures: Sequence[str] = (),
) -> ModelCheckSummary:
    """Explore + check one configuration in a worker; keep only the summary."""
    metrics = _active_metrics()
    if metrics is None:
        return check_model(protocol, spec).to_summary(spec_hash=spec_hash)
    before = time.perf_counter()
    summary = check_model(protocol, spec).to_summary(spec_hash=spec_hash)
    elapsed = time.perf_counter() - before
    metrics.counter("modelcheck.checks").inc()
    metrics.counter("modelcheck.states_explored").inc(summary.states_explored)
    metrics.counter("modelcheck.edges_explored").inc(summary.edges_explored)
    if not summary.complete:
        metrics.counter("modelcheck.truncated").inc()
    metrics.histogram("modelcheck.explore_seconds").observe(elapsed)
    # High-watermark gauges: the deepest frontier, the fastest exploration
    # and the closest brush with the state budget across the whole sweep.
    metrics.gauge("modelcheck.frontier_depth").set(float(summary.frontier_depth))
    if elapsed > 0:
        metrics.gauge("modelcheck.states_per_second").set(
            summary.states_explored / elapsed
        )
    if spec.max_states:
        metrics.gauge("modelcheck.budget_consumed").set(
            summary.states_explored / spec.max_states
        )
    return summary


def _make_sink():
    """The kind's default aggregate: the ``repro modelcheck`` table."""
    from repro.modelcheck.sink import ModelCheckSink

    return ModelCheckSink()


def _sample_task():
    """One tiny exhaustive check (for the conformance suite)."""
    from repro.engine.grid import SweepTask

    return SweepTask(
        protocol="two-phase-commit",
        spec=ModelCheckSpec(n_sites=2),
    )


MODELCHECK_KIND = register_spec_kind(
    SpecKind(
        name="modelcheck",
        spec_type=ModelCheckSpec,
        summary_type=ModelCheckSummary,
        execute=_execute,
        decode=ModelCheckSummary.from_json_dict,
        json_tag="modelcheck",
        make_sink=_make_sink,
        sample_task=_sample_task,
    )
)
