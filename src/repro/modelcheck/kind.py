"""Registration of the exhaustive model-checking kind.

One :class:`~repro.modelcheck.spec.ModelCheckSpec` explores one protocol's
global state graph under one fault envelope and reduces to a
:class:`~repro.modelcheck.summary.ModelCheckSummary` (payloads tagged
``"kind": "modelcheck"``).  Registering through the spec-kind registry is
the whole point of the MODELCHECK design: exhaustive verification inherits
the ``(spec-hash, seed)`` result cache, streaming sinks, JSONL spills and
``repro shard`` / ``repro merge`` distribution with no engine changes.

Imported lazily by :mod:`repro.engine.registry` (it is listed in
``BUILTIN_KIND_PROVIDERS``).  Trace measures do not apply -- the checker
enumerates all executions at once, so there is no single event trace to
measure.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.registry import SpecKind, register_spec_kind
from repro.modelcheck.checker import check_model
from repro.modelcheck.spec import ModelCheckSpec
from repro.modelcheck.summary import ModelCheckSummary


def _execute(
    protocol: str,
    spec: ModelCheckSpec,
    *,
    spec_hash: str,
    measures: Sequence[str] = (),
) -> ModelCheckSummary:
    """Explore + check one configuration in a worker; keep only the summary."""
    return check_model(protocol, spec).to_summary(spec_hash=spec_hash)


def _make_sink():
    """The kind's default aggregate: the ``repro modelcheck`` table."""
    from repro.modelcheck.sink import ModelCheckSink

    return ModelCheckSink()


def _sample_task():
    """One tiny exhaustive check (for the conformance suite)."""
    from repro.engine.grid import SweepTask

    return SweepTask(
        protocol="two-phase-commit",
        spec=ModelCheckSpec(n_sites=2),
    )


MODELCHECK_KIND = register_spec_kind(
    SpecKind(
        name="modelcheck",
        spec_type=ModelCheckSpec,
        summary_type=ModelCheckSummary,
        execute=_execute,
        decode=ModelCheckSummary.from_json_dict,
        json_tag="modelcheck",
        make_sink=_make_sink,
        sample_task=_sample_task,
    )
)
