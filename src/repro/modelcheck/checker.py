"""Invariant checking over the explored global state graph.

The paper's correctness claims, restated as machine-checkable properties of
the reachable global states:

* ``same-decision`` -- no reachable state has one site in a commit state
  while another occupies an abort state (atomicity; the property whose
  violation Section 3 demonstrates for the naive 3PC extension).
* ``no-commit-after-abort`` -- no site enters a commit state from a global
  state in which any site already aborted (the temporal half of atomicity:
  even a transient mixed state is a violation).
* ``commit-requires-votes`` -- any state with a committed site has every
  site voted yes (the committable-state classification of Section 2).
* ``no-blocking`` -- no terminal state leaves a surviving (non-crashed)
  site undecided.  A violation here is the paper's *blocking*: 2PC under a
  coordinator crash reproduces it exhaustively rather than by sampled
  schedules.

The first three are safety invariants (``violated`` dominates the summary
verdict); ``no-blocking`` maps to the ``blocked`` verdict, mirroring
:attr:`~repro.engine.summary.RunSummary.verdict`.  Counterexamples are
first-discovery paths through the graph -- minimal under the default BFS
exploration -- and replay step-by-step through
:func:`~repro.core.reachability.enumerate_successors` (the explorer
property tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.fsa import Transition
from repro.core.reachability import (
    ExplorationError,
    GlobalState,
    GlobalTransition,
    ReachabilityResult,
    explore_model,
)
from repro.modelcheck.protocols import resolve_protocol
from repro.modelcheck.spec import ModelCheckSpec

#: Safety invariants: a violation makes the overall verdict ``violated``.
SAFETY_INVARIANTS = (
    "same-decision",
    "no-commit-after-abort",
    "commit-requires-votes",
)
#: The liveness-flavoured invariant: a violation means ``blocked``.
BLOCKING_INVARIANT = "no-blocking"
#: Every invariant, in report order.
INVARIANTS = SAFETY_INVARIANTS + (BLOCKING_INVARIANT,)


@dataclass
class InvariantVerdict:
    """The outcome of checking one invariant.

    ``trace`` is the counterexample path (empty when the invariant holds):
    the first-discovery edges from the initial state to ``witness``, plus --
    for edge-shaped violations -- the violating edge itself as the last
    entry.
    """

    name: str
    holds: bool
    witness: Optional[GlobalState] = None
    trace: list[GlobalTransition] = field(default_factory=list)
    detail: str = ""

    @property
    def verdict(self) -> str:
        """``"holds"`` or ``"violated"``."""
        return "holds" if self.holds else "violated"


@dataclass
class ModelCheckResult:
    """Everything one model-checking run produced.

    The rich, in-process form: the full graph plus per-invariant verdicts
    with replayable counterexample traces.  :meth:`to_summary` reduces it to
    the plain-data :class:`~repro.modelcheck.summary.ModelCheckSummary` that
    crosses process boundaries.
    """

    protocol: str
    spec: ModelCheckSpec
    graph: ReachabilityResult
    verdicts: dict[str, InvariantVerdict]

    def verdict_for(self, name: str) -> InvariantVerdict:
        """The verdict of one invariant by name."""
        return self.verdicts[name]

    def to_summary(self, *, spec_hash: str):
        """Reduce to a :class:`~repro.modelcheck.summary.ModelCheckSummary`."""
        from repro.modelcheck.summary import ModelCheckSummary

        return ModelCheckSummary(
            protocol=self.protocol,
            spec_hash=spec_hash,
            seed=self.spec.seed,
            n_sites=self.spec.n_sites,
            fault=self.spec.fault,
            states_explored=self.graph.state_count,
            edges_explored=len(self.graph.edges),
            frontier_depth=self.graph.frontier_depth,
            complete=self.graph.complete,
            invariants={
                name: self.verdicts[name].verdict for name in INVARIANTS
            },
            counterexamples={
                name: trace_steps(self.verdicts[name].trace)
                for name in INVARIANTS
                if not self.verdicts[name].holds
            },
        )


def _edge_label(edge: GlobalTransition) -> str:
    """Compact one-line label of an edge for serialized traces."""
    transition = edge.transition
    if isinstance(transition, Transition):
        return (
            f"recv {transition.read.kind}: "
            f"{transition.source} -> {transition.target}"
        )
    return str(transition)


def trace_steps(trace: list[GlobalTransition]) -> list[dict[str, Any]]:
    """Serialize a counterexample path to JSON-ready step dicts.

    Each step records the acting site, the edge kind, a human-readable
    label and the resulting local-state vector -- enough to print a
    readable trace and to compare counterexample *shapes* in golden tables
    without pinning the full global-state encoding.
    """
    steps: list[dict[str, Any]] = []
    for index, edge in enumerate(trace):
        transition = edge.transition
        action = "step" if isinstance(transition, Transition) else transition.action
        target = edge.target
        steps.append(
            {
                "step": index,
                "site": edge.site,
                "action": action,
                "label": _edge_label(edge),
                "locals": list(target.locals),
                "crashed": sorted(target.crashed),
                "partitioned": target.partition is not None,
            }
        )
    return steps


def format_trace(trace: list[GlobalTransition]) -> str:
    """Render a counterexample path as indented lines for error messages."""
    if not trace:
        return "  (violation in the initial state)"
    lines = []
    for index, edge in enumerate(trace):
        lines.append(f"  {index + 1}. {edge.describe()}  =>  {edge.target}")
    return "\n".join(lines)


def _check_same_decision(graph: ReachabilityResult) -> InvariantVerdict:
    """No state mixes a committed site with an aborted one."""
    for state in graph.visit_order:
        committed = None
        aborted = None
        for site in range(1, graph.n_sites + 1):
            automaton = graph.automaton_of(site)
            local = state.local(site)
            if local in automaton.commit_states:
                committed = site
            elif local in automaton.abort_states:
                aborted = site
        if committed is not None and aborted is not None:
            return InvariantVerdict(
                name="same-decision",
                holds=False,
                witness=state,
                trace=graph.path_to(state),
                detail=(
                    f"site {committed} committed while site {aborted} aborted "
                    f"in {state}"
                ),
            )
    return InvariantVerdict(name="same-decision", holds=True)


def _check_no_commit_after_abort(graph: ReachabilityResult) -> InvariantVerdict:
    """No site enters a commit state once any site occupies an abort state."""
    for edge in graph.edges:
        automaton = graph.automaton_of(edge.site) if edge.site else None
        if automaton is None:
            continue
        entered_commit = (
            edge.target.local(edge.site) in automaton.commit_states
            and edge.source.local(edge.site) not in automaton.commit_states
        )
        if not entered_commit:
            continue
        for site in range(1, graph.n_sites + 1):
            if edge.source.local(site) in graph.automaton_of(site).abort_states:
                return InvariantVerdict(
                    name="no-commit-after-abort",
                    holds=False,
                    witness=edge.target,
                    trace=graph.path_to(edge.source) + [edge],
                    detail=(
                        f"site {edge.site} commits after site {site} "
                        f"aborted in {edge.source}"
                    ),
                )
    return InvariantVerdict(name="no-commit-after-abort", holds=True)


def _check_commit_requires_votes(graph: ReachabilityResult) -> InvariantVerdict:
    """A committed site implies every slave voted yes (committable states).

    The quantifier runs over the *slaves*: the master's yes vote is cast
    before the protocol starts (a no-voting master aborts unilaterally and
    never involves anyone, so it is unreachable in the FSA graph), whereas
    the catalog's ``yes_vote_states`` only witness the master's vote at its
    commit state -- counting it would flag every slave that correctly
    commits past a crashed master.
    """
    for state in graph.visit_order:
        for site in range(1, graph.n_sites + 1):
            if state.local(site) in graph.automaton_of(site).commit_states:
                missing = [
                    s
                    for s in range(2, graph.n_sites + 1)
                    if not state.voted[s - 1]
                ]
                if missing:
                    return InvariantVerdict(
                        name="commit-requires-votes",
                        holds=False,
                        witness=state,
                        trace=graph.path_to(state),
                        detail=(
                            f"site {site} committed without yes votes from "
                            f"slaves {missing} in {state}"
                        ),
                    )
                break
    return InvariantVerdict(name="commit-requires-votes", holds=True)


def _check_no_blocking(graph: ReachabilityResult) -> InvariantVerdict:
    """No terminal state leaves a surviving site undecided."""
    for state in graph.final_states():
        for site in range(1, graph.n_sites + 1):
            if not state.alive(site):
                continue
            if not graph.automaton_of(site).is_final(state.local(site)):
                return InvariantVerdict(
                    name=BLOCKING_INVARIANT,
                    holds=False,
                    witness=state,
                    trace=graph.path_to(state),
                    detail=(
                        f"surviving site {site} is stuck undecided in "
                        f"state {state.local(site)} at terminal {state}"
                    ),
                )
    return InvariantVerdict(name=BLOCKING_INVARIANT, holds=True)


def check_invariants(graph: ReachabilityResult) -> dict[str, InvariantVerdict]:
    """Evaluate every invariant over an explored graph."""
    return {
        "same-decision": _check_same_decision(graph),
        "no-commit-after-abort": _check_no_commit_after_abort(graph),
        "commit-requires-votes": _check_commit_requires_votes(graph),
        BLOCKING_INVARIANT: _check_no_blocking(graph),
    }


def check_model(protocol: str, spec: ModelCheckSpec) -> ModelCheckResult:
    """Explore ``protocol`` under ``spec`` and check every invariant.

    Args:
        protocol: a simulator-registry protocol name (see
            :func:`~repro.modelcheck.protocols.checkable_protocols`).
        spec: what to explore and within which budgets.

    Returns:
        The rich result; reduce with
        :meth:`ModelCheckResult.to_summary` for the engine.

    Raises:
        ExplorationError: when the graph exceeds ``spec.max_states``.
        UncheckableProtocolError: for protocols without an FSA model.
    """
    fsa_spec, augmentation = resolve_protocol(protocol, spec.n_sites)
    graph = explore_model(
        fsa_spec,
        spec.n_sites,
        augmentation=augmentation,
        fault=spec.fault,
        no_voters=spec.no_voters,
        max_states=spec.max_states,
        max_depth=spec.max_depth,
    )
    return ModelCheckResult(
        protocol=protocol,
        spec=spec,
        graph=graph,
        verdicts=check_invariants(graph),
    )
