"""Differential cross-validation: exhaustive checker vs. event-driven simulator.

Two fully independent implementations of the paper's semantics live in this
repo: the timed, event-driven simulator (:mod:`repro.protocols`,
:mod:`repro.sim`) and the untimed exhaustive explorer
(:mod:`repro.core.reachability` + :mod:`repro.modelcheck.checker`).  This
module runs both on the *same* configuration and asserts that their
verdicts agree -- the strongest correctness story either side has.

The agreement relation is directional, because the two quantify
differently: one simulator run samples a single timed schedule, while the
checker quantifies over *every* interleaving (including timings no
bounded-latency schedule realizes, e.g. a timeout firing while a live,
connected peer was still going to answer).  The checker is therefore a
sound over-approximation of the simulator:

* simulator atomicity violation  =>  checker ``violated``;
* simulator blocking among *surviving* (non-crashed) sites  =>  checker
  ``blocked`` or ``violated``;
* checker ``consistent``  =>  every matching simulator run is consistent;
* failure-free with scripted votes, the graph is schedule-deterministic:
  the verdicts (and the commit/abort outcome) must match exactly.

A disagreement is reported with the checker's minimal counterexample trace
next to the simulator run's decision vector, so the divergence is
immediately debuggable from the test output.

Simulator runs use the default **constant** latency (1.0 = ``T``): a
stochastic latency model could fire timers in fault-free runs and produce
verdicts driven by the latency draw rather than the configuration, which
is exactly the noise a differential test must exclude.  Seeds therefore
only drive *configuration sampling*, never the compared runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis.scenarios import split_choices
from repro.modelcheck.checker import ModelCheckResult, check_model, format_trace
from repro.modelcheck.protocols import checkable_protocols
from repro.modelcheck.spec import ModelCheckSpec
from repro.core.reachability import FAILURE_FREE, PARTITION, SINGLE_CRASH
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.failures import CrashSchedule
from repro.sim.partition import PartitionSchedule

#: Fault-onset times (in units of ``T``) at which the simulator samples the
#: envelope.  A sub-``T`` grid from before the first message to after the
#: slowest protocol quiesces, so every protocol phase gets hit.
DEFAULT_ONSETS = (0.5, 1.5, 2.5, 3.5, 4.5, 5.5)


@dataclass(frozen=True)
class DifferentialConfig:
    """One configuration both semantics run: the checker once, the sim per onset."""

    protocol: str
    n_sites: int = 3
    fault: str = FAILURE_FREE
    no_voters: frozenset[int] = frozenset()

    def modelcheck_spec(self, **overrides) -> ModelCheckSpec:
        """The checker side of the configuration."""
        spec = ModelCheckSpec(
            n_sites=self.n_sites,
            fault=self.fault,
            no_voters=self.no_voters if self.no_voters else None,
        )
        return replace(spec, **overrides) if overrides else spec

    def scenario_specs(
        self, onsets: tuple[float, ...] = DEFAULT_ONSETS
    ) -> list[ScenarioSpec]:
        """The simulator side: one spec per fault placement and onset time."""
        base = ScenarioSpec(n_sites=self.n_sites, no_voters=self.no_voters)
        if self.fault == FAILURE_FREE:
            return [base]
        specs: list[ScenarioSpec] = []
        if self.fault == SINGLE_CRASH:
            for site in range(1, self.n_sites + 1):
                for at in onsets:
                    specs.append(
                        replace(base, crashes=CrashSchedule.single(site, at))
                    )
        elif self.fault == PARTITION:
            for g1, g2 in split_choices(self.n_sites):
                for at in onsets:
                    specs.append(
                        replace(
                            base,
                            partition=PartitionSchedule.simple(at, g1, g2),
                        )
                    )
        else:
            raise ValueError(f"unknown fault envelope {self.fault!r}")
        return specs


@dataclass
class Disagreement:
    """One verdict divergence, with both sides' evidence attached."""

    config: DifferentialConfig
    scenario: ScenarioSpec
    sim_verdict: str
    checker_verdict: str
    reason: str
    detail: str = ""

    def format(self) -> str:
        """Multi-line report: config, both verdicts, both traces."""
        lines = [
            f"DISAGREEMENT: {self.reason}",
            f"  config:   {self.config.protocol} n={self.config.n_sites} "
            f"fault={self.config.fault} no_voters={sorted(self.config.no_voters)}",
            f"  scenario: crashes={self.scenario.crashes} "
            f"partition={self.scenario.partition}",
            f"  simulator verdict: {self.sim_verdict}",
            f"  checker verdict:   {self.checker_verdict}",
        ]
        if self.detail:
            lines.append(self.detail)
        return "\n".join(lines)


@dataclass
class DifferentialReport:
    """The outcome of cross-validating one configuration."""

    config: DifferentialConfig
    checker: ModelCheckResult
    sim_runs: int = 0
    sim_verdicts: dict[str, int] = field(default_factory=dict)
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        """True when no simulator run contradicted the checker."""
        return not self.disagreements

    def format_failures(self) -> str:
        """Every disagreement, rendered for a test failure message."""
        return "\n\n".join(d.format() for d in self.disagreements)


def _checker_evidence(result: ModelCheckResult) -> str:
    """The checker's counterexample traces, rendered for a report."""
    parts = []
    for name, verdict in result.verdicts.items():
        if not verdict.holds:
            parts.append(
                f"  checker counterexample [{name}] ({verdict.detail}):\n"
                f"{format_trace(verdict.trace)}"
            )
    return "\n".join(parts) if parts else "  (checker found no counterexample)"


def _sim_evidence(summary) -> str:
    """The simulator run's decision vector, rendered for a report."""
    return (
        f"  sim decisions: {summary.decisions} votes={summary.votes} "
        f"states={summary.states} finished_at={summary.finished_at}"
    )


def cross_validate(
    config: DifferentialConfig,
    *,
    onsets: tuple[float, ...] = DEFAULT_ONSETS,
    checker: Optional[ModelCheckResult] = None,
) -> DifferentialReport:
    """Run both semantics on ``config`` and collect any disagreements.

    Args:
        config: the shared configuration.
        onsets: fault-onset times for the simulator's placements.
        checker: a precomputed checker result for this configuration
            (the checker is deterministic, so differential sweeps memoize
            it across the many sim placements of one configuration).

    Returns:
        A :class:`DifferentialReport`; ``report.agreed`` is the assertion
        target and ``report.format_failures()`` the failure message.
    """
    if checker is None:
        checker = check_model(config.protocol, config.modelcheck_spec())
    summary = checker.to_summary(spec_hash="differential")
    report = DifferentialReport(config=config, checker=checker)

    protocol = create_protocol(config.protocol)
    for scenario in config.scenario_specs(onsets):
        result = run_scenario(protocol, scenario)
        crashed = scenario.crashes.sites() if scenario.crashes else set()
        surviving_undecided = [
            site for site in result.undecided_sites if site not in crashed
        ]
        if result.atomicity_violated:
            sim_verdict = "violated"
        elif result.blocked:
            sim_verdict = "blocked"
        else:
            sim_verdict = "consistent"
        report.sim_runs += 1
        report.sim_verdicts[sim_verdict] = report.sim_verdicts.get(sim_verdict, 0) + 1

        if result.atomicity_violated and not summary.atomicity_violated:
            report.disagreements.append(
                Disagreement(
                    config=config,
                    scenario=scenario,
                    sim_verdict=sim_verdict,
                    checker_verdict=summary.verdict,
                    reason="simulator violated atomicity but the checker "
                    "proved every interleaving safe",
                    detail=_sim_evidence(result) + "\n" + _checker_evidence(checker),
                )
            )
        if surviving_undecided and summary.verdict == "consistent":
            report.disagreements.append(
                Disagreement(
                    config=config,
                    scenario=scenario,
                    sim_verdict=sim_verdict,
                    checker_verdict=summary.verdict,
                    reason=f"simulator left surviving sites "
                    f"{surviving_undecided} undecided but the checker proved "
                    f"every interleaving non-blocking",
                    detail=_sim_evidence(result) + "\n" + _checker_evidence(checker),
                )
            )
        if config.fault == FAILURE_FREE:
            # Schedule-deterministic case: verdicts must match exactly, and
            # the outcome is forced by the scripted votes.
            if sim_verdict != summary.verdict:
                report.disagreements.append(
                    Disagreement(
                        config=config,
                        scenario=scenario,
                        sim_verdict=sim_verdict,
                        checker_verdict=summary.verdict,
                        reason="failure-free verdicts must match exactly",
                        detail=_sim_evidence(result)
                        + "\n"
                        + _checker_evidence(checker),
                    )
                )
            else:
                expected_commit = not config.no_voters
                if result.all_committed != expected_commit:
                    report.disagreements.append(
                        Disagreement(
                            config=config,
                            scenario=scenario,
                            sim_verdict=sim_verdict,
                            checker_verdict=summary.verdict,
                            reason=f"failure-free outcome should be "
                            f"{'commit' if expected_commit else 'abort'} "
                            f"under no_voters={sorted(config.no_voters)}",
                            detail=_sim_evidence(result),
                        )
                    )
    return report


def sample_configs(count: int, seed: int = 0) -> list[DifferentialConfig]:
    """Deterministically sample ``count`` differential configurations.

    Covers every checkable protocol, n in {2, 3}, every fault envelope and
    random scripted-vote patterns (including the all-yes pattern).  The
    ``random.Random(seed)`` stream makes the matrix reproducible while
    still exercising far more vote patterns than a hand-written list.
    """
    import random

    rng = random.Random(seed)
    protocols = checkable_protocols()
    envelopes = (FAILURE_FREE, SINGLE_CRASH, PARTITION)
    configs: list[DifferentialConfig] = []
    for _ in range(count):
        n_sites = rng.choice((2, 3))
        slaves = list(range(2, n_sites + 1))
        pattern = frozenset(s for s in slaves if rng.random() < 0.3)
        configs.append(
            DifferentialConfig(
                protocol=rng.choice(protocols),
                n_sites=n_sites,
                fault=rng.choice(envelopes),
                no_voters=pattern,
            )
        )
    return configs
